"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips exactly one Spear/MCTS design decision and measures
mean makespan over a shared DAG batch:

1. **graph features** — train/evaluate the DRL state with and without
   b-level / #children / b-load (Sec. III-D claims demand-only states are
   "suboptimal ... like Tetris");
2. **expansion filters** — work-conserving candidate filtering vs the raw
   legal action space (Sec. III-C);
3. **budget decay** — Eq. (4) vs a flat budget at every decision;
4. **max-value UCB** — Eq. (5) vs classic mean-value UCB (Eq. 1);
5. **guided rollout** — DRL rollouts vs random rollouts at equal budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..config import EnvConfig, MctsConfig, WorkloadConfig
from ..core.pipeline import train_spear_network
from ..core.spear import SpearScheduler
from ..dag.graph import TaskGraph
from ..mcts.search import MctsScheduler
from ..metrics.schedule import validate_schedule
from ..rl.network import PolicyNetwork
from ..schedulers.base import Scheduler, ScheduleRequest
from .fig6 import generate_dags
from .networks import cached_network, training_config_for_scale
from .reporting import format_table
from .scale import ExperimentScale, resolve_scale

__all__ = [
    "AblationResult",
    "run_ablation",
    "feature_ablation",
    "exploration_sensitivity",
    "ABLATIONS",
]


@dataclass
class AblationResult:
    """Mean makespans of the on/off variants of one design choice."""

    name: str
    scale: str
    num_dags: int
    makespans: Dict[str, List[int]]

    def mean(self, variant: str) -> float:
        """Mean makespan of one variant."""
        values = self.makespans[variant]
        return sum(values) / len(values)

    def report(self) -> str:
        rows = [(variant, self.mean(variant)) for variant in self.makespans]
        return format_table(
            ["variant", "mean makespan"],
            rows,
            title=f"Ablation: {self.name} ({self.scale} scale)",
        )


def _evaluate(
    schedulers: Dict[str, Scheduler],
    graphs: Sequence[TaskGraph],
    env_config: EnvConfig,
) -> Dict[str, List[int]]:
    capacities = env_config.cluster.capacities
    makespans: Dict[str, List[int]] = {}
    for variant, scheduler in schedulers.items():
        values = []
        for graph in graphs:
            schedule = scheduler.plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            values.append(schedule.makespan)
        makespans[variant] = values
    return makespans


def _mcts_pair(
    scale: ExperimentScale, seed: int, on: MctsConfig, off: MctsConfig
) -> Dict[str, Scheduler]:
    env_config = EnvConfig(process_until_completion=True)
    return {
        "on": MctsScheduler(on, env_config, seed=seed),
        "off": MctsScheduler(off, env_config, seed=seed),
    }


def _base_config(scale: ExperimentScale) -> MctsConfig:
    return MctsConfig(
        initial_budget=scale.mcts_budget, min_budget=scale.mcts_min_budget
    )


def expansion_filter_ablation(scale: ExperimentScale, seed: int) -> Dict[str, Scheduler]:
    """Ablation 2: Sec. III-C expansion filters on vs off."""
    base = _base_config(scale)
    return _mcts_pair(
        scale, seed, base, replace(base, use_expansion_filters=False)
    )


def budget_decay_ablation(scale: ExperimentScale, seed: int) -> Dict[str, Scheduler]:
    """Ablation 3: Eq. (4) budget decay vs flat budget."""
    base = _base_config(scale)
    return _mcts_pair(scale, seed, base, replace(base, use_budget_decay=False))


def max_value_ucb_ablation(scale: ExperimentScale, seed: int) -> Dict[str, Scheduler]:
    """Ablation 4: Eq. (5) max-value UCB vs classic mean UCB."""
    base = _base_config(scale)
    return _mcts_pair(scale, seed, base, replace(base, use_max_value_ucb=False))


def guided_rollout_ablation(scale: ExperimentScale, seed: int) -> Dict[str, Scheduler]:
    """Ablation 5: network-guided vs random rollout/expansion at the same
    (Spear-sized) budget."""
    env_config = EnvConfig(process_until_completion=True)
    network = cached_network(scale, env_config, seed=seed)
    config = MctsConfig(
        initial_budget=scale.spear_budget, min_budget=scale.spear_min_budget
    )
    return {
        "on": SpearScheduler(network, config, env_config, seed=seed),
        "off": MctsScheduler(config, env_config, seed=seed),
    }


ABLATIONS: Dict[str, Callable[[ExperimentScale, int], Dict[str, Scheduler]]] = {
    "expansion-filters": expansion_filter_ablation,
    "budget-decay": budget_decay_ablation,
    "max-value-ucb": max_value_ucb_ablation,
    "guided-rollout": guided_rollout_ablation,
}


def run_ablation(
    name: str,
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    graphs: Optional[Sequence[TaskGraph]] = None,
) -> AblationResult:
    """Run one named ablation (see :data:`ABLATIONS`) over a DAG batch."""
    if name not in ABLATIONS:
        raise KeyError(f"unknown ablation {name!r}; have {sorted(ABLATIONS)}")
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    if graphs is None:
        graphs = generate_dags(scale, seed)
    schedulers = ABLATIONS[name](scale, seed)
    return AblationResult(
        name=name,
        scale=scale.label,
        num_dags=len(graphs),
        makespans=_evaluate(schedulers, graphs, env_config),
    )


def exploration_sensitivity(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    scales: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 10.0),
    graphs: Optional[Sequence[TaskGraph]] = None,
) -> AblationResult:
    """Sensitivity of MCTS to the exploration-constant multiplier.

    Sec. III-C argues ``c`` must be "in the same order of the makespan of
    the DAG"; Sec. IV scales it by a greedy-packing estimate.  This sweep
    varies the multiplier around 1.0 to show the estimate's scale is in
    the right regime: both starving exploration (0.1x) and swamping
    exploitation (10x) should do no better than 1x.
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    if graphs is None:
        graphs = generate_dags(scale, seed)
    schedulers: Dict[str, Scheduler] = {
        f"c={multiplier:g}x": MctsScheduler(
            replace(_base_config(scale), exploration_scale=multiplier),
            env_config,
            seed=seed,
        )
        for multiplier in scales
    }
    return AblationResult(
        name="exploration-scale",
        scale=scale.label,
        num_dags=len(graphs),
        makespans=_evaluate(schedulers, graphs, env_config),
    )


def feature_ablation(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> AblationResult:
    """Ablation 1: graph features in the DRL state, on vs off.

    Two networks are trained from the same seed — one with the full
    Sec. III-D state, one with topology features zeroed — and evaluated
    greedily (pure policy, no search) on a held-out batch, isolating what
    the features buy the *agent*.
    """
    scale = resolve_scale(paper_scale)
    training = training_config_for_scale(scale)
    run_epochs = epochs if epochs is not None else scale.train_epochs
    makespans: Dict[str, List[int]] = {}
    eval_env_configs: Dict[str, EnvConfig] = {}
    networks: Dict[str, PolicyNetwork] = {}
    for variant, include in (("on", True), ("off", False)):
        env_config = EnvConfig(
            process_until_completion=True, include_graph_features=include
        )
        network, _ = train_spear_network(
            env_config=env_config,
            training=training,
            workload=WorkloadConfig(),
            seed=seed,
            epochs=run_epochs,
        )
        networks[variant] = network
        eval_env_configs[variant] = env_config

    graphs = generate_dags(scale, seed + 1)
    from ..rl.agent import NetworkPolicy
    from ..schedulers.base import PolicyScheduler

    for variant, network in networks.items():
        scheduler = PolicyScheduler(
            lambda net=network: NetworkPolicy(net, mode="greedy"),
            eval_env_configs[variant],
            name=f"drl-features-{variant}",
        )
        values = []
        for graph in graphs:
            schedule = scheduler.plan(ScheduleRequest(graph))
            validate_schedule(
                schedule, graph, eval_env_configs[variant].cluster.capacities
            )
            values.append(schedule.makespan)
        makespans[variant] = values
    return AblationResult(
        name="graph-features",
        scale=scale.label,
        num_dags=len(graphs),
        makespans=makespans,
    )
