"""Seed-sweep replication of experiments.

A single seed can flatter any scheduler; :func:`replicate` re-runs a
metric-producing experiment across seeds and reports the mean with a
bootstrap confidence interval, turning one-off harness numbers into
defensible claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..metrics.stats import bootstrap_ci
from .reporting import format_table

__all__ = ["ReplicationResult", "replicate"]


@dataclass(frozen=True)
class ReplicationResult:
    """Per-metric seed-sweep summary."""

    seeds: Tuple[int, ...]
    samples: Dict[str, Tuple[float, ...]]  # metric -> value per seed
    confidence: float

    def mean(self, metric: str) -> float:
        """Across-seed mean of one metric."""
        values = self.samples[metric]
        return sum(values) / len(values)

    def interval(self, metric: str) -> Tuple[float, float]:
        """Bootstrap CI of the metric's mean (seeded: reproducible)."""
        return bootstrap_ci(
            list(self.samples[metric]), confidence=self.confidence, seed=0
        )

    def report(self) -> str:
        rows = []
        for metric in sorted(self.samples):
            low, high = self.interval(metric)
            rows.append((metric, self.mean(metric), low, high))
        return format_table(
            ["metric", "mean", "ci low", "ci high"],
            rows,
            title=(
                f"Replication over {len(self.seeds)} seeds "
                f"({self.confidence:.0%} bootstrap CI)"
            ),
        )


def replicate(
    experiment: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> ReplicationResult:
    """Run ``experiment(seed)`` per seed and aggregate its metric dict.

    Args:
        experiment: returns ``{metric name: value}`` for one seed; every
            seed must yield the same metric keys.
        seeds: the sweep (non-empty).
        confidence: CI coverage.

    Raises:
        ValueError: on an empty sweep or inconsistent metric keys.
    """

    if not seeds:
        raise ValueError("need at least one seed")
    per_seed: List[Dict[str, float]] = [experiment(seed) for seed in seeds]
    keys = set(per_seed[0])
    for result in per_seed[1:]:
        if set(result) != keys:
            raise ValueError(
                f"inconsistent metric keys across seeds: {sorted(keys)} vs "
                f"{sorted(result)}"
            )
    samples = {
        key: tuple(result[key] for result in per_seed) for key in keys
    }
    return ReplicationResult(
        seeds=tuple(seeds), samples=samples, confidence=confidence
    )
