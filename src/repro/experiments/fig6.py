"""Fig. 6: Spear vs the baselines on random 100-task DAGs.

Fig. 6(a) — makespan CDFs of Spear, Graphene, Tetris, SJF and CP over a
batch of random DAGs.  Published result: Spear's average (820.1) beats
Graphene (869.8), Tetris, SJF and CP (890.2 / 849.0 / 896.6), winning
against Graphene on 90% of the DAGs.

Fig. 6(b) — wall-clock scheduling-time CDFs of Spear vs Graphene.
Published result: similar medians, with Graphene showing a heavy tail
(some DAGs make it re-plan much longer across its 8 candidate plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import EnvConfig, WorkloadConfig
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..metrics.comparison import ComparisonRow, compare_makespans, win_rate
from ..metrics.schedule import validate_schedule
from ..rl.network import PolicyNetwork
from ..schedulers.base import Scheduler, ScheduleRequest
from ..schedulers.registry import make_scheduler
from ..telemetry import runtime as _telemetry
from ..utils.rng import as_generator, spawn
from .networks import cached_network
from .reporting import format_table
from .scale import ExperimentScale, resolve_scale

__all__ = ["Fig6Result", "makespan_comparison", "runtime_comparison"]

BASELINES = ("graphene", "tetris", "sjf", "cp")


@dataclass
class Fig6Result:
    """Everything Fig. 6 reports, for one batch of DAGs."""

    scale: str
    num_dags: int
    makespans: Dict[str, List[int]] = field(default_factory=dict)
    wall_times: Dict[str, List[float]] = field(default_factory=dict)

    def rows(self) -> List[ComparisonRow]:
        """Per-scheduler summary, best mean first (the Fig. 6(a) ranking)."""
        return compare_makespans(self.makespans)

    def win_rate_over(self, baseline: str, ours: str = "spear") -> float:
        """Fraction of DAGs where ``ours`` strictly beats ``baseline``."""
        return win_rate(self.makespans[ours], self.makespans[baseline])

    def no_worse_rate_over(self, baseline: str, ours: str = "spear") -> float:
        """Fraction of DAGs where ``ours`` is no worse than ``baseline``."""
        return win_rate(self.makespans[ours], self.makespans[baseline], strict=False)

    def report(self) -> str:
        """Text rendering of the Fig. 6(a) comparison."""
        rows = [
            (r.scheduler, r.mean, r.median, r.best, r.worst) for r in self.rows()
        ]
        table = format_table(
            ["scheduler", "mean", "median", "best", "worst"],
            rows,
            title=f"Fig 6(a) makespans ({self.scale} scale, {self.num_dags} DAGs)",
        )
        beats = self.no_worse_rate_over("graphene")
        return f"{table}\nSpear no worse than Graphene on {beats:.0%} of DAGs"


def _workload(scale: ExperimentScale) -> WorkloadConfig:
    return WorkloadConfig(num_tasks=scale.num_tasks)


def generate_dags(
    scale: ExperimentScale, seed: int, count: Optional[int] = None
) -> List[TaskGraph]:
    """The shared random-DAG batch for Fig. 6 / Fig. 8(a)."""
    rng = as_generator(seed)
    n = count if count is not None else scale.num_dags
    return [
        random_layered_dag(_workload(scale), seed=child)
        for child in spawn(rng, n)
    ]


def makespan_comparison(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    network: Optional[PolicyNetwork] = None,
    graphs: Optional[Sequence[TaskGraph]] = None,
) -> Fig6Result:
    """Run Fig. 6: schedule every DAG with Spear and all four baselines.

    Args:
        paper_scale: published configuration when True (see
            :mod:`repro.experiments.scale`).
        seed: master seed (DAGs, search, training all derive from it).
        network: pre-trained policy network; trained/cached automatically
            when omitted.
        graphs: explicit workload override (e.g. trace jobs).

    Returns:
        :class:`Fig6Result` with per-scheduler makespans *and* wall times —
        Fig. 6(a) and Fig. 6(b) come from the same runs, as in the paper.
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    if network is None:
        network = cached_network(scale, env_config, seed=seed)
    if graphs is None:
        graphs = generate_dags(scale, seed)

    spear = make_scheduler(
        "spear",
        env_config,
        budget=scale.spear_budget,
        min_budget=scale.spear_min_budget,
        seed=seed,
        network=network,
    )
    schedulers: Dict[str, Scheduler] = {"spear": spear}
    for name in BASELINES:
        schedulers[name] = make_scheduler(name, env_config)

    result = Fig6Result(scale=scale.label, num_dags=len(graphs))
    capacities = env_config.cluster.capacities
    tm = _telemetry.active()
    for name, scheduler in schedulers.items():
        makespans: List[int] = []
        times: List[float] = []
        with tm.span(
            "fig6.scheduler", scheduler=name, dags=len(graphs)
        ) as span:
            for index, graph in enumerate(graphs):
                schedule = scheduler.plan(ScheduleRequest(graph))
                validate_schedule(schedule, graph, capacities)
                makespans.append(schedule.makespan)
                times.append(schedule.wall_time)
                if tm.enabled:
                    tm.record(
                        f"fig6.makespan.{name}", index, float(schedule.makespan)
                    )
            if tm.enabled:
                span.set(
                    mean_makespan=sum(makespans) / len(makespans),
                    total_wall_time=sum(times),
                )
        result.makespans[name] = makespans
        result.wall_times[name] = times
    return result


def runtime_comparison(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    result: Optional[Fig6Result] = None,
) -> Dict[str, List[float]]:
    """Fig. 6(b): scheduling wall-times of Spear vs Graphene.

    Args:
        result: reuse a prior :func:`makespan_comparison` run; otherwise
            one is executed.

    Returns:
        ``{"spear": [...], "graphene": [...]}`` per-DAG seconds.
    """
    if result is None:
        result = makespan_comparison(paper_scale=paper_scale, seed=seed)
    return {
        "spear": result.wall_times["spear"],
        "graphene": result.wall_times["graphene"],
    }
