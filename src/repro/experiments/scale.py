"""Experiment scale resolution.

Pure-Python MCTS at the paper's full scale (budget 1000, 100-task DAGs)
takes minutes per DAG — the paper itself reports ~500 s per schedule on a
laptop.  The harness therefore runs a reduced configuration by default
that preserves every qualitative relationship, and switches to the
published numbers when ``REPRO_PAPER_SCALE=1`` is set (or
``paper_scale=True`` is passed).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ExperimentScale", "resolve_scale", "paper_scale_requested"]


@dataclass(frozen=True)
class ExperimentScale:
    """All scale-dependent experiment knobs in one place."""

    label: str
    # Workload
    num_dags: int
    num_tasks: int
    # Search budgets
    spear_budget: int
    spear_min_budget: int
    mcts_budget: int
    mcts_min_budget: int
    # Fig. 7 sweep
    sweep_budgets: Tuple[int, ...]
    sweep_num_dags: int
    sweep_min_budget: int
    # Table I grid
    grid_sizes: Tuple[int, ...]
    grid_budgets: Tuple[int, ...]
    # Fig. 8(a) budget divisor (paper: 10 — Spear gets 1/10 of MCTS budget)
    fig8_budget_divisor: int
    # Training
    train_examples: int
    train_tasks: int
    train_epochs: int
    train_rollouts: int
    supervised_epochs: int
    # Trace
    trace_jobs: int
    trace_spear_budget: int
    trace_spear_min_budget: int


#: Reduced configuration: minutes, not hours, on one core.
LAPTOP = ExperimentScale(
    label="laptop",
    num_dags=5,
    num_tasks=30,
    spear_budget=50,
    spear_min_budget=10,
    mcts_budget=50,
    mcts_min_budget=10,
    sweep_budgets=(5, 15, 40, 80),
    sweep_num_dags=5,
    sweep_min_budget=5,
    grid_sizes=(20, 40),
    grid_budgets=(20, 50),
    fig8_budget_divisor=2,
    train_examples=12,
    train_tasks=12,
    train_epochs=20,
    train_rollouts=6,
    supervised_epochs=30,
    trace_jobs=20,
    trace_spear_budget=20,
    trace_spear_min_budget=10,
)

#: The published configuration (Sec. V-A/B/C).
PAPER = ExperimentScale(
    label="paper",
    num_dags=10,
    num_tasks=100,
    spear_budget=1000,
    spear_min_budget=100,
    mcts_budget=1000,
    mcts_min_budget=100,
    sweep_budgets=(500, 600, 1000, 2200),
    sweep_num_dags=100,
    sweep_min_budget=5,
    grid_sizes=(50, 100),
    grid_budgets=(500, 1000),
    fig8_budget_divisor=10,
    train_examples=144,
    train_tasks=25,
    train_epochs=7000,
    train_rollouts=20,
    supervised_epochs=50,
    trace_jobs=99,
    trace_spear_budget=100,
    trace_spear_min_budget=50,
)


def paper_scale_requested() -> bool:
    """True iff the environment requests the published scale."""

    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in ("1", "true", "yes")


def resolve_scale(paper_scale: Optional[bool] = None) -> ExperimentScale:
    """Pick the experiment scale.

    Args:
        paper_scale: explicit override; ``None`` defers to the
            ``REPRO_PAPER_SCALE`` environment variable.
    """

    if paper_scale is None:
        paper_scale = paper_scale_requested()
    return PAPER if paper_scale else LAPTOP
