"""Fig. 8: why DRL belongs inside MCTS.

Fig. 8(a) — Spear with one tenth of the budget matches pure MCTS: the
paper reports means of 810.8 (MCTS, budget 1000) vs 816.7 (Spear, budget
100), both ahead of Tetris / SJF / CP (843.9 / 884.5 / 837.9).

Fig. 8(b) — the REINFORCE learning curve: mean sampled makespan over the
training examples decreases with epochs and eventually crosses the Tetris
and SJF reference lines (paper: after ~900 of 7000 epochs on 144 x 25-task
examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import EnvConfig, MctsConfig, WorkloadConfig
from ..core.pipeline import pretrain_network, default_network, training_graphs
from ..core.spear import SpearScheduler
from ..dag.graph import TaskGraph
from ..mcts.search import MctsScheduler
from ..metrics.comparison import ComparisonRow, compare_makespans
from ..metrics.schedule import validate_schedule
from ..rl.network import PolicyNetwork
from ..rl.reinforce import EpochStats, ReinforceTrainer
from ..schedulers.base import ScheduleRequest
from ..schedulers.registry import make_scheduler
from ..utils.rng import as_generator, spawn
from .fig6 import generate_dags
from .networks import cached_network, training_config_for_scale
from .reporting import format_table
from .scale import resolve_scale

__all__ = [
    "Fig8aResult",
    "budget_reduction",
    "Fig8bResult",
    "learning_curve",
]


@dataclass
class Fig8aResult:
    """Makespans of MCTS (high budget), Spear (low budget) and heuristics."""

    scale: str
    num_dags: int
    mcts_budget: int
    spear_budget: int
    makespans: Dict[str, List[int]] = field(default_factory=dict)

    def rows(self) -> List[ComparisonRow]:
        """Per-scheduler summary, best mean first."""
        return compare_makespans(self.makespans)

    def budget_ratio(self) -> float:
        """How much cheaper Spear's search is (paper: 10x)."""
        return self.mcts_budget / self.spear_budget

    def report(self) -> str:
        rows = [(r.scheduler, r.mean, r.best, r.worst) for r in self.rows()]
        return format_table(
            ["scheduler", "mean", "best", "worst"],
            rows,
            title=(
                f"Fig 8(a): MCTS budget {self.mcts_budget} vs Spear budget "
                f"{self.spear_budget} ({self.scale} scale)"
            ),
        )


def budget_reduction(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    network: Optional[PolicyNetwork] = None,
    graphs: Optional[Sequence[TaskGraph]] = None,
    budget_divisor: Optional[int] = None,
) -> Fig8aResult:
    """Fig. 8(a): give Spear ``1/budget_divisor`` of the MCTS budget.

    Paper setting: MCTS at 1000, Spear at 100 — "we can achieve the same
    level of performance with only 10% of the budget".  The divisor
    defaults to the scale's value (10 at paper scale; smaller at laptop
    scale where budgets are already tiny).
    """
    scale = resolve_scale(paper_scale)
    if budget_divisor is None:
        budget_divisor = scale.fig8_budget_divisor
    env_config = EnvConfig(process_until_completion=True)
    if network is None:
        network = cached_network(scale, env_config, seed=seed)
    if graphs is None:
        graphs = generate_dags(scale, seed)

    spear_budget = max(1, scale.mcts_budget // budget_divisor)
    spear_min = max(1, scale.mcts_min_budget // budget_divisor)
    schedulers = {
        "mcts": MctsScheduler(
            MctsConfig(
                initial_budget=scale.mcts_budget,
                min_budget=scale.mcts_min_budget,
            ),
            env_config,
            seed=seed,
        ),
        "spear": SpearScheduler(
            network,
            MctsConfig(initial_budget=spear_budget, min_budget=spear_min),
            env_config,
            seed=seed,
        ),
        "tetris": make_scheduler("tetris", env_config),
        "sjf": make_scheduler("sjf", env_config),
        "cp": make_scheduler("cp", env_config),
    }

    result = Fig8aResult(
        scale=scale.label,
        num_dags=len(graphs),
        mcts_budget=scale.mcts_budget,
        spear_budget=spear_budget,
    )
    capacities = env_config.cluster.capacities
    for name, scheduler in schedulers.items():
        makespans = []
        for graph in graphs:
            schedule = scheduler.plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            makespans.append(schedule.makespan)
        result.makespans[name] = makespans
    return result


@dataclass
class Fig8bResult:
    """The learning curve plus heuristic reference lines."""

    scale: str
    history: List[EpochStats]
    tetris_mean: float
    sjf_mean: float

    def curve(self) -> List[Tuple[int, float]]:
        """(epoch, mean sampled makespan) — the Fig. 8(b) line."""
        return [(h.epoch, h.mean_makespan) for h in self.history]

    def crossed_tetris_at(self) -> Optional[int]:
        """First epoch whose mean beats the Tetris reference, if any."""
        for stats in self.history:
            if stats.mean_makespan < self.tetris_mean:
                return stats.epoch
        return None

    def final_mean(self) -> float:
        """Mean makespan of the last epoch."""
        return self.history[-1].mean_makespan

    def report(self) -> str:
        rows = [
            (h.epoch, h.mean_makespan, h.mean_entropy) for h in self.history
        ]
        table = format_table(
            ["epoch", "mean makespan", "entropy"],
            rows[:: max(1, len(rows) // 15)],
            title=f"Fig 8(b) learning curve ({self.scale} scale)",
        )
        return (
            f"{table}\nTetris reference {self.tetris_mean:.1f}, "
            f"SJF reference {self.sjf_mean:.1f}"
        )


def learning_curve(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    epochs: Optional[int] = None,
) -> Fig8bResult:
    """Fig. 8(b): train with REINFORCE and record the makespan curve.

    The Tetris and SJF reference lines are their mean makespans over the
    same training examples (the lines the paper's curve crosses).
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    training = training_config_for_scale(scale)
    rng = as_generator(seed)
    graph_rng, net_rng, imit_rng, rl_rng = spawn(rng, 4)

    graphs = training_graphs(training, WorkloadConfig(), seed=graph_rng)
    capacities = env_config.cluster.capacities
    references = {}
    for name in ("tetris", "sjf"):
        scheduler = make_scheduler(name, env_config)
        makespans = []
        for graph in graphs:
            schedule = scheduler.plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            makespans.append(schedule.makespan)
        references[name] = sum(makespans) / len(makespans)

    network = default_network(env_config, seed=net_rng)
    pretrain_network(
        network, graphs, env_config=env_config, training=training, seed=imit_rng
    )
    trainer = ReinforceTrainer(
        network, graphs, env_config=env_config, training=training, seed=rl_rng
    )
    history = trainer.train(
        epochs=epochs if epochs is not None else scale.train_epochs
    )
    return Fig8bResult(
        scale=scale.label,
        history=history,
        tetris_mean=references["tetris"],
        sjf_mean=references["sjf"],
    )
