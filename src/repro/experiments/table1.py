"""Table I: runtime of the MCTS-only approach across scales.

"The runtimes of MCTS grow with the graph size and the amount of budget"
— the grid sweeps graph size x budget and records wall-clock seconds per
schedule.  Absolute numbers are hardware-dependent; the reproduced claim
is the monotone growth along both axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import EnvConfig, MctsConfig, WorkloadConfig
from ..dag.generators import random_layered_dag
from ..mcts.search import MctsScheduler
from ..metrics.schedule import validate_schedule
from ..schedulers.base import ScheduleRequest
from ..utils.rng import as_generator, derive_seed
from .reporting import format_table
from .scale import resolve_scale

__all__ = ["Table1Result", "runtime_grid"]


@dataclass
class Table1Result:
    """Wall-clock grid: ``seconds[(graph_size, budget)]``."""

    scale: str
    graph_sizes: Tuple[int, ...]
    budgets: Tuple[int, ...]
    seconds: Dict[Tuple[int, int], float]
    makespans: Dict[Tuple[int, int], int]

    def row(self, graph_size: int) -> List[float]:
        """Seconds for one graph size across budgets (a table row)."""
        return [self.seconds[(graph_size, b)] for b in self.budgets]

    def report(self) -> str:
        """Text rendering in the paper's layout (rows = sizes)."""
        rows = [
            [size, *self.row(size)]
            for size in self.graph_sizes
        ]
        return format_table(
            ["tasks \\ budget", *[str(b) for b in self.budgets]],
            rows,
            title=f"Table I: MCTS runtime seconds ({self.scale} scale)",
        )


def runtime_grid(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    graph_sizes: Optional[Sequence[int]] = None,
    budgets: Optional[Sequence[int]] = None,
    min_budget: int = 5,
) -> Table1Result:
    """Measure MCTS scheduling wall-time over the size x budget grid.

    One random DAG per graph size (shared across budgets, so the budget
    axis is measured on identical instances).
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    sizes = tuple(graph_sizes if graph_sizes is not None else scale.grid_sizes)
    budget_list = tuple(budgets if budgets is not None else scale.grid_budgets)
    rng = as_generator(seed)
    capacities = env_config.cluster.capacities

    graphs = {
        size: random_layered_dag(
            WorkloadConfig(num_tasks=size), seed=derive_seed(rng)
        )
        for size in sizes
    }

    seconds: Dict[Tuple[int, int], float] = {}
    makespans: Dict[Tuple[int, int], int] = {}
    for size in sizes:
        for budget in budget_list:
            scheduler = MctsScheduler(
                MctsConfig(initial_budget=budget, min_budget=min_budget),
                env_config,
                seed=derive_seed(rng),
            )
            schedule = scheduler.plan(ScheduleRequest(graphs[size]))
            validate_schedule(schedule, graphs[size], capacities)
            seconds[(size, budget)] = schedule.wall_time
            makespans[(size, budget)] = schedule.makespan
    return Table1Result(
        scale=scale.label,
        graph_sizes=sizes,
        budgets=budget_list,
        seconds=seconds,
        makespans=makespans,
    )
