"""Round-robin scheduler tournaments with significance testing.

Beyond reproducing individual figures, a downstream user wants one
command that answers "which scheduler should I run on my workload?".
:func:`run_tournament` schedules every job with every competitor, then
reports mean makespans, pairwise win matrices, and a sign-test p-value
against the chosen reference scheduler (the paper's comparisons are
exactly pairwise win counts, e.g. "Spear outperforms Graphene in 90% of
the cases").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from scipy import stats

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..metrics.comparison import ComparisonRow, compare_makespans, win_rate
from ..metrics.schedule import validate_schedule
from ..schedulers.base import Scheduler, ScheduleRequest
from ..telemetry import runtime as _telemetry
from .reporting import format_table

__all__ = ["TournamentResult", "run_tournament", "sign_test"]


def sign_test(ours: Sequence[int], baseline: Sequence[int]) -> float:
    """Two-sided sign-test p-value that ``ours`` and ``baseline`` differ.

    Ties are discarded (the standard sign-test convention); with no
    informative pairs the p-value is 1.0.
    """

    if len(ours) != len(baseline):
        raise ValueError("series must be equally long")
    wins = sum(1 for a, b in zip(ours, baseline) if a < b)
    losses = sum(1 for a, b in zip(ours, baseline) if a > b)
    informative = wins + losses
    if informative == 0:
        return 1.0
    return float(stats.binomtest(wins, informative, 0.5).pvalue)


@dataclass
class TournamentResult:
    """All pairwise outcomes of one tournament."""

    makespans: Dict[str, List[int]]
    wall_times: Dict[str, List[float]]
    reference: str

    def ranking(self) -> List[ComparisonRow]:
        """Schedulers ordered by mean makespan (best first)."""
        return compare_makespans(self.makespans)

    def win_matrix(self) -> Dict[Tuple[str, str], float]:
        """``(a, b) -> fraction of jobs where a strictly beats b``."""
        names = sorted(self.makespans)
        return {
            (a, b): win_rate(self.makespans[a], self.makespans[b])
            for a in names
            for b in names
            if a != b
        }

    def p_value_vs_reference(self, name: str) -> float:
        """Sign-test p-value of ``name`` against the reference scheduler."""
        return sign_test(self.makespans[name], self.makespans[self.reference])

    def report(self) -> str:
        """Ranking table with per-scheduler win rate and p-value against
        the reference."""
        rows = []
        for row in self.ranking():
            if row.scheduler == self.reference:
                win, p = "-", "-"
            else:
                win = f"{win_rate(self.makespans[row.scheduler], self.makespans[self.reference]):.0%}"
                p = f"{self.p_value_vs_reference(row.scheduler):.3f}"
            rows.append((row.scheduler, row.mean, row.median, win, p))
        return format_table(
            ["scheduler", "mean", "median", f"beats {self.reference}", "p (sign)"],
            rows,
            title=f"Tournament over {len(next(iter(self.makespans.values())))} jobs",
        )


def run_tournament(
    schedulers: Mapping[str, Scheduler],
    graphs: Sequence[TaskGraph],
    env_config: Optional[EnvConfig] = None,
    reference: Optional[str] = None,
) -> TournamentResult:
    """Schedule every graph with every scheduler; validate everything.

    Args:
        schedulers: name -> scheduler instances (reused across jobs).
        graphs: the common workload.
        env_config: capacities used for validation (defaults to the
            standard cluster).
        reference: baseline for win rates/p-values; defaults to
            ``"graphene"`` when present, else the first name.

    Raises:
        ValueError: on empty inputs or an unknown reference.
    """

    if not schedulers or not graphs:
        raise ValueError("need at least one scheduler and one graph")
    env_config = env_config if env_config is not None else EnvConfig()
    capacities = env_config.cluster.capacities
    if reference is None:
        reference = "graphene" if "graphene" in schedulers else next(iter(schedulers))
    if reference not in schedulers:
        raise ValueError(f"reference {reference!r} is not a competitor")

    makespans: Dict[str, List[int]] = {name: [] for name in schedulers}
    wall_times: Dict[str, List[float]] = {name: [] for name in schedulers}
    tm = _telemetry.active()
    with tm.span(
        "tournament.run",
        competitors=len(schedulers),
        jobs=len(graphs),
        reference=reference,
    ):
        for index, graph in enumerate(graphs):
            for name, scheduler in schedulers.items():
                schedule = scheduler.plan(ScheduleRequest(graph))
                validate_schedule(schedule, graph, capacities)
                makespans[name].append(schedule.makespan)
                wall_times[name].append(schedule.wall_time)
                if tm.enabled:
                    tm.record(
                        f"tournament.makespan.{name}",
                        index,
                        float(schedule.makespan),
                    )
    return TournamentResult(
        makespans=makespans, wall_times=wall_times, reference=reference
    )
