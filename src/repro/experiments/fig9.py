"""Fig. 9: the trace-driven experiments (Sec. V-C).

Fig. 9(a)/(b) — workload characterization of the 99-job production trace
(task-count and runtime CDFs per stage).

Fig. 9(c) — CDF of the per-job *reduction in job duration*
``(makespan_Graphene - makespan_Spear) / makespan_Graphene``.  Published
result: Spear is no worse than Graphene on ~90% of jobs and up to ~20%
better; Spear runs with a small budget (100 initial / 50 minimum) here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import EnvConfig, MctsConfig
from ..core.spear import SpearScheduler
from ..metrics.cdf import empirical_cdf, percentile
from ..metrics.comparison import reduction_series
from ..metrics.schedule import validate_schedule
from ..rl.network import PolicyNetwork
from ..schedulers.base import ScheduleRequest
from ..schedulers.registry import make_scheduler
from ..traces.job import Trace
from ..traces.stats import TraceStatistics, trace_statistics
from ..traces.synthetic import TraceConfig, generate_production_trace
from .networks import cached_network
from .reporting import format_cdf
from .scale import resolve_scale

__all__ = [
    "trace_characteristics",
    "Fig9cResult",
    "reduction_cdf",
    "build_trace",
]


def build_trace(
    paper_scale: Optional[bool] = None, seed: int = 0
) -> Trace:
    """The (synthetic) production trace at the requested scale.

    At laptop scale the job count is reduced and runtimes are compressed
    (scale 0.2) so trace makespans stay small enough for in-CI search; the
    paper scale keeps all 99 jobs at full runtimes.
    """
    scale = resolve_scale(paper_scale)
    if scale.label == "paper":
        config = TraceConfig()
    else:
        config = TraceConfig(num_jobs=scale.trace_jobs, runtime_scale=0.2)
    return generate_production_trace(config, seed=seed)


def trace_characteristics(
    paper_scale: Optional[bool] = None, seed: int = 0
) -> TraceStatistics:
    """Fig. 9(a)/(b): characterize the trace workload."""
    return trace_statistics(build_trace(paper_scale, seed))


@dataclass
class Fig9cResult:
    """Per-job Spear vs Graphene outcome on the trace."""

    scale: str
    num_jobs: int
    spear_makespans: List[int]
    graphene_makespans: List[int]
    reductions: List[float]

    def no_worse_fraction(self) -> float:
        """Fraction of jobs where Spear is no worse (paper: ~90%)."""
        wins = sum(1 for r in self.reductions if r >= 0.0)
        return wins / len(self.reductions)

    def max_reduction(self) -> float:
        """Largest per-job reduction (paper: up to ~20%)."""
        return max(self.reductions)

    def median_reduction(self) -> float:
        """Median per-job reduction."""
        return percentile(self.reductions, 50)

    def cdf(self) -> List[Tuple[float, float]]:
        """The Fig. 9(c) CDF of reductions."""
        return empirical_cdf(self.reductions)

    def report(self) -> str:
        cdf = format_cdf(self.cdf(), value_label="reduction", title="Fig 9(c)")
        return (
            f"{cdf}\nno-worse fraction {self.no_worse_fraction():.0%}, "
            f"max reduction {self.max_reduction():.1%}"
        )


def reduction_cdf(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    network: Optional[PolicyNetwork] = None,
    trace: Optional[Trace] = None,
) -> Fig9cResult:
    """Fig. 9(c): schedule every trace job with Spear and Graphene.

    Spear uses the trace budget of Sec. V-C (100/50 at paper scale).
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    if network is None:
        network = cached_network(scale, env_config, seed=seed)
    if trace is None:
        trace = build_trace(paper_scale, seed)

    spear = SpearScheduler(
        network,
        MctsConfig(
            initial_budget=scale.trace_spear_budget,
            min_budget=scale.trace_spear_min_budget,
        ),
        env_config,
        seed=seed,
    )
    graphene = make_scheduler("graphene", env_config)
    capacities = env_config.cluster.capacities

    spear_makespans: List[int] = []
    graphene_makespans: List[int] = []
    for job in trace:
        spear_schedule = spear.plan(ScheduleRequest(job.graph))
        validate_schedule(spear_schedule, job.graph, capacities)
        spear_makespans.append(spear_schedule.makespan)
        graphene_schedule = graphene.plan(ScheduleRequest(job.graph))
        validate_schedule(graphene_schedule, job.graph, capacities)
        graphene_makespans.append(graphene_schedule.makespan)

    return Fig9cResult(
        scale=scale.label,
        num_jobs=len(trace),
        spear_makespans=spear_makespans,
        graphene_makespans=graphene_makespans,
        reductions=reduction_series(spear_makespans, graphene_makespans),
    )
