"""Workload-diversity study: schedulers across structured DAG families.

The paper evaluates on layered random DAGs and MapReduce trace jobs.  The
DAG-scheduling literature it cites ([8]-[10], [15]) additionally uses
structured numerical-kernel graphs; this experiment runs every baseline
across those families (:mod:`repro.dag.suites`) to check that the
qualitative ranking is not an artifact of one topology class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..config import EnvConfig, MctsConfig
from ..dag.graph import TaskGraph
from ..dag.suites import (
    cholesky_dag,
    fft_dag,
    gaussian_elimination_dag,
    stencil_dag,
)
from ..mcts.search import MctsScheduler
from ..metrics.schedule import validate_schedule
from ..schedulers.base import ScheduleRequest
from ..schedulers.registry import make_scheduler
from .reporting import format_table
from .scale import resolve_scale

__all__ = ["DiversityResult", "workload_families", "diversity_study"]


def workload_families(size_hint: int = 5) -> Dict[str, TaskGraph]:
    """One representative graph per structured family.

    Args:
        size_hint: scales each family's parameter (matrix order, tile
            count, stencil width) so families have comparable task counts.
    """

    return {
        "gaussian": gaussian_elimination_dag(max(2, size_hint)),
        "fft": fft_dag(2 ** max(1, size_hint.bit_length() - 1)),
        "stencil": stencil_dag(max(1, size_hint), max(1, size_hint)),
        "cholesky": cholesky_dag(max(1, size_hint - 1)),
    }


@dataclass
class DiversityResult:
    """Makespans per (family, scheduler)."""

    scale: str
    families: Dict[str, TaskGraph]
    makespans: Dict[str, Dict[str, int]]  # family -> scheduler -> makespan

    def ranking(self, family: str) -> List[str]:
        """Schedulers best-first for one family."""
        per = self.makespans[family]
        return sorted(per, key=lambda name: (per[name], name))

    def wins(self, scheduler: str) -> int:
        """Number of families where ``scheduler`` is (co-)best."""
        count = 0
        for family, per in self.makespans.items():
            if per[scheduler] == min(per.values()):
                count += 1
        return count

    def report(self) -> str:
        schedulers = sorted(next(iter(self.makespans.values())))
        rows = []
        for family in sorted(self.makespans):
            per = self.makespans[family]
            rows.append(
                [
                    f"{family} ({self.families[family].num_tasks}t)",
                    *[per[name] for name in schedulers],
                ]
            )
        return format_table(
            ["family", *schedulers],
            rows,
            title=f"Workload diversity ({self.scale} scale)",
        )


def diversity_study(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    schedulers: Sequence[str] = ("tetris", "sjf", "cp", "graphene", "heft"),
    include_mcts: bool = True,
    size_hint: Optional[int] = None,
) -> DiversityResult:
    """Run every scheduler on every structured family.

    MCTS uses the scale's Spear budget; everything is validated.
    """

    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    capacities = env_config.cluster.capacities
    hint = size_hint if size_hint is not None else (8 if scale.label == "paper" else 5)
    families = workload_families(hint)

    makespans: Dict[str, Dict[str, int]] = {name: {} for name in families}
    for family, graph in families.items():
        for name in schedulers:
            schedule = make_scheduler(name, env_config).plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            makespans[family][name] = schedule.makespan
        if include_mcts:
            mcts = MctsScheduler(
                MctsConfig(
                    initial_budget=scale.spear_budget,
                    min_budget=scale.spear_min_budget,
                ),
                env_config,
                seed=seed,
            )
            schedule = mcts.plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            makespans[family]["mcts"] = schedule.makespan
    return DiversityResult(
        scale=scale.label, families=families, makespans=makespans
    )
