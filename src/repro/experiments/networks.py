"""Trained-network caching for the experiment harness.

Fig. 8(b)'s trained network "is used in all the experiments of Spear", so
the harness trains once per (scale, seed) and caches the checkpoint — in
memory for the process and on disk under ``REPRO_CACHE_DIR`` (default
``.repro_cache/`` in the working directory) across processes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Tuple

from ..config import EnvConfig, TrainingConfig, WorkloadConfig
from ..core.pipeline import train_spear_network
from ..errors import CheckpointError
from ..rl.checkpoints import load_checkpoint, save_checkpoint
from ..rl.network import PolicyNetwork
from .scale import ExperimentScale

__all__ = ["cached_network", "cache_dir", "training_config_for_scale"]

_MEMORY_CACHE: Dict[Tuple[str, int], PolicyNetwork] = {}


def cache_dir() -> Path:
    """Directory for cached artifacts (override with ``REPRO_CACHE_DIR``)."""

    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def training_config_for_scale(scale: ExperimentScale) -> TrainingConfig:
    """The :class:`TrainingConfig` matching an experiment scale."""

    return TrainingConfig(
        num_examples=scale.train_examples,
        example_num_tasks=scale.train_tasks,
        epochs=scale.train_epochs,
        rollouts_per_example=scale.train_rollouts,
        supervised_epochs=scale.supervised_epochs,
        batch_size=4,
    )


def cached_network(
    scale: ExperimentScale,
    env_config: EnvConfig | None = None,
    seed: int = 0,
) -> PolicyNetwork:
    """Return the trained network for ``scale``/``seed``, training it once.

    Lookup order: in-process memory, on-disk checkpoint, fresh training
    (which persists the checkpoint for next time).
    """

    key = (scale.label, seed)
    if key in _MEMORY_CACHE:
        return _MEMORY_CACHE[key]

    env_config = (
        env_config
        if env_config is not None
        else EnvConfig(process_until_completion=True)
    )
    path = cache_dir() / f"spear-network-{scale.label}-seed{seed}.npz"
    if path.exists():
        try:
            network = load_checkpoint(path)
            _MEMORY_CACHE[key] = network
            return network
        except CheckpointError:
            path.unlink()  # stale/corrupt: retrain below

    training = training_config_for_scale(scale)
    network, _ = train_spear_network(
        env_config=env_config,
        training=training,
        workload=WorkloadConfig(),
        seed=seed,
        epochs=scale.train_epochs,
    )
    save_checkpoint(network, path)
    _MEMORY_CACHE[key] = network
    return network
