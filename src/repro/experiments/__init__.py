"""Experiment harness: one module per table/figure of the paper.

Every experiment is a plain function returning a dataclass of results, so
benchmarks, tests, examples and the CLI all share the same entry points:

==========  =========================================================
Paper item  Harness entry point
==========  =========================================================
Fig. 3      ``repro.dag.motivating_example`` (+ tests/benchmarks)
Fig. 6(a)   :func:`repro.experiments.fig6.makespan_comparison`
Fig. 6(b)   :func:`repro.experiments.fig6.runtime_comparison`
Fig. 7(a,b) :func:`repro.experiments.fig7.budget_sweep`
Table I     :func:`repro.experiments.table1.runtime_grid`
Fig. 8(a)   :func:`repro.experiments.fig8.budget_reduction`
Fig. 8(b)   :func:`repro.experiments.fig8.learning_curve`
Fig. 9(a,b) :func:`repro.experiments.fig9.trace_characteristics`
Fig. 9(c)   :func:`repro.experiments.fig9.reduction_cdf`
Ablations   :mod:`repro.experiments.ablations`
==========  =========================================================

Default parameters are laptop-scale; set ``REPRO_PAPER_SCALE=1`` (or pass
``paper_scale=True``) to run the published configuration.
"""

from .scale import ExperimentScale, resolve_scale
from .networks import cached_network
from .reporting import format_table, format_cdf
from .fig6 import makespan_comparison, runtime_comparison
from .fig7 import budget_sweep
from .fig8 import budget_reduction, learning_curve
from .fig9 import trace_characteristics, reduction_cdf
from .table1 import runtime_grid
from .ablations import run_ablation, feature_ablation, exploration_sensitivity, ABLATIONS
from .tournament import TournamentResult, run_tournament, sign_test
from .diversity import DiversityResult, diversity_study, workload_families
from .replication import ReplicationResult, replicate
from .generalization import GeneralizationResult, generalization_study

__all__ = [
    "ExperimentScale",
    "resolve_scale",
    "cached_network",
    "format_table",
    "format_cdf",
    "makespan_comparison",
    "runtime_comparison",
    "budget_sweep",
    "budget_reduction",
    "learning_curve",
    "trace_characteristics",
    "reduction_cdf",
    "runtime_grid",
    "run_ablation",
    "feature_ablation",
    "exploration_sensitivity",
    "ABLATIONS",
    "TournamentResult",
    "run_tournament",
    "sign_test",
    "DiversityResult",
    "diversity_study",
    "workload_families",
    "ReplicationResult",
    "replicate",
    "GeneralizationResult",
    "generalization_study",
]
