"""Plain-text rendering of experiment results.

The paper's figures are CDFs and bar/line plots; the harness reports the
same data as aligned text tables so results are diffable and greppable in
CI logs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["format_table", "format_cdf"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Floats are shown with one decimal; everything else via ``str``.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cdf(
    points: Sequence[Tuple[float, float]],
    value_label: str = "value",
    title: str = "",
    max_points: int = 20,
) -> str:
    """Render an empirical CDF as a compact table (down-sampled evenly)."""

    if not points:
        raise ValueError("empty CDF")
    if len(points) > max_points:
        step = (len(points) - 1) / (max_points - 1)
        indices = sorted({round(i * step) for i in range(max_points)})
        points = [points[i] for i in indices]
    rows = [(value, f"{fraction:.2f}") for value, fraction in points]
    return format_table([value_label, "CDF"], rows, title=title)
