"""Microbenchmark harness for the library's hot paths.

``repro bench`` runs the registered suite (:mod:`repro.bench.suites`) with
warmup and repeated timing (:mod:`repro.bench.runner`), exports
``BENCH_<group>.json`` artifacts, and optionally gates against the
committed time budgets in ``benchmarks/baselines.json``
(:mod:`repro.bench.export`).
"""

from .export import (
    BaselineComparison,
    compare_to_baselines,
    export_groups,
    load_baselines,
    write_baselines,
)
from .runner import (
    BenchmarkSpec,
    BenchResult,
    BenchRun,
    machine_metadata,
    run_benchmarks,
)
from .suites import default_suite

__all__ = [
    "BenchmarkSpec",
    "BenchResult",
    "BenchRun",
    "BaselineComparison",
    "compare_to_baselines",
    "default_suite",
    "export_groups",
    "load_baselines",
    "machine_metadata",
    "run_benchmarks",
    "write_baselines",
]
