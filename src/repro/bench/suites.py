"""The registered benchmark suite: one spec per hot path.

Benchmarks cover exactly the paths the perf work targets — environment
stepping and cloning, the cluster event sweep, MCTS search per budget
unit, the rollout policies, and observation building — on the same fig6
workload the experiments use, so a benchmark regression is a regression
in the numbers the paper reproduction reports.

Every ``setup`` builds its own inputs from the run seed; thunks touch no
shared mutable state.  All trajectories are precomputed or reseeded per
invocation so each timed invocation does identical work (deterministic
op counts are what make per-op times comparable across runs).
"""

from __future__ import annotations

from typing import Callable, List

from ..config import EnvConfig, MctsConfig
from ..dag.graph import TaskGraph
from ..env.actions import PROCESS
from ..env.scheduling_env import SchedulingEnv
from ..envarr.backend import AnyEnv, make_env
from ..experiments.fig6 import generate_dags
from ..experiments.scale import resolve_scale
from ..schedulers.base import ScheduleRequest
from ..utils.rng import as_generator
from .runner import BenchmarkSpec

__all__ = ["default_suite"]


def _fig6_graph(seed: int) -> TaskGraph:
    """First DAG of the fig6 workload at repo (laptop) scale."""
    return generate_dags(resolve_scale(None), seed=seed)[0]


def _env(seed: int) -> AnyEnv:
    return make_env(
        _fig6_graph(seed), EnvConfig(process_until_completion=True)
    )


def _random_trajectory(env: SchedulingEnv, seed: int) -> List[int]:
    """A fixed work-conserving episode's action sequence."""
    rng = as_generator(seed + 10_000)
    sim = env.clone()
    trajectory: List[int] = []
    while not sim.done:
        actions = sim.expansion_actions(work_conserving=True)
        action = actions[int(rng.integers(0, len(actions)))]
        trajectory.append(action)
        sim.step(action)
    return trajectory


# --------------------------------------------------------------------- #
# env group
# --------------------------------------------------------------------- #


def _setup_env_step(seed: int) -> Callable[[], None]:
    env = _env(seed)
    trajectory = _random_trajectory(env, seed)

    def thunk() -> None:
        sim = env.clone()
        step = sim.step
        for action in trajectory:
            step(action)

    thunk.ops = len(trajectory)  # type: ignore[attr-defined]
    return thunk


def _setup_env_clone(seed: int) -> Callable[[], None]:
    env = _env(seed)

    def thunk() -> None:
        for _ in range(1000):
            env.clone()

    return thunk


def _setup_env_apply_undo(seed: int) -> Callable[[], None]:
    env = _env(seed)
    if 0 not in env.legal_actions():  # pragma: no cover - defensive
        raise RuntimeError("benchmark workload has no initially fitting task")

    def thunk() -> None:
        apply, undo = env.apply, env.undo
        for _ in range(1000):
            undo(apply(0))

    return thunk


def _setup_env_legal_actions(seed: int) -> Callable[[], None]:
    env = _env(seed)
    env.legal_actions()  # prime the memo: measures the cached path

    def thunk() -> None:
        legal = env.legal_actions
        for _ in range(1000):
            legal()

    return thunk


def _setup_env_playout(seed: int) -> Callable[[], None]:
    env = _env(seed)
    limit = 1000 * env.graph.num_tasks

    def thunk() -> None:
        # Reseeded per invocation: every measurement plays the same episodes.
        rng = as_generator(seed + 20_000)
        for _ in range(10):
            env.clone().random_playout(rng, limit)

    return thunk


# --------------------------------------------------------------------- #
# cluster group
# --------------------------------------------------------------------- #


def _setup_cluster_event_sweep(seed: int) -> Callable[[], None]:
    from ..cluster.state import ClusterState

    state = ClusterState((200, 200))
    rng = as_generator(seed)
    for tid in range(40):
        state.start(
            tid,
            (int(rng.integers(1, 4)), int(rng.integers(1, 4))),
            int(rng.integers(1, 30)),
        )
    events = 0
    probe = state.clone()
    while not probe.is_idle:
        probe.advance_to_next_event()
        events += 1

    def thunk() -> None:
        sweep = state.clone()
        advance = sweep.advance_to_next_event
        while sweep._running:
            advance()

    thunk.ops = events  # type: ignore[attr-defined]
    return thunk


def _setup_cluster_start(seed: int) -> Callable[[], None]:
    from ..cluster.state import ClusterState

    rng = as_generator(seed)
    demands = [
        (int(rng.integers(1, 3)), int(rng.integers(1, 3))) for _ in range(100)
    ]

    def thunk() -> None:
        state = ClusterState((500, 500))
        start = state.start
        for tid, demand in enumerate(demands):
            start(tid, demand, 5, precleared=True)

    thunk.ops = len(demands)  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# mcts group
# --------------------------------------------------------------------- #


def _setup_mcts_search(seed: int) -> Callable[[], None]:
    from ..mcts.search import MctsScheduler

    scale = resolve_scale(None)
    graph = _fig6_graph(seed)
    env_config = EnvConfig(process_until_completion=True)
    config = MctsConfig(
        initial_budget=scale.spear_budget, min_budget=scale.spear_min_budget
    )

    def make_scheduler() -> MctsScheduler:
        return MctsScheduler(config, env_config, seed=seed)

    # The iteration count is deterministic for a fixed seed and workload,
    # so per-budget-unit time is wall time divided by a constant.
    probe = make_scheduler()
    probe.plan(ScheduleRequest(graph))
    iterations = probe.last_statistics.iterations

    def thunk() -> None:
        make_scheduler().plan(ScheduleRequest(graph))

    thunk.ops = iterations  # type: ignore[attr-defined]
    return thunk


def _setup_rollout_random(seed: int) -> Callable[[], None]:
    from ..mcts.policies import RandomRollout

    env = _env(seed)

    def thunk() -> None:
        rollout = RandomRollout(seed=seed + 30_000)
        for _ in range(10):
            rollout.rollout(env.clone())

    return thunk


def _setup_rollout_greedy(seed: int) -> Callable[[], None]:
    from ..mcts.policies import GreedyRollout

    env = _env(seed)
    rollout = GreedyRollout()  # deterministic: safe to reuse across repeats

    def thunk() -> None:
        for _ in range(10):
            rollout.rollout(env.clone())

    return thunk


# --------------------------------------------------------------------- #
# observation group
# --------------------------------------------------------------------- #


def _setup_observation_build(seed: int) -> Callable[[], None]:
    from ..env.observation import ObservationBuilder

    env = _env(seed)
    builder = ObservationBuilder(env.graph, env.config)
    # Mid-episode state: schedule whatever fits, process once.
    while True:
        actions = [a for a in env.legal_actions() if a != PROCESS]
        if not actions:
            break
        env.step(actions[0])
    env.step(PROCESS)

    def thunk() -> None:
        build = builder.build
        for _ in range(100):
            build(env)

    return thunk


# --------------------------------------------------------------------- #
# telemetry group
# --------------------------------------------------------------------- #


def _setup_telemetry_span_disabled(seed: int) -> Callable[[], None]:
    """Cost of an instrumentation point while telemetry is off.

    This is the per-decision price every MCTS search pays by default —
    the no-op span returned by the disabled pipeline — so the budget on
    this benchmark is what keeps instrumentation off the hot paths.
    """
    from ..telemetry import runtime

    tm = runtime.DISABLED

    def thunk() -> None:
        span = tm.span
        for _ in range(1000):
            with span("mcts.decision", depth=1, budget=50):
                pass

    return thunk


def _setup_telemetry_span_enabled(seed: int) -> Callable[[], None]:
    """Cost of the same span with a live in-memory pipeline.

    The enabled/disabled delta is the advertised overhead of turning
    tracing on; the ring buffer caps memory so repeats do identical work.
    """
    from ..telemetry import Telemetry, TelemetryConfig

    tm = Telemetry(TelemetryConfig(enabled=True, max_events=10_000))

    def thunk() -> None:
        span = tm.span
        for _ in range(1000):
            with span("mcts.decision", depth=1, budget=50):
                pass

    return thunk


# --------------------------------------------------------------------- #
# faults group
# --------------------------------------------------------------------- #


# --------------------------------------------------------------------- #
# envarr group (array backend)
# --------------------------------------------------------------------- #


def _setup_envarr_batch_playouts(seed: int) -> Callable[[], None]:
    """256 lockstep random playouts through the batched kernel."""
    from ..envarr.batch import BatchedPlayouts

    graph = _fig6_graph(seed)
    config = EnvConfig(process_until_completion=True, backend="array")
    env = make_env(graph, config)
    kernel = BatchedPlayouts(
        env.arrays,
        config.cluster.capacities,
        until_completion=config.process_until_completion,
        max_ready=config.max_ready,
    )
    lanes = [env] * 256  # run() copies lane state; inputs are never mutated
    limit = 50 * (int(env.arrays.durations.sum()) + graph.num_tasks)
    rng_seed = seed + 40_000

    def thunk() -> None:
        kernel.run(lanes, as_generator(rng_seed), limit)

    thunk.ops = len(lanes)  # type: ignore[attr-defined]
    return thunk


def _setup_envarr_search_budget_unit(seed: int) -> Callable[[], None]:
    """Array-backend MCTS with batched leaf collection, per budget unit.

    Same workload as ``mcts.search_budget_unit`` but at a wide-wave
    configuration (flat 512 budget, ``rollout_batch=512``) where the
    fused playout kernel amortizes: most of each budget unit is rollout
    work, which is exactly what the array backend batches.  Under the
    decayed per-decision budgets of the object benchmark the waves are
    too small to win — tree descent dominates — so this entry prices
    the regime the backend is built for.
    """
    from ..mcts.search import MctsScheduler

    graph = _fig6_graph(seed)
    env_config = EnvConfig(process_until_completion=True, backend="array")
    config = MctsConfig(
        initial_budget=512,
        min_budget=512,
        use_budget_decay=False,
        rollout_batch=512,
    )

    def make_scheduler() -> MctsScheduler:
        return MctsScheduler(config, env_config, seed=seed)

    probe = make_scheduler()
    probe.plan(ScheduleRequest(graph))
    iterations = probe.last_statistics.iterations

    def thunk() -> None:
        make_scheduler().plan(ScheduleRequest(graph))

    thunk.ops = iterations  # type: ignore[attr-defined]
    return thunk


def _setup_envarr_observation_batch(seed: int) -> Callable[[], None]:
    """Batched observation build over clones along one episode."""
    from ..envarr.observation import BatchObservationBuilder

    graph = _fig6_graph(seed)
    config = EnvConfig(process_until_completion=True, backend="array")
    env = make_env(graph, config)
    rng = as_generator(seed + 50_000)
    lanes = []
    sim = env.clone()
    while not sim.done and len(lanes) < 128:
        lanes.append(sim.clone())
        actions = sim.expansion_actions(work_conserving=True)
        sim.step(actions[int(rng.integers(0, len(actions)))])
    builder = BatchObservationBuilder(graph, config)

    def thunk() -> None:
        builder.build_batch(lanes)

    thunk.ops = len(lanes)  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# rl group
# --------------------------------------------------------------------- #


def _rl_lanes(seed: int, count: int = 64):
    """Mid-episode array-backend lanes for batched policy evaluation."""
    graph = _fig6_graph(seed)
    config = EnvConfig(process_until_completion=True, backend="array")
    env = make_env(graph, config)
    rng = as_generator(seed + 70_000)
    lanes = []
    sim = env.clone()
    while not sim.done and len(lanes) < count:
        lanes.append(sim.clone())
        actions = sim.expansion_actions(work_conserving=True)
        sim.step(actions[int(rng.integers(0, len(actions)))])
    return graph, config, lanes


def _setup_rl_policy_forward_batch(seed: int) -> Callable[[], None]:
    """Batched MLP leaf evaluation: one forward over all lanes.

    This is the inner loop of batched-MCTS leaf priors and network
    rollouts (``PolicyEvaluator.distributions``).
    """
    from ..core.pipeline import default_network
    from ..rl.evaluator import PolicyEvaluator

    graph, config, lanes = _rl_lanes(seed)
    network = default_network(config, seed=seed)
    evaluator = PolicyEvaluator(network, config, lanes[0].arrays)

    def thunk() -> None:
        evaluator.distributions(lanes)

    thunk.ops = len(lanes)  # type: ignore[attr-defined]
    return thunk


def _setup_rl_gnn_forward(seed: int) -> Callable[[], None]:
    """Batched GNN leaf evaluation: message passing over all lanes."""
    from ..core.pipeline import default_graph_network
    from ..rl.evaluator import PolicyEvaluator

    graph, config, lanes = _rl_lanes(seed)
    network = default_graph_network(config, seed=seed)
    evaluator = PolicyEvaluator(network, config, lanes[0].arrays)

    def thunk() -> None:
        evaluator.distributions(lanes)

    thunk.ops = len(lanes)  # type: ignore[attr-defined]
    return thunk


def _setup_faults_inject_step(seed: int) -> Callable[[], None]:
    """Per-dispatch cost of drawing one fault-injected task attempt.

    The online executor calls :meth:`FaultInjector.attempt` once per
    dispatch, on the serving path; its cost is dominated by spawning the
    per-attempt ``SeedSequence`` generator.  The budget on this benchmark
    is what keeps fault-aware mode from slowing the executor down.
    """
    from ..faults import (
        FaultInjector,
        FaultPlan,
        RuntimeNoise,
        StragglerModel,
        TransientFaults,
    )

    plan = FaultPlan(
        transient=TransientFaults(0.05),
        straggler=StragglerModel(0.1, slowdown=2.0),
        noise=RuntimeNoise(kind="lognormal", scale=0.2),
        seed=seed,
    )
    injector = FaultInjector(plan)
    # Fresh keys per call mirror real use: each dispatch is a new attempt.
    keys = [(j, t, 1) for j in range(5) for t in range(100)]

    def thunk() -> None:
        attempt = injector.attempt
        for j, t, a in keys:
            attempt(j, t, a, 10)

    thunk.ops = len(keys)  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# online group
# --------------------------------------------------------------------- #


def _online_inputs(seed: int):
    """A fixed six-job arrival stream on a (10, 10) cluster."""
    from ..config import ClusterConfig, WorkloadConfig
    from ..dag.generators import random_layered_dag
    from ..online import ArrivingJob, OnlineSimulator

    workload = WorkloadConfig(
        num_tasks=8, max_runtime=6, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    jobs = [
        ArrivingJob(3 * i, random_layered_dag(workload, seed=seed + 100 + i))
        for i in range(6)
    ]
    simulator = OnlineSimulator(ClusterConfig(capacities=(10, 10), horizon=8))
    return simulator, jobs


def _setup_online_fault_free(seed: int) -> Callable[[], None]:
    """End-to-end fault-free online run through the repro.sim kernel.

    One thunk is a whole six-job episode — arrivals, greedy dispatch,
    completions — so per-task time prices the kernel event loop plus a
    dispatch round per tick.  The budget here is what keeps the kernel
    refactor from taxing the serving path.
    """
    from ..online import cp_ranker

    simulator, jobs = _online_inputs(seed)
    num_tasks = sum(job.graph.num_tasks for job in jobs)

    def thunk() -> None:
        simulator.run(jobs, cp_ranker)

    thunk.ops = num_tasks  # type: ignore[attr-defined]
    return thunk


def _setup_online_faulty(seed: int) -> Callable[[], None]:
    """The same episode under crash + transient faults with retries.

    Adds the fault-mode surcharge on top of the fault-free run: timeline
    cursor drains, per-attempt injector draws, retry backoff events and
    crash-triggered replans all ride the kernel queue.
    """
    from ..faults import (
        FaultPlan,
        MachineCrash,
        RetryPolicy,
        RuntimeNoise,
        StragglerModel,
        TransientFaults,
    )
    from ..online import cp_ranker

    simulator, jobs = _online_inputs(seed)
    num_tasks = sum(job.graph.num_tasks for job in jobs)
    plan = FaultPlan(
        crashes=(
            MachineCrash(0, 6, (4, 4), recover_at=18),
            MachineCrash(1, 30, (3, 3), recover_at=44),
        ),
        transient=TransientFaults(0.15),
        straggler=StragglerModel(0.1, slowdown=2.0),
        noise=RuntimeNoise(kind="lognormal", scale=0.2),
        retry=RetryPolicy(max_attempts=4, backoff_base=2, backoff_cap=8),
        seed=seed + 13,
    )

    def thunk() -> None:
        simulator.run(jobs, cp_ranker, faults=plan)

    thunk.ops = num_tasks  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# streaming group
# --------------------------------------------------------------------- #


def _setup_streaming_arrival_step(seed: int) -> Callable[[], None]:
    """Per-arrival cost of the open-system admission path.

    One thunk runs a short Poisson stream under a tight concurrency
    limit, so every arrival exercises the full chain — lazy stream pull,
    feasibility check, admission decision, backlog churn — on top of the
    kernel loop.  Per-arrival time is the steady-state serving overhead
    an operator pays per submitted job.
    """
    from ..config import ClusterConfig
    from ..online import sjf_ranker
    from ..streaming import (
        AdmissionConfig,
        PoissonProcess,
        StreamingSimulator,
        layered_job_factory,
    )

    process = PoissonProcess(0.5, 60, layered_job_factory(), seed=seed)
    simulator = StreamingSimulator(ClusterConfig(capacities=(10, 10), horizon=8))
    admission = AdmissionConfig(max_concurrent=3, max_queue=8)

    def thunk() -> None:
        simulator.run(process, sjf_ranker, admission=admission)

    thunk.ops = process.num_jobs  # type: ignore[attr-defined]
    return thunk


def _setup_streaming_steady_1k_jobs(seed: int) -> Callable[[], None]:
    """A 1000-job steady-state horizon, end to end.

    The tentpole scale claim: thousands of concurrent DAGs through the
    lazy arrival chain without materializing the stream.  Per-job time
    here is the number that must stay flat as the streaming layer grows.
    """
    from ..config import ClusterConfig
    from ..online import sjf_ranker
    from ..streaming import PoissonProcess, StreamingSimulator, layered_job_factory

    process = PoissonProcess(0.3, 1000, layered_job_factory(), seed=seed)
    simulator = StreamingSimulator(ClusterConfig(capacities=(20, 20), horizon=8))

    def thunk() -> None:
        simulator.run(process, sjf_ranker)

    thunk.ops = process.num_jobs  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# federation group
# --------------------------------------------------------------------- #


def _setup_federation_route_step(seed: int) -> Callable[[], None]:
    """Per-arrival cost of the federated routing path.

    Same open-system shape as streaming.arrival_step, but every arrival
    additionally pays the ROUTE event hop, the per-shard feasibility
    scan, and the least-loaded placement decision across two shards.
    The delta against streaming.arrival_step is the routing overhead.
    """
    from ..federation import FederatedStreamingSimulator, ShardSpec
    from ..online import sjf_ranker
    from ..streaming import AdmissionConfig, PoissonProcess, layered_job_factory

    process = PoissonProcess(0.5, 60, layered_job_factory(), seed=seed)
    admission = AdmissionConfig(max_concurrent=3, max_queue=8)
    specs = [ShardSpec((5, 5), sjf_ranker, admission=admission) for _ in range(2)]
    simulator = FederatedStreamingSimulator(specs, router="least-load")

    def thunk() -> None:
        simulator.run(process)

    thunk.ops = process.num_jobs  # type: ignore[attr-defined]
    return thunk


def _setup_federation_steady_2shard(seed: int) -> Callable[[], None]:
    """A steady-state 2-shard federation with stealing enabled.

    End-to-end per-job cost of the full federated stack — shared kernel,
    namespaced shard processes, routing, imbalance checks after every
    settle — at a scale where the work stealer actually fires.  Per-job
    time here must stay comparable to the single-scheduler streaming
    path for the federation to be worth its overhead.
    """
    from ..federation import FederatedStreamingSimulator, ShardSpec
    from ..online import sjf_ranker
    from ..streaming import PoissonProcess, layered_job_factory

    process = PoissonProcess(0.3, 400, layered_job_factory(), seed=seed)
    specs = [ShardSpec((10, 10), sjf_ranker) for _ in range(2)]
    simulator = FederatedStreamingSimulator(
        specs, router="hash:salt=1", steal_threshold=1
    )

    def thunk() -> None:
        simulator.run(process)

    thunk.ops = process.num_jobs  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# lint group
# --------------------------------------------------------------------- #


def _setup_lint_flow_full_repo(seed: int) -> Callable[[], None]:
    """Whole-program flow analysis (REP201-205) over all of src/repro.

    One thunk is the complete CI gate — parse every module, build the
    project graph, run every flow rule to its interprocedural fixed
    point — so per-file time is what a contributor pays per repo file
    at commit time.  The budget here keeps the analyzer honest as both
    the repo and the rule set grow.
    """
    from pathlib import Path

    import repro

    from ..analysis.flow.engine import analyze_project

    root = Path(repro.__file__).resolve().parent
    num_files = sum(1 for _ in root.rglob("*.py"))

    def thunk() -> None:
        analyze_project([root])

    thunk.ops = num_files  # type: ignore[attr-defined]
    return thunk


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #


def default_suite() -> List[BenchmarkSpec]:
    """All registered benchmarks, in display order.

    Setups whose op count depends on the generated workload (trajectory
    length, event count, MCTS iteration count) report it via the thunk's
    ``ops`` attribute; the others declare ``inner_ops`` here.
    """
    return [
        BenchmarkSpec("env.step", "env", _setup_env_step),
        BenchmarkSpec("env.clone", "env", _setup_env_clone, inner_ops=1000),
        BenchmarkSpec(
            "env.apply_undo", "env", _setup_env_apply_undo, inner_ops=1000
        ),
        BenchmarkSpec(
            "env.legal_actions_cached",
            "env",
            _setup_env_legal_actions,
            inner_ops=1000,
        ),
        BenchmarkSpec(
            "env.random_playout",
            "env",
            _setup_env_playout,
            inner_ops=10,
            repeats=20,
        ),
        BenchmarkSpec("cluster.event_sweep", "cluster", _setup_cluster_event_sweep),
        BenchmarkSpec("cluster.start", "cluster", _setup_cluster_start),
        BenchmarkSpec(
            "mcts.search_budget_unit",
            "mcts",
            _setup_mcts_search,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "mcts.rollout_random",
            "mcts",
            _setup_rollout_random,
            inner_ops=10,
            repeats=20,
        ),
        BenchmarkSpec(
            "mcts.rollout_greedy",
            "mcts",
            _setup_rollout_greedy,
            inner_ops=10,
            repeats=20,
        ),
        BenchmarkSpec(
            "observation.build",
            "observation",
            _setup_observation_build,
            inner_ops=100,
        ),
        BenchmarkSpec(
            "envarr.batch_playouts",
            "envarr",
            _setup_envarr_batch_playouts,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "envarr.search_budget_unit",
            "envarr",
            _setup_envarr_search_budget_unit,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "envarr.observation_batch",
            "envarr",
            _setup_envarr_observation_batch,
            repeats=20,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "rl.policy_forward_batch",
            "rl",
            _setup_rl_policy_forward_batch,
            repeats=20,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "rl.gnn_forward",
            "rl",
            _setup_rl_gnn_forward,
            repeats=20,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "faults.inject_step",
            "faults",
            _setup_faults_inject_step,
        ),
        BenchmarkSpec(
            "online.run_fault_free",
            "online",
            _setup_online_fault_free,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "online.run_faulty",
            "online",
            _setup_online_faulty,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "streaming.arrival_step",
            "streaming",
            _setup_streaming_arrival_step,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "streaming.steady_1k_jobs",
            "streaming",
            _setup_streaming_steady_1k_jobs,
            repeats=5,
            quick_repeats=1,
            warmup=1,
        ),
        BenchmarkSpec(
            "federation.route_step",
            "federation",
            _setup_federation_route_step,
            repeats=10,
            quick_repeats=3,
            warmup=1,
        ),
        BenchmarkSpec(
            "federation.steady_2shard",
            "federation",
            _setup_federation_steady_2shard,
            repeats=5,
            quick_repeats=1,
            warmup=1,
        ),
        BenchmarkSpec(
            "telemetry.span_disabled",
            "telemetry",
            _setup_telemetry_span_disabled,
            inner_ops=1000,
        ),
        BenchmarkSpec(
            "telemetry.span_enabled",
            "telemetry",
            _setup_telemetry_span_enabled,
            inner_ops=1000,
        ),
        BenchmarkSpec(
            "lint.flow_full_repo",
            "lint",
            _setup_lint_flow_full_repo,
            repeats=3,
            quick_repeats=1,
            warmup=1,
        ),
    ]
