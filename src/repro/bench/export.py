"""JSON export and baseline regression checks for benchmark runs.

Two artifact kinds:

* ``BENCH_<group>.json`` — one file per benchmark group (``env``,
  ``cluster``, ``mcts``, ``observation``), written by every run; CI
  uploads them so the perf trajectory of the repository is a tracked
  artifact rather than folklore.
* ``benchmarks/baselines.json`` — committed per-benchmark time budgets in
  microseconds.  A budget is a *ceiling with headroom* (the generating
  machine's measured mean times a headroom factor), not a measured mean:
  CI machines vary, and the gate exists to catch order-of-magnitude
  regressions (an accidentally quadratic loop, a dropped cache), not 5%
  noise.  A run regresses when its mean exceeds the budget by more than
  ``max_regression``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List

from ..errors import ConfigError
from .runner import BenchRun

__all__ = [
    "export_groups",
    "load_baselines",
    "write_baselines",
    "compare_to_baselines",
    "BaselineComparison",
]

#: Budget multiplier applied to measured means by ``write_baselines``.
DEFAULT_HEADROOM = 2.0


def export_groups(run: BenchRun, out_dir: str | Path = ".") -> List[Path]:
    """Write one ``BENCH_<group>.json`` per group; return the paths."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for group, results in run.by_group().items():
        payload = {
            "group": group,
            "meta": run.meta,
            "results": [result.as_dict() for result in results],
        }
        path = directory / f"BENCH_{group}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        paths.append(path)
    return paths


def load_baselines(path: str | Path) -> Dict[str, float]:
    """Read a baselines file; returns ``{benchmark_name: budget_us}``.

    Raises:
        ConfigError: on unreadable or malformed input.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot load baselines from {path}: {exc}") from exc
    budgets = payload.get("budgets_us")
    if not isinstance(budgets, dict) or not all(
        isinstance(v, (int, float)) for v in budgets.values()
    ):
        raise ConfigError(
            f"baselines file {path} must map 'budgets_us' to numbers"
        )
    return {str(name): float(value) for name, value in budgets.items()}


def write_baselines(
    run: BenchRun,
    path: str | Path,
    headroom: float = DEFAULT_HEADROOM,
) -> Path:
    """Write budgets derived from ``run`` (measured mean x ``headroom``)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, Any] = {
        "meta": {
            **run.meta,
            "headroom": headroom,
            "note": (
                "budgets_us are measured means times the headroom factor; "
                "regenerate with: repro bench --update-baselines"
            ),
        },
        "budgets_us": {
            result.name: round(result.mean_us * headroom, 2)
            for result in sorted(run.results, key=lambda r: r.name)
        },
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


@dataclass(frozen=True)
class BaselineComparison:
    """Verdict of one benchmark against its committed budget."""

    name: str
    mean_us: float
    budget_us: float
    ratio: float
    ok: bool

    def line(self) -> str:
        """One human-readable report row."""
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.name:<32} {self.mean_us:>10.2f} us vs budget "
            f"{self.budget_us:.2f} us ({self.ratio:.2f}x)  {verdict}"
        )


def compare_to_baselines(
    run: BenchRun,
    baselines: Dict[str, float],
    max_regression: float = 0.25,
) -> List[BaselineComparison]:
    """Check every result that has a budget; unknown benchmarks pass.

    A result fails when ``mean_us > budget_us * (1 + max_regression)``.
    """
    comparisons: List[BaselineComparison] = []
    for result in run.results:
        budget = baselines.get(result.name)
        if budget is None:
            continue
        ratio = result.mean_us / budget if budget > 0 else float("inf")
        comparisons.append(
            BaselineComparison(
                name=result.name,
                mean_us=result.mean_us,
                budget_us=budget,
                ratio=ratio,
                ok=ratio <= 1.0 + max_regression,
            )
        )
    return comparisons
