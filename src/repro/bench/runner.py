"""Microbenchmark runner: warmup, repeated timing, statistical summary.

The perf work in this repository (undo-log search, fused rollouts, cached
action masks) is only defensible if the hot paths are *measured*, so the
runner is deliberately boring and reproducible:

* every benchmark declares a ``setup`` that builds a thunk over a fixed
  seed — no benchmark ever shares mutable state with another;
* the thunk performs ``inner_ops`` operations per invocation so that one
  timed invocation is comfortably above timer resolution;
* ``warmup`` invocations are discarded (allocator/caches settle), then
  ``repeats`` invocations are timed individually, giving a distribution
  rather than a single number;
* results carry machine and seed metadata so an exported JSON artifact is
  interpretable months later on different hardware.

Timing uses ``time.perf_counter`` directly (one call before and after each
invocation); per-operation figures are reported in microseconds because
that is the natural scale of this library's hot paths.
"""

from __future__ import annotations

import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "BenchmarkSpec",
    "BenchResult",
    "BenchRun",
    "machine_metadata",
    "run_benchmarks",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered microbenchmark.

    Attributes:
        name: unique dotted identifier, e.g. ``"mcts.search_budget_unit"``.
        group: export group; results land in ``BENCH_<group>.json``.
        setup: called once per run with the seed; returns the thunk to
            time.  Everything expensive (DAG generation, env construction)
            belongs in ``setup``, only the measured hot path in the thunk.
        inner_ops: operations one thunk invocation performs; per-op times
            divide by this.  A setup whose op count depends on the
            generated workload (trajectory length, iteration count) sets
            an ``ops`` attribute on the returned thunk instead, which
            overrides this field.
        quick_repeats / repeats: timed invocations in ``--quick`` and full
            mode respectively.
        warmup: untimed invocations before measurement starts.
    """

    name: str
    group: str
    setup: Callable[[int], Callable[[], Any]]
    inner_ops: int = 1
    repeats: int = 30
    quick_repeats: int = 5
    warmup: int = 3


@dataclass(frozen=True)
class BenchResult:
    """Summary statistics of one benchmark's timed invocations."""

    name: str
    group: str
    inner_ops: int
    repeats: int
    warmup: int
    mean_us: float
    median_us: float
    stdev_us: float
    min_us: float
    max_us: float

    @classmethod
    def from_samples(
        cls,
        spec: BenchmarkSpec,
        samples_s: List[float],
        warmup: int,
        inner_ops: int,
    ) -> "BenchResult":
        """Fold raw per-invocation seconds into per-op microseconds."""
        per_op_us = [s / inner_ops * 1e6 for s in samples_s]
        return cls(
            name=spec.name,
            group=spec.group,
            inner_ops=inner_ops,
            repeats=len(per_op_us),
            warmup=warmup,
            mean_us=statistics.fmean(per_op_us),
            median_us=statistics.median(per_op_us),
            stdev_us=statistics.stdev(per_op_us) if len(per_op_us) > 1 else 0.0,
            min_us=min(per_op_us),
            max_us=max(per_op_us),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "group": self.group,
            "inner_ops": self.inner_ops,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "mean_us": self.mean_us,
            "median_us": self.median_us,
            "stdev_us": self.stdev_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
        }


@dataclass
class BenchRun:
    """All results of one runner invocation plus shared metadata."""

    seed: int
    quick: bool
    meta: Dict[str, Any]
    results: List[BenchResult] = field(default_factory=list)

    def by_group(self) -> Dict[str, List[BenchResult]]:
        """Results bucketed by export group, insertion-ordered."""
        groups: Dict[str, List[BenchResult]] = {}
        for result in self.results:
            groups.setdefault(result.group, []).append(result)
        return groups

    def result(self, name: str) -> BenchResult:
        """Look up one result by benchmark name."""
        for candidate in self.results:
            if candidate.name == name:
                return candidate
        raise ConfigError(f"no benchmark result named {name!r}")


def machine_metadata(seed: int, quick: bool) -> Dict[str, Any]:
    """Reproducibility metadata recorded with every export."""
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "seed": seed,
        "quick": quick,
    }


def run_benchmarks(
    specs: List[BenchmarkSpec],
    seed: int = 0,
    quick: bool = False,
    name_filter: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> BenchRun:
    """Execute ``specs`` in order and return the collected results.

    Args:
        specs: benchmarks to run (see :mod:`repro.bench.suites`).
        seed: forwarded to each spec's ``setup`` for deterministic inputs.
        quick: use each spec's ``quick_repeats`` (the CI smoke setting).
        name_filter: substring filter on benchmark names.
        progress: optional per-benchmark callback (the CLI prints a line).

    Raises:
        ConfigError: if the filter matches nothing.
    """
    selected = [
        spec
        for spec in specs
        if name_filter is None or name_filter in spec.name
    ]
    if not selected:
        raise ConfigError(f"no benchmark matches filter {name_filter!r}")
    run = BenchRun(seed=seed, quick=quick, meta=machine_metadata(seed, quick))
    for spec in selected:
        thunk = spec.setup(seed)
        inner_ops = getattr(thunk, "ops", spec.inner_ops)
        for _ in range(spec.warmup):
            thunk()
        repeats = spec.quick_repeats if quick else spec.repeats
        samples: List[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            thunk()
            samples.append(time.perf_counter() - start)
        result = BenchResult.from_samples(spec, samples, spec.warmup, inner_ops)
        run.results.append(result)
        if progress is not None:
            progress(
                f"{result.name:<32} {result.mean_us:>10.2f} us/op "
                f"(median {result.median_us:.2f}, n={result.repeats})"
            )
    return run
