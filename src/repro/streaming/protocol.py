"""Wire protocol of the scheduling service: newline-delimited JSON.

One frame is one JSON object on one line (NDJSON) — trivially framed
over any byte stream, readable with ``nc``, greppable in logs.  Every
frame carries a ``type``; request frames carry a caller-chosen ``id``
echoed verbatim in the matching reply, so a client may pipeline many
requests over one connection and correlate out-of-order replies.

Client → server::

    {"type": "schedule", "id": "job-1", "graph": {...}, "cluster": {...}}
    {"type": "ping"}
    {"type": "subscribe"}            # telemetry stream on this connection
    {"type": "drain"}                # finish in-flight work, then shut down

Server → client::

    {"type": "schedule.reply", "id": "job-1", "schedule": {...},
     "batch": {"tick": 3, "size": 2}}
    {"type": "error", "id": "job-1", "error": "..."}
    {"type": "pong"} / {"type": "subscribe.ack"} / {"type": "drain.ack", ...}
    {"type": "telemetry", "event": "serve.batch", ...}

``graph`` uses the :mod:`repro.dag.io` schema and ``schedule`` the
:mod:`repro.metrics.export` schema, both versioned, so the wire format
inherits their compatibility story.  All malformed input surfaces as
:class:`~repro.errors.ProtocolError` — the daemon answers an ``error``
frame and keeps the connection alive (one bad client frame must not
take down a shared scheduler).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..dag.io import graph_from_dict, graph_to_dict
from ..errors import ConfigError, GraphError, ProtocolError, TraceError
from ..metrics.export import schedule_to_dict
from ..metrics.schedule import Schedule
from ..schedulers.base import ClusterSnapshot, ScheduleRequest

__all__ = [
    "DRAIN",
    "DRAIN_ACK",
    "ERROR",
    "PING",
    "PONG",
    "REPLY",
    "SCHEDULE",
    "SUBSCRIBE",
    "SUBSCRIBE_ACK",
    "TELEMETRY",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "parse_schedule",
    "reply_frame",
    "schedule_frame",
]

SCHEDULE = "schedule"
REPLY = "schedule.reply"
ERROR = "error"
PING = "ping"
PONG = "pong"
SUBSCRIBE = "subscribe"
SUBSCRIBE_ACK = "subscribe.ack"
DRAIN = "drain"
DRAIN_ACK = "drain.ack"
TELEMETRY = "telemetry"


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame: compact sorted-key JSON plus the newline."""
    line = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    return line.encode("utf-8") + b"\n"


def decode_frame(line: Union[bytes, str]) -> Dict[str, Any]:
    """Parse one wire line into a frame dict.

    Raises:
        ProtocolError: on undecodable bytes, invalid JSON, a non-object
            payload, or a missing/non-string ``type``.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(frame).__name__}"
        )
    ftype = frame.get("type")
    if not isinstance(ftype, str) or not ftype:
        raise ProtocolError("frame is missing a string 'type'")
    return frame


# ---------------------------------------------------------------------- #
# schedule requests
# ---------------------------------------------------------------------- #


def schedule_frame(
    request_id: str,
    request: ScheduleRequest,
) -> Dict[str, Any]:
    """Client-side builder: one ``schedule`` frame from a request."""
    frame: Dict[str, Any] = {
        "type": SCHEDULE,
        "id": request_id,
        "graph": graph_to_dict(request.graph),
    }
    if request.cluster is not None:
        frame["cluster"] = {
            "capacities": list(request.cluster.capacities),
            "available": list(request.cluster.available),
            "now": request.cluster.now,
        }
    if request.frozen:
        frame["frozen"] = {str(t): list(span) for t, span in request.frozen.items()}
    if request.pinned:
        frame["pinned"] = {str(t): list(span) for t, span in request.pinned.items()}
    if request.deadline is not None:
        frame["deadline"] = request.deadline
    return frame


def _parse_placements(raw: Any, field: str) -> Dict[int, Tuple[int, int]]:
    if not isinstance(raw, dict):
        raise ProtocolError(f"{field} must be an object of task_id -> [start, finish]")
    spans: Dict[int, Tuple[int, int]] = {}
    for key, value in raw.items():
        try:
            tid = int(key)
            begin, end = value
            spans[tid] = (int(begin), int(end))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed {field} entry {key!r}: {exc}") from exc
    return spans


def _parse_cluster(raw: Any) -> ClusterSnapshot:
    if not isinstance(raw, dict):
        raise ProtocolError("cluster must be an object")
    try:
        capacities = tuple(int(c) for c in raw["capacities"])
        available = tuple(int(a) for a in raw.get("available", raw["capacities"]))
        at = int(raw.get("now", 0))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed cluster snapshot: {exc}") from exc
    try:
        return ClusterSnapshot(capacities=capacities, available=available, now=at)
    except ConfigError as exc:
        raise ProtocolError(str(exc)) from exc


def parse_schedule(frame: Mapping[str, Any]) -> Tuple[str, ScheduleRequest]:
    """Server-side: extract ``(request_id, ScheduleRequest)`` from a frame.

    Raises:
        ProtocolError: on a wrong type, a missing/empty id, or any
            malformed graph/cluster/placement field.
    """
    if frame.get("type") != SCHEDULE:
        raise ProtocolError(f"expected a {SCHEDULE!r} frame, got {frame.get('type')!r}")
    request_id = frame.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("schedule frame is missing a string 'id'")
    graph_payload = frame.get("graph")
    if graph_payload is None:
        raise ProtocolError("schedule frame is missing 'graph'")
    try:
        graph = graph_from_dict(graph_payload)
    except (TraceError, GraphError) as exc:
        raise ProtocolError(f"bad graph payload: {exc}") from exc
    cluster: Optional[ClusterSnapshot] = None
    if "cluster" in frame:
        cluster = _parse_cluster(frame["cluster"])
    deadline = frame.get("deadline")
    if deadline is not None:
        try:
            deadline = int(deadline)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad deadline: {exc}") from exc
    request = ScheduleRequest(
        graph=graph,
        cluster=cluster,
        frozen=_parse_placements(frame.get("frozen", {}), "frozen"),
        pinned=_parse_placements(frame.get("pinned", {}), "pinned"),
        deadline=deadline,
    )
    return request_id, request


# ---------------------------------------------------------------------- #
# replies
# ---------------------------------------------------------------------- #


def reply_frame(
    request_id: str,
    schedule: Schedule,
    tick: int,
    batch_size: int,
) -> Dict[str, Any]:
    """One ``schedule.reply`` frame; ``batch`` records the serving tick."""
    return {
        "type": REPLY,
        "id": request_id,
        "schedule": schedule_to_dict(schedule),
        "batch": {"tick": tick, "size": batch_size},
    }


def error_frame(request_id: Optional[str], message: str) -> Dict[str, Any]:
    """One ``error`` frame (id echoes the request when it had one)."""
    frame: Dict[str, Any] = {"type": ERROR, "error": message}
    if request_id is not None:
        frame["id"] = request_id
    return frame
