"""``repro serve`` — an asyncio scheduling daemon over the NDJSON protocol.

The daemon wraps one registry scheduler behind a TCP socket: clients
connect, send ``schedule`` frames (a DAG plus an optional live cluster
snapshot), and receive ``schedule.reply`` frames.  Three design points:

* **batched replanning** — requests are funneled into one queue and a
  single worker drains it in *ticks*: everything queued when the worker
  wakes (capped at ``batch_max``) plans as one batch, so a burst of
  concurrent replans — the crash-recovery thundering herd — is served
  together rather than head-of-line blocking the socket reader.  Each
  reply names its ``batch.tick`` and ``batch.size``; the smoke test and
  the telemetry stream both read them.
* **planning off the event loop** — the batch plans inside
  ``run_in_executor``, so readers keep accepting and queueing frames
  while the CPU-bound planner runs.
* **graceful drain** — a ``drain`` frame stops admission (subsequent
  ``schedule`` frames get an ``error`` reply), waits for every queued
  request to be answered, acknowledges with the final counts, and shuts
  the server down.  Nothing accepted is ever dropped.

Sim-time discipline (REP203 guards this package): the daemon never
reads a wall clock — ticks are batch sequence numbers and every time in
a request/reply is the *client's* sim-time, passed through verbatim.

:func:`run_smoke` runs the full loop in-process — real server, real
sockets on an ephemeral port, concurrent clients, drain — and returns
the frames for CI to assert on.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import ProtocolError, ReproError
from ..schedulers.base import ClusterSnapshot, ScheduleRequest, Scheduler
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from ..utils.rng import as_generator
from . import protocol
from .arrivals import layered_job_factory

__all__ = ["SchedulerService", "ServiceStats", "run_serve", "run_smoke"]

_SEED_BOUND = 2**63 - 1


@dataclass
class ServiceStats:
    """Counters one daemon accumulates over its lifetime."""

    accepted: int = 0
    served: int = 0
    errors: int = 0
    batches: int = 0
    max_batch: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "accepted": self.accepted,
            "served": self.served,
            "errors": self.errors,
            "batches": self.batches,
            "max_batch": self.max_batch,
        }


@dataclass
class _Pending:
    """One accepted request waiting for its serving tick."""

    request_id: str
    request: ScheduleRequest
    writer: asyncio.StreamWriter


class SchedulerService:
    """One scheduler served over newline-delimited JSON.

    Args:
        scheduler: any :class:`~repro.schedulers.base.Scheduler` (use
            :func:`repro.schedulers.make_scheduler` to build one from a
            registry spec).
        host: bind address.
        port: bind port; 0 picks an ephemeral port (see
            :attr:`address` after :meth:`start`).
        batch_max: most requests planned in one serving tick.
        telemetry: pipeline for ``serve.*`` events; ``None`` defers to
            the globally active pipeline.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_max: int = 16,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if batch_max < 1:
            raise ProtocolError(f"batch_max must be >= 1, got {batch_max}")
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.stats = ServiceStats()
        self.address: Tuple[str, int] = (host, port)
        self._tm = _telemetry.for_config(telemetry)
        self._queue: asyncio.Queue  # created in start()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_task: Optional[asyncio.Task] = None
        self._subscribers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._stopped: asyncio.Event  # created in start()
        self._tick = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> Tuple[str, int]:
        """Bind the socket and start the batch worker; returns the address."""
        self._queue = asyncio.Queue()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        self._worker_task = asyncio.create_task(self._worker())
        if self._tm.enabled:
            self._tm.event("serve.start", host=self.address[0], port=self.address[1])
        return self.address

    async def serve_until_drained(self) -> None:
        """Block until a client drains the daemon (or :meth:`stop` runs)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Tear down: cancel the worker, close the listener, release waiters."""
        if self._worker_task is not None:
            self._worker_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._worker_task
            self._worker_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._tm.enabled:
            self._tm.event("serve.stop", served=self.stats.served)
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # the batch worker
    # ------------------------------------------------------------------ #

    def _plan_batch(
        self, batch: Sequence[_Pending], tick: int
    ) -> List[Tuple[Dict[str, Any], bool]]:
        """Plan one batch (runs in the executor, off the event loop)."""
        replies: List[Tuple[Dict[str, Any], bool]] = []
        for pending in batch:
            try:
                schedule = self.scheduler.plan(pending.request)
            except ReproError as exc:
                replies.append(
                    (protocol.error_frame(pending.request_id, str(exc)), False)
                )
                continue
            replies.append(
                (
                    protocol.reply_frame(
                        pending.request_id, schedule, tick, len(batch)
                    ),
                    True,
                )
            )
        return replies

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            head = await self._queue.get()
            batch = [head]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._tick += 1
            tick = self._tick
            try:
                replies = await loop.run_in_executor(
                    None, self._plan_batch, batch, tick
                )
                for pending, (frame, ok) in zip(batch, replies):
                    if ok:
                        self.stats.served += 1
                    else:
                        self.stats.errors += 1
                    await self._send(pending.writer, frame)
            finally:
                for _ in batch:
                    self._queue.task_done()
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            if self._tm.enabled:
                self._tm.event("serve.batch", tick=tick, size=len(batch))
            await self._publish(
                {
                    "type": protocol.TELEMETRY,
                    "event": "serve.batch",
                    "tick": tick,
                    "size": len(batch),
                }
            )

    # ------------------------------------------------------------------ #
    # connections
    # ------------------------------------------------------------------ #

    async def _send(
        self, writer: asyncio.StreamWriter, frame: Dict[str, Any]
    ) -> None:
        if writer.is_closing():
            return
        try:
            writer.write(protocol.encode_frame(frame))
            await writer.drain()
        except (ConnectionError, RuntimeError):
            self._subscribers.discard(writer)

    async def _publish(self, frame: Dict[str, Any]) -> None:
        for writer in list(self._subscribers):
            await self._send(writer, frame)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                except ProtocolError as exc:
                    await self._send(writer, protocol.error_frame(None, str(exc)))
                    continue
                ftype = frame["type"]
                if ftype == protocol.SCHEDULE:
                    await self._on_schedule(frame, writer)
                elif ftype == protocol.PING:
                    await self._send(writer, {"type": protocol.PONG})
                elif ftype == protocol.SUBSCRIBE:
                    self._subscribers.add(writer)
                    await self._send(writer, {"type": protocol.SUBSCRIBE_ACK})
                elif ftype == protocol.DRAIN:
                    await self._on_drain(writer)
                    break
                else:
                    await self._send(
                        writer,
                        protocol.error_frame(
                            frame.get("id"), f"unknown frame type {ftype!r}"
                        ),
                    )
        finally:
            self._subscribers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _on_schedule(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            await self._send(
                writer,
                protocol.error_frame(frame.get("id"), "service is draining"),
            )
            return
        try:
            request_id, request = protocol.parse_schedule(frame)
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send(writer, protocol.error_frame(frame.get("id"), str(exc)))
            return
        self.stats.accepted += 1
        if self._tm.enabled:
            self._tm.event(
                "serve.accept",
                request=request_id,
                tasks=request.graph.num_tasks,
                replan=request.is_replan,
            )
        await self._queue.put(_Pending(request_id, request, writer))

    async def _on_drain(self, writer: asyncio.StreamWriter) -> None:
        self._draining = True
        await self._queue.join()
        await self._send(
            writer,
            {
                "type": protocol.DRAIN_ACK,
                "served": self.stats.served,
                "errors": self.stats.errors,
                "batches": self.stats.batches,
            },
        )
        await self.stop()


# ---------------------------------------------------------------------- #
# entry points
# ---------------------------------------------------------------------- #


def run_serve(
    scheduler: Scheduler,
    host: str = "127.0.0.1",
    port: int = 0,
    batch_max: int = 16,
    telemetry: Optional[TelemetryConfig] = None,
    on_ready: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> ServiceStats:
    """Run the daemon until a client drains it; returns the final stats.

    ``on_ready`` is invoked with the bound ``(host, port)`` once the
    socket listens (the CLI uses it to announce the address).
    """

    async def main() -> ServiceStats:
        service = SchedulerService(
            scheduler, host=host, port=port, batch_max=batch_max, telemetry=telemetry
        )
        address = await service.start()
        if on_ready is not None:
            on_ready(address)
        try:
            await service.serve_until_drained()
        finally:
            await service.stop()
        return service.stats

    return asyncio.run(main())


def run_smoke(
    scheduler: Scheduler,
    requests: int = 3,
    batch_max: int = 8,
    seed: int = 0,
    capacities: Sequence[int] = (20, 20),
    telemetry: Optional[TelemetryConfig] = None,
) -> Dict[str, Any]:
    """In-process round trip: real server, concurrent clients, drain.

    Starts the daemon on an ephemeral port, submits ``requests``
    concurrent ``schedule`` frames (seeded layered DAGs over a full
    ``capacities`` cluster snapshot) from separate connections, then
    drains.  Returns every frame exchanged, for CI to assert on::

        {"address": [host, port], "replies": [...], "drain": {...},
         "pong": {...}, "stats": {...}}

    Raises:
        ProtocolError: when a reply is missing, malformed, or the drain
            acknowledgement does not account for every request.
    """
    if requests < 1:
        raise ProtocolError(f"smoke needs at least one request, got {requests}")
    factory = layered_job_factory()
    rng = as_generator(seed)
    frames = []
    snapshot = ClusterSnapshot(
        capacities=tuple(capacities), available=tuple(capacities), now=0
    )
    for index in range(requests):
        graph = factory(index, int(rng.integers(0, _SEED_BOUND)))
        frames.append(
            protocol.schedule_frame(
                f"smoke-{index}", ScheduleRequest(graph=graph, cluster=snapshot)
            )
        )

    async def client(port: int, frame: Dict[str, Any]) -> Dict[str, Any]:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(protocol.encode_frame(frame))
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ProtocolError(
                        f"connection closed before a reply to {frame['id']!r}"
                    )
                reply = protocol.decode_frame(line)
                if reply["type"] == protocol.TELEMETRY:
                    continue
                return reply
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def drain_client(port: int) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(protocol.encode_frame({"type": protocol.PING}))
            await writer.drain()
            pong = protocol.decode_frame(await reader.readline())
            writer.write(protocol.encode_frame({"type": protocol.DRAIN}))
            await writer.drain()
            ack = protocol.decode_frame(await reader.readline())
            return pong, ack
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def main() -> Dict[str, Any]:
        service = SchedulerService(
            scheduler, port=0, batch_max=batch_max, telemetry=telemetry
        )
        host, port = await service.start()
        try:
            replies = await asyncio.gather(*(client(port, f) for f in frames))
            pong, ack = await drain_client(port)
            await service.serve_until_drained()
        finally:
            await service.stop()
        return {
            "address": [host, port],
            "replies": sorted(
                replies, key=lambda r: int(str(r.get("id", "-0")).rpartition("-")[2])
            ),
            "pong": pong,
            "drain": ack,
            "stats": service.stats.as_dict(),
        }

    summary = asyncio.run(main())
    for frame, reply in zip(frames, summary["replies"]):
        if reply.get("type") != protocol.REPLY:
            raise ProtocolError(
                f"request {frame['id']!r} got {reply.get('type')!r}: {reply}"
            )
        placements = reply["schedule"]["placements"]
        if len(placements) != len(frame["graph"]["tasks"]):
            raise ProtocolError(
                f"reply to {frame['id']!r} placed {len(placements)} of "
                f"{len(frame['graph']['tasks'])} tasks"
            )
    if summary["pong"].get("type") != protocol.PONG:
        raise ProtocolError(f"ping was not answered: {summary['pong']}")
    ack = summary["drain"]
    if ack.get("type") != protocol.DRAIN_ACK or ack.get("served", 0) + ack.get(
        "errors", 0
    ) < requests:
        raise ProtocolError(f"drain did not account for every request: {ack}")
    return summary
