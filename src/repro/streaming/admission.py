"""Admission control and bounded-queue backpressure.

An open system cannot promise to run everything it is offered: under
sustained overload either latency grows without bound or work is shed.
The controller makes that decision explicit at each arrival:

* **admit** — the job enters the cluster immediately (the closed-batch
  behaviour; always the answer when ``max_concurrent`` is unset);
* **queue** — the cluster is at its concurrency limit; the job waits in
  a FIFO backlog and its queueing delay is charged to the system, not
  the scheduler;
* **reject** — the backlog itself is full (``max_queue``); the job is
  shed and *reported* (never silently dropped — the streaming analogue
  of the fault layer's no-silent-loss rule).

The controller owns only the decision and the backlog; *when* backlog
jobs are released is the engine's call (after each settled instant, so
an admission never observes a half-applied cluster state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..dag.graph import TaskGraph
from ..errors import ConfigError

__all__ = ["ADMIT", "QUEUE", "REJECT", "AdmissionConfig", "AdmissionController", "QueuedJob"]

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionConfig:
    """Backpressure limits; ``None`` means unbounded.

    Attributes:
        max_concurrent: jobs allowed in the cluster at once (admitted,
            not yet completed/failed).  Unset reproduces closed-batch
            semantics: every arrival admits instantly.
        max_queue: backlog capacity once the concurrency limit is hit;
            a full backlog sheds new arrivals.
    """

    max_concurrent: Optional[int] = None
    max_queue: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1 when set")
        if self.max_queue is not None and self.max_queue < 0:
            raise ConfigError("max_queue must be >= 0 when set")
        if self.max_queue is not None and self.max_concurrent is None:
            raise ConfigError("max_queue without max_concurrent never engages")


@dataclass(frozen=True)
class QueuedJob:
    """One backlogged arrival awaiting admission."""

    index: int
    arrival_time: int
    graph: TaskGraph


class AdmissionController:
    """FIFO backpressure state for one run."""

    __slots__ = ("config", "backlog")

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.backlog: Deque[QueuedJob] = deque()

    def offer(self, job: QueuedJob, active_count: int) -> str:
        """Decide one arrival; a queued job is stored in the backlog.

        Returns:
            :data:`ADMIT`, :data:`QUEUE`, or :data:`REJECT`.
        """
        limit = self.config.max_concurrent
        if limit is None or (active_count < limit and not self.backlog):
            return ADMIT
        cap = self.config.max_queue
        if cap is not None and len(self.backlog) >= cap:
            return REJECT
        self.backlog.append(job)
        return QUEUE

    def release(self, active_count: int) -> List[QueuedJob]:
        """Pop backlog jobs that now fit under the concurrency limit."""
        limit = self.config.max_concurrent
        released: List[QueuedJob] = []
        if limit is None:  # pragma: no cover - backlog never fills then
            released, self.backlog = list(self.backlog), deque()
            return released
        while self.backlog and active_count + len(released) < limit:
            released.append(self.backlog.popleft())
        return released

    def __len__(self) -> int:
        return len(self.backlog)
