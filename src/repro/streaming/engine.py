"""Open-system steady-state simulator over the :mod:`repro.sim` kernel.

:class:`StreamingSimulator` is the continuous-arrival sibling of
:class:`repro.online.OnlineSimulator`: the same execution, policy and
reporting layers on the same kernel, but the workload is an
:class:`~repro.streaming.arrivals.ArrivalProcess` consumed lazily (one
pending arrival scheduled at a time) through admission control, so
thousand-DAG horizons never materialize the whole stream and overload is
shed instead of crashing the run.

The event loop is a superset of the online loop — gauges, next-event
target, utilization accounting, tick, dispatch — with three additions
that are all no-ops in the closed-batch configuration (all arrivals
known, unbounded admission, no horizon):

* **horizon cut-off** — when the next pending arrival falls past
  ``start + horizon`` the stream is closed: the pending kernel event is
  *cancelled* (a queue tombstone) and the iterator is never pulled
  again; work already in the system drains normally;
* **backlog release** — after each settled instant, jobs queued by the
  admission controller are admitted while the concurrency limit allows,
  in FIFO order, before the dispatch round fills the cluster;
* **in-system sampling** — the jobs-in-system step series (active plus
  backlogged) is appended after every settled instant.

Because the additions are no-ops there, a finite stream with unbounded
admission reproduces :class:`~repro.online.OnlineSimulator` event for
event — the property suite pins the results as *equal*, executed
schedules included.
"""

from __future__ import annotations

from typing import Optional

from ..config import ClusterConfig
from ..errors import ConfigError, EnvironmentStateError
from ..faults.plan import FaultPlan
from ..online.execution import ExecutionLayer
from ..online.policy import PolicyLayer
from ..online.rankers import Ranker
from ..schedulers.base import Scheduler
from ..sim import SimKernel
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from .admission import AdmissionConfig, AdmissionController
from .arrivals import ArrivalProcess
from .reporting import StreamingReportingLayer
from .results import StreamingResult
from .workload import StreamingWorkloadLayer

__all__ = ["StreamingSimulator"]


class StreamingSimulator:
    """Continuous-arrival simulation of an open system.

    Args:
        cluster: capacities (defaults to the paper's 20x20).
        max_steps: global safety cap on settled instants.
        telemetry: where serving metrics report (``streaming.*`` events
            and gauges on top of the online layer's).  ``None`` defers
            to the globally active pipeline.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        max_steps: int = 5_000_000,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.cluster_config = cluster if cluster is not None else ClusterConfig()
        self.max_steps = max_steps
        self.telemetry = telemetry

    def run(
        self,
        arrivals: ArrivalProcess,
        ranker: Ranker,
        admission: Optional[AdmissionConfig] = None,
        horizon: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        rescheduler: Optional[Scheduler] = None,
    ) -> StreamingResult:
        """Run the arrival process to completion (or the horizon).

        Args:
            arrivals: the open workload source.
            ranker: base dispatch order (see :mod:`repro.online.rankers`).
            admission: backpressure limits; ``None`` admits everything.
            horizon: run length in slots from the first arrival; the
                stream is cut off past it (in-flight work drains).
            faults: seeded fault model; ``None`` runs fault-free.
            rescheduler: context-aware scheduler replanning residual
                DAGs, exactly as in the online simulator.

        Raises:
            ConfigError: on an empty stream or invalid limits.
            EnvironmentStateError: if the step cap is exceeded or the
                system wedges with work it can never place.
        """
        if horizon is not None and horizon < 0:
            raise ConfigError(f"horizon must be >= 0, got {horizon}")
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            "streaming.run",
            ranker=type(ranker).__name__,
            bounded=admission is not None,
            horizon=-1 if horizon is None else horizon,
            faults=faults is not None and not faults.is_null,
            rescheduler=rescheduler.name if rescheduler is not None else "",
        ) as span:
            result = self._run(arrivals, ranker, tm, admission, horizon, faults, rescheduler)
            if tm.enabled:
                span.set(
                    arrivals=result.arrivals,
                    admitted=result.admitted,
                    rejected=len(result.rejected),
                    makespan=result.online.makespan,
                    p50_jct=result.p50_jct,
                    p99_jct=result.p99_jct,
                    mean_queueing_delay=result.mean_queueing_delay,
                    peak_in_system=result.peak_in_system,
                )
                tm.inc("streaming.jobs", result.arrivals)
        return result

    def _run(
        self,
        arrivals: ArrivalProcess,
        ranker: Ranker,
        tm: _telemetry.TelemetryLike,
        admission: Optional[AdmissionConfig],
        horizon: Optional[int],
        faults: Optional[FaultPlan],
        rescheduler: Optional[Scheduler],
    ) -> StreamingResult:
        capacities = self.cluster_config.capacities
        if faults is not None and not faults.is_null:
            faults.validate_against(capacities)

        stream = arrivals.jobs()
        first = next(stream, None)
        if first is None:
            raise ConfigError("arrival process yielded no jobs")
        # Global task handles are job_index * offset + task_id; the
        # process's declared bound plays the role the batch simulator
        # computes by scanning the whole stream.
        offset = max(1, arrivals.task_id_bound)
        start = first.arrival_time

        kernel = SimKernel(start=start)
        reporting = StreamingReportingLayer(capacities, tm, start_time=start)
        execution = ExecutionLayer(capacities, kernel, reporting, offset, faults)
        policy = PolicyLayer(ranker, rescheduler, kernel, execution)
        execution.policy = policy
        reporting.exec_label = policy.exec_label
        controller = AdmissionController(admission)
        workload = StreamingWorkloadLayer(
            first, stream, kernel, execution, policy, controller, reporting, capacities
        )
        cutoff = None if horizon is None else start + horizon

        def in_system() -> int:
            return len(execution.active) + len(controller.backlog)

        # Settle the opening instant (first arrivals, pre-history
        # faults) and fill the cluster once before the loop gauges.
        kernel.drain_due()
        policy.dispatch_round()
        reporting.sample_in_system(kernel.now, in_system())

        steps = 0
        while execution.active or workload.has_pending:
            steps += 1
            if steps > self.max_steps:
                raise EnvironmentStateError("streaming simulation exceeded step cap")
            reporting.gauges(execution)
            if cutoff is not None:
                due = workload.pending_arrival_time
                if due is not None and due > cutoff:
                    workload.close(cutoff)
                    if not execution.active and not workload.has_pending:
                        break
            target = kernel.next_event_time()
            if target is None:
                if not execution.active and controller.backlog:
                    # Everything in flight drained at the last instant;
                    # the backlog alone remains.  Admit from it now.
                    workload.release_backlog()
                    policy.dispatch_round()
                    reporting.sample_in_system(kernel.now, in_system())
                    continue
                if execution.fstate is not None:
                    # Permanently stuck (e.g. unrecovered capacity loss
                    # below some task's demand): report, don't lose.
                    execution.fail_stuck()
                    continue
                raise EnvironmentStateError(
                    "idle cluster with active jobs but nothing ready: "
                    "inconsistent DAG state"
                )
            reporting.account(execution.state, target)
            kernel.tick_to(target)
            workload.release_backlog()
            policy.dispatch_round()
            reporting.sample_in_system(kernel.now, in_system())

        return reporting.finalize_streaming(execution.state.now, execution.fstate)
