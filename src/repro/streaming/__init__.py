"""Continuous-arrival streaming simulation and the scheduling daemon.

The open-system layer over the :mod:`repro.sim` kernel (DESIGN.md
Sec. 13): arrival processes (:mod:`~repro.streaming.arrivals`),
admission control with bounded-queue backpressure
(:mod:`~repro.streaming.admission`), the steady-state simulator
(:mod:`~repro.streaming.engine`) and its distribution metrics
(:mod:`~repro.streaming.results`), plus the NDJSON wire protocol
(:mod:`~repro.streaming.protocol`) and asyncio daemon
(:mod:`~repro.streaming.service`) behind ``repro serve``.

A finite stream with unbounded admission reproduces
:class:`repro.online.OnlineSimulator` exactly — the closed-batch
equivalence property in ``tests/property`` pins it.
"""

from .admission import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionConfig,
    AdmissionController,
    QueuedJob,
)
from .arrivals import (
    ArrivalProcess,
    JobFactory,
    PoissonProcess,
    TraceArrivals,
    UniformProcess,
    layered_job_factory,
    parse_arrival_spec,
    streaming_workload,
)
from .engine import StreamingSimulator
from .results import RejectedJob, StreamingResult, percentile
from .service import SchedulerService, ServiceStats, run_serve, run_smoke

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "AdmissionConfig",
    "AdmissionController",
    "ArrivalProcess",
    "JobFactory",
    "PoissonProcess",
    "QueuedJob",
    "RejectedJob",
    "SchedulerService",
    "ServiceStats",
    "StreamingResult",
    "StreamingSimulator",
    "TraceArrivals",
    "UniformProcess",
    "layered_job_factory",
    "parse_arrival_spec",
    "percentile",
    "run_serve",
    "run_smoke",
    "streaming_workload",
]
