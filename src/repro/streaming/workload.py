"""Streaming workload layer: lazy arrivals, admission, backlog release.

The closed-batch :class:`repro.online.workload.WorkloadLayer` pushes
every arrival into the kernel up front; an open process may be thousands
of jobs long (or conceptually endless), so this layer keeps **exactly
one** future arrival scheduled: when it fires, the next is pulled from
the :class:`~repro.streaming.arrivals.ArrivalProcess` and scheduled.
Within the ``ARRIVAL`` priority class the kernel's push-sequence
tie-break then reproduces stream order at shared instants — the chained
schedule is order-equivalent to the batch pre-push, which the
closed-batch equivalence property pins.

Each firing arrival is validated (an infeasible job is *rejected*, not
fatal — an open system keeps serving) and offered to the
:class:`~repro.streaming.admission.AdmissionController`; backlogged jobs
are released by the engine after each settled instant.  :meth:`close`
implements the horizon cut-off: the pending scheduled arrival is
*cancelled* — a tombstone in the kernel's event queue — and the stream
is never pulled again.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..cluster.resources import validate_demands
from ..errors import CapacityError, ConfigError, EnvironmentStateError
from ..online.execution import ExecutionLayer
from ..online.policy import PolicyLayer
from ..online.results import ArrivingJob
from ..online.workload import ARRIVAL_KIND
from ..sim import Event, EventClass, SimKernel
from .admission import ADMIT, QUEUE, AdmissionController, QueuedJob
from .reporting import StreamingReportingLayer

__all__ = ["StreamingWorkloadLayer"]


class StreamingWorkloadLayer:
    """Feeds an open arrival process through admission into execution.

    Args:
        first: the already-pulled first job (the engine peeks it to
            anchor the kernel clock at the first arrival).
        rest: iterator over the remaining stream, nondecreasing times.
        kernel: the simulation kernel.
        execution: where admitted jobs live.
        policy: notified of each admission (initial replan).
        admission: backpressure decision state.
        reporting: the streaming ledger.
        capacities: cluster capacities (per-arrival feasibility check).
    """

    def __init__(
        self,
        first: ArrivingJob,
        rest: Iterator[ArrivingJob],
        kernel: SimKernel,
        execution: ExecutionLayer,
        policy: PolicyLayer,
        admission: AdmissionController,
        reporting: StreamingReportingLayer,
        capacities: Sequence[int],
    ) -> None:
        self.kernel = kernel
        self.execution = execution
        self.policy = policy
        self.admission = admission
        self.reporting = reporting
        self.capacities = tuple(capacities)
        self._rest = rest
        self._next_index = 0
        self._last_arrival = first.arrival_time
        self._pending: Optional[Event] = None
        self._closed = False
        kernel.register(ARRIVAL_KIND, self._on_arrival)
        self._schedule(first)

    # ------------------------------------------------------------------ #
    # stream plumbing
    # ------------------------------------------------------------------ #

    def _schedule(self, job: ArrivingJob) -> None:
        if job.arrival_time < self._last_arrival:
            raise ConfigError(
                f"arrival process went backwards: job {self._next_index} at "
                f"{job.arrival_time} after {self._last_arrival}"
            )
        self._last_arrival = job.arrival_time
        self._pending = self.kernel.schedule(
            job.arrival_time,
            EventClass.ARRIVAL,
            ARRIVAL_KIND,
            (self._next_index, job),
        )
        self._next_index += 1

    def _schedule_next(self) -> None:
        if self._closed:
            return
        job = next(self._rest, None)
        if job is None:
            self._closed = True
            return
        self._schedule(job)

    def close(self, at: int) -> None:
        """Horizon cut-off: tombstone the pending arrival, stop pulling."""
        if self._pending is not None and not self._pending.cancelled:
            self.kernel.queue.cancel(self._pending)
            self.reporting.record_rejection(
                self._pending.payload[0],
                self._pending.payload[1].arrival_time,
                "horizon",
            )
            self.reporting.record_arrival()
        self._pending = None
        self._closed = True
        self.reporting.record_cutoff(at)

    # ------------------------------------------------------------------ #
    # arrival handling
    # ------------------------------------------------------------------ #

    @property
    def pending_arrival_time(self) -> Optional[int]:
        """Due time of the scheduled (not yet fired) arrival, if any."""
        if self._pending is None or self._pending.cancelled:
            return None
        return self._pending.time

    @property
    def has_pending(self) -> bool:
        """Work remains outside the execution layer (stream or backlog)."""
        return self.pending_arrival_time is not None or bool(self.admission.backlog)

    def _feasible(self, job: ArrivingJob) -> Optional[str]:
        graph = job.graph
        if graph.num_resources != len(self.capacities):
            return (
                f"job has {graph.num_resources} resource dims, "
                f"cluster has {len(self.capacities)}"
            )
        try:
            for task in graph:
                validate_demands(task.demands, self.capacities, label=task.label())
        except (CapacityError, ConfigError) as exc:
            return str(exc)
        return None

    def _on_arrival(self, event: Event) -> None:
        self._pending = None
        index, job = event.payload
        reporting = self.reporting
        reporting.record_arrival()
        reason = self._feasible(job)
        if reason is not None:
            reporting.record_rejection(index, job.arrival_time, reason)
            self._schedule_next()
            return
        queued = QueuedJob(index, job.arrival_time, job.graph)
        decision = self.admission.offer(queued, len(self.execution.active))
        if decision == ADMIT:
            self._admit(queued, job.arrival_time)
        elif decision == QUEUE:
            reporting.record_queued(
                index, job.arrival_time, len(self.admission.backlog)
            )
        else:
            reporting.record_rejection(index, job.arrival_time, "backpressure")
        self._schedule_next()

    def _admit(self, queued: QueuedJob, admit_at: int) -> None:
        active_job = self.execution.admit(
            queued.index, queued.arrival_time, queued.graph
        )
        self.reporting.record_admission(queued.index, admit_at)
        self.policy.on_admit(active_job)

    def release_backlog(self) -> None:
        """Admit backlogged jobs freed by departures at the settled instant."""
        if not self.admission.backlog:
            return
        released = self.admission.release(len(self.execution.active))
        if not released:
            return
        admit_at = self.kernel.now
        for queued in released:
            if admit_at < queued.arrival_time:  # pragma: no cover - defensive
                raise EnvironmentStateError(
                    "backlog release before the job's own arrival"
                )
            self._admit(queued, admit_at)
