"""Open-system arrival processes feeding the streaming simulator.

A closed batch (:mod:`repro.online`) knows every job up front; an open
system does not.  An :class:`ArrivalProcess` is the streaming engine's
only view of the workload: a restartable generator of
:class:`~repro.online.results.ArrivingJob` records in nondecreasing
arrival order, plus a ``task_id_bound`` so the engine can compute its
global task-handle stride without materializing the stream.

Three processes are provided:

* :class:`PoissonProcess` — memoryless arrivals at a target rate (jobs
  per slot), the standard open-loop workload model; job DAGs come from a
  seeded :data:`JobFactory` so the whole stream is a pure function of
  one seed;
* :class:`UniformProcess` — fixed inter-arrival spacing (closed-form
  load control, handy for tests and worst-case burst analysis);
* :class:`TraceArrivals` — replay an explicit list of arriving jobs
  (trace-driven load, and the bridge the closed-batch equivalence
  property rides on: a finite stream through :class:`TraceArrivals`
  reproduces :class:`~repro.online.OnlineSimulator` exactly).

:func:`parse_arrival_spec` maps the CLI's ``kind:key=value,...`` spec
strings (``poisson:rate=0.05,n=1000``) onto these classes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Protocol, Sequence

from ..config import WorkloadConfig
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..errors import ConfigError
from ..online.results import ArrivingJob
from ..specs import (
    ARRIVAL_GRAMMAR,
    ARRIVAL_SPEC_SCHEMAS,
    pop_option,
    reject_unknown_options,
    tokenize_spec,
    unknown_kind_error,
)
from ..utils.rng import as_generator

__all__ = [
    "ArrivalProcess",
    "JobFactory",
    "PoissonProcess",
    "TraceArrivals",
    "UniformProcess",
    "layered_job_factory",
    "parse_arrival_spec",
    "streaming_workload",
]

#: Builds the DAG of arrival ``index`` from a derived integer seed.
JobFactory = Callable[[int, int], TaskGraph]

_SEED_BOUND = 2**63 - 1


class ArrivalProcess(Protocol):
    """A restartable, deterministic source of arriving jobs."""

    def jobs(self) -> Iterator[ArrivingJob]:
        """Fresh iterator over the stream, nondecreasing arrival times."""

    @property
    def task_id_bound(self) -> int:
        """Exclusive upper bound on task ids of every emitted graph."""


def streaming_workload(num_tasks: int = 8) -> WorkloadConfig:
    """The default per-job DAG profile for steady-state runs.

    Thousand-DAG horizons need jobs far smaller than the paper's
    100-task offline workload; this mirrors the compact profile the
    online benchmarks use (short runtimes, low demands) so a 20x20
    cluster sustains a meaningful arrival rate.
    """
    return WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=6,
        max_demand=4,
        runtime_mean=3.0,
        demand_mean=2.0,
    )


def layered_job_factory(workload: Optional[WorkloadConfig] = None) -> JobFactory:
    """A :data:`JobFactory` drawing random layered DAGs from ``workload``."""
    config = workload if workload is not None else streaming_workload()

    def factory(index: int, seed: int) -> TaskGraph:
        del index  # the seed alone keys the draw
        return random_layered_dag(config, seed=seed)

    factory.task_id_bound = config.num_tasks  # type: ignore[attr-defined]
    return factory


def _factory_bound(job_factory: JobFactory) -> int:
    bound = getattr(job_factory, "task_id_bound", None)
    if bound is None:
        raise ConfigError(
            "job factory must declare a task_id_bound attribute "
            "(exclusive upper bound on emitted task ids)"
        )
    return int(bound)


class PoissonProcess:
    """Memoryless arrivals: exponential gaps with mean ``1 / rate``.

    Arrival times are the floor of the cumulative (float) gap sum, so
    the realized integer timeline matches
    :func:`repro.traces.arrivals.poisson_arrivals` — several jobs may
    share a slot at high rates, which is exactly the burst behaviour an
    admission controller must absorb.

    Args:
        rate: expected arrivals per slot (> 0).
        num_jobs: stream length (>= 1).
        job_factory: seeded DAG builder; one derived seed per job.
        seed: root seed; the whole stream (gaps and DAGs) is a pure
            function of it.
    """

    def __init__(
        self,
        rate: float,
        num_jobs: int,
        job_factory: JobFactory,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ConfigError(f"arrival rate must be positive, got {rate}")
        if num_jobs < 1:
            raise ConfigError(f"need at least one arrival, got {num_jobs}")
        self.rate = float(rate)
        self.num_jobs = int(num_jobs)
        self.job_factory = job_factory
        self.seed = seed
        self._bound = _factory_bound(job_factory)

    @property
    def task_id_bound(self) -> int:
        return self._bound

    def jobs(self) -> Iterator[ArrivingJob]:
        rng = as_generator(self.seed)
        mean_gap = 1.0 / self.rate
        elapsed = 0.0
        for index in range(self.num_jobs):
            elapsed += float(rng.exponential(mean_gap))
            job_seed = int(rng.integers(0, _SEED_BOUND))
            yield ArrivingJob(
                arrival_time=int(elapsed),
                graph=self.job_factory(index, job_seed),
            )


class UniformProcess:
    """Fixed spacing: arrival ``k`` lands at ``k * interarrival``."""

    def __init__(
        self,
        interarrival: int,
        num_jobs: int,
        job_factory: JobFactory,
        seed: int = 0,
    ) -> None:
        if interarrival < 0:
            raise ConfigError(f"interarrival must be >= 0, got {interarrival}")
        if num_jobs < 1:
            raise ConfigError(f"need at least one arrival, got {num_jobs}")
        self.interarrival = int(interarrival)
        self.num_jobs = int(num_jobs)
        self.job_factory = job_factory
        self.seed = seed
        self._bound = _factory_bound(job_factory)

    @property
    def task_id_bound(self) -> int:
        return self._bound

    def jobs(self) -> Iterator[ArrivingJob]:
        rng = as_generator(self.seed)
        for index in range(self.num_jobs):
            job_seed = int(rng.integers(0, _SEED_BOUND))
            yield ArrivingJob(
                arrival_time=index * self.interarrival,
                graph=self.job_factory(index, job_seed),
            )


class TraceArrivals:
    """Replay an explicit stream (trace-driven load).

    Jobs are ordered by ``(arrival_time, original index)`` — the same
    order :class:`repro.online.workload.WorkloadLayer` schedules a
    batch, which is what makes closed-batch streaming reproduce the
    online simulator event-for-event.
    """

    def __init__(self, jobs: Sequence[ArrivingJob]) -> None:
        if not jobs:
            raise ConfigError("need at least one arriving job")
        indexed = sorted(enumerate(jobs), key=lambda e: (e[1].arrival_time, e[0]))
        self._jobs: List[ArrivingJob] = [job for _, job in indexed]
        self._bound = 1 + max(max(job.graph.task_ids) for job in self._jobs)

    @property
    def task_id_bound(self) -> int:
        return self._bound

    def jobs(self) -> Iterator[ArrivingJob]:
        return iter(self._jobs)


def parse_arrival_spec(
    spec: str,
    job_factory: Optional[JobFactory] = None,
    seed: int = 0,
) -> ArrivalProcess:
    """Build an :class:`ArrivalProcess` from a ``kind:key=value,...`` spec.

    Supported kinds::

        poisson:rate=0.05,n=1000      memoryless, `rate` jobs per slot
        uniform:interarrival=20,n=50  fixed spacing
        trace:path=trace.json,mean=25 Poisson arrivals over a saved
                                      workload trace (repro trace --out);
                                      interarrival=K gives fixed spacing

    Args:
        spec: the spec string.
        job_factory: DAG source for the synthetic kinds (defaults to
            :func:`layered_job_factory`); ignored by ``trace``.
        seed: seed for gaps and generated DAGs.

    Raises:
        ConfigError: on unknown kinds, missing/unknown keys, or bad
            values.  Shared-grammar parsing (:mod:`repro.specs`): the
            option schemas live in
            :data:`repro.specs.ARRIVAL_SPEC_SCHEMAS` and unknown
            kinds/keys come back with did-you-mean suggestions.
    """
    kind, options = tokenize_spec(spec, ARRIVAL_GRAMMAR)

    def _pop(key: str, typ: type, required: bool = False) -> Any:
        return pop_option(
            options, key, typ, spec=spec, grammar=ARRIVAL_GRAMMAR,
            required=required,
        )

    factory = job_factory if job_factory is not None else layered_job_factory()
    process: ArrivalProcess
    if kind == "poisson":
        rate = _pop("rate", float, required=True)
        n = _pop("n", int, required=True)
        process = PoissonProcess(rate, n, factory, seed=seed)
    elif kind == "uniform":
        interarrival = _pop("interarrival", int, required=True)
        n = _pop("n", int, required=True)
        process = UniformProcess(interarrival, n, factory, seed=seed)
    elif kind == "trace":
        path = _pop("path", str, required=True)
        from ..traces.arrivals import poisson_arrivals, uniform_arrivals
        from ..traces.job import Trace

        trace = Trace.load(path)
        if "interarrival" in options:
            stream = uniform_arrivals(trace, _pop("interarrival", int))
        else:
            stream = poisson_arrivals(trace, _pop("mean", float, required=True), seed=seed)
        process = TraceArrivals(stream)
    else:
        raise unknown_kind_error(kind, ARRIVAL_SPEC_SCHEMAS, ARRIVAL_GRAMMAR)
    reject_unknown_options(
        options, ARRIVAL_SPEC_SCHEMAS[kind], spec=spec, grammar=ARRIVAL_GRAMMAR
    )
    return process
