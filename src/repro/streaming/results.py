"""Steady-state result records and their deterministic metrics export.

A closed batch is judged by its makespan; an open system is judged by
its *distributions*: p50/p99 job completion time, queueing delay under
backpressure, sustained utilization over the whole horizon, and the
jobs-in-system trajectory.  :class:`StreamingResult` carries the
underlying :class:`~repro.online.results.OnlineResult` (so every
closed-batch metric and the executed schedules remain available) plus
the open-system accounting.

:meth:`StreamingResult.metrics_dict` is the CI determinism surface: it
contains only values that are pure functions of (arrival process, seed,
scheduler), never wall-clock or environment data, so two runs of the
same spec must serialize byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

from ..online.results import OnlineResult

__all__ = ["RejectedJob", "StreamingResult", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in [0, 100]; the empty sequence maps to 0.0 so aggregate
    reports never divide by zero on a fully-shed run.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


@dataclass(frozen=True)
class RejectedJob:
    """One arrival shed by admission control (reported, never lost)."""

    index: int
    arrival_time: int
    reason: str


@dataclass(frozen=True)
class StreamingResult:
    """Aggregate outcome of one open-system run.

    Attributes:
        online: the closed-batch view over *admitted* jobs (outcomes,
            makespan, utilization integrals, fault record, executed
            schedules) — ``online.outcomes`` order aligns with
            :attr:`queueing_delays`.
        queueing_delays: per-outcome slots between arrival and
            admission (0 for every job when admission is unbounded).
        rejected: arrivals shed by backpressure, in arrival order.
        in_system: step series of ``(time, jobs in system)`` where
            in-system counts active plus backlogged jobs; consecutive
            duplicates are compressed.
        arrivals: total arrivals offered (admitted + rejected).
        start_time: first arrival (horizon origin).
        horizon_cutoff: the cut-off instant when a ``horizon`` was set
            and reached, else ``None``; arrivals past it were shed.
    """

    online: OnlineResult
    queueing_delays: Tuple[int, ...]
    rejected: Tuple[RejectedJob, ...]
    in_system: Tuple[Tuple[int, int], ...]
    arrivals: int
    start_time: int
    horizon_cutoff: int = -1  # -1: no horizon cut-off occurred

    # ------------------------------------------------------------------ #
    # distributions
    # ------------------------------------------------------------------ #

    @property
    def jcts(self) -> Tuple[int, ...]:
        return tuple(o.jct for o in self.online.outcomes)

    @property
    def p50_jct(self) -> float:
        return percentile(self.jcts, 50)

    @property
    def p99_jct(self) -> float:
        return percentile(self.jcts, 99)

    @property
    def mean_queueing_delay(self) -> float:
        delays = self.queueing_delays
        return sum(delays) / len(delays) if delays else 0.0

    @property
    def p99_queueing_delay(self) -> float:
        return percentile(self.queueing_delays, 99)

    @property
    def admitted(self) -> int:
        return len(self.online.outcomes)

    @property
    def span(self) -> int:
        """Slots from the first arrival to the last event."""
        return max(1, self.online.makespan - self.start_time)

    @property
    def throughput(self) -> float:
        """Completed jobs per slot over the whole horizon."""
        return self.online.completed_jobs / self.span

    @property
    def peak_in_system(self) -> int:
        return max((count for _, count in self.in_system), default=0)

    @property
    def mean_in_system(self) -> float:
        """Time-weighted mean of the jobs-in-system trajectory."""
        series = self.in_system
        if len(series) < 2:
            return float(series[0][1]) if series else 0.0
        area = 0
        for (t0, count), (t1, _) in zip(series, series[1:]):
            area += (t1 - t0) * count
        width = series[-1][0] - series[0][0]
        return area / width if width > 0 else float(series[-1][1])

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def metrics_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready summary (the CI byte-identity gate)."""
        online = self.online
        return {
            "schema": 1,
            "jobs": {
                "arrivals": self.arrivals,
                "admitted": self.admitted,
                "completed": online.completed_jobs,
                "failed": online.failed_jobs,
                "rejected": len(self.rejected),
            },
            "jct": {
                "mean": online.mean_jct if online.outcomes else 0.0,
                "p50": self.p50_jct,
                "p99": self.p99_jct,
                "max": max(self.jcts, default=0),
            },
            "queueing_delay": {
                "mean": self.mean_queueing_delay,
                "p50": percentile(self.queueing_delays, 50),
                "p99": self.p99_queueing_delay,
                "max": max(self.queueing_delays, default=0),
            },
            "utilization": {
                "sustained": list(online.mean_utilization),
                "nominal": list(online.nominal_utilization),
            },
            "in_system": {
                "peak": self.peak_in_system,
                "mean": self.mean_in_system,
                "series": [list(point) for point in self.in_system],
            },
            "throughput_jobs_per_slot": self.throughput,
            "faults": {
                "crashes": online.crashes,
                "recoveries": online.recoveries,
                "retries": online.total_retries,
            },
            "horizon": {
                "start": self.start_time,
                "end": online.makespan,
                "span": self.span,
                "cutoff": self.horizon_cutoff,
            },
        }

    def report(self) -> str:
        """Plain-text operator summary."""
        online = self.online
        lines = [
            f"arrivals {self.arrivals} | admitted {self.admitted} "
            f"(completed {online.completed_jobs}, failed {online.failed_jobs}) "
            f"| rejected {len(self.rejected)}",
            f"JCT slots: mean {online.mean_jct if online.outcomes else 0.0:.1f} "
            f"p50 {self.p50_jct:.0f} p99 {self.p99_jct:.0f} "
            f"max {max(self.jcts, default=0)}",
            f"queueing delay slots: mean {self.mean_queueing_delay:.1f} "
            f"p99 {self.p99_queueing_delay:.0f}",
            "sustained utilization: "
            + "/".join(f"{u:.0%}" for u in online.mean_utilization),
            f"jobs in system: mean {self.mean_in_system:.1f} "
            f"peak {self.peak_in_system}",
            f"throughput {self.throughput:.4f} jobs/slot over {self.span} slots",
        ]
        if online.crashes or online.total_retries:
            lines.append(
                f"faults: {online.crashes} crashes, {online.recoveries} "
                f"recoveries, {online.total_retries} retries"
            )
        return "\n".join(lines)
