"""Streaming reporting: admission accounting over the online layer.

Extends :class:`repro.online.reporting.ReportingLayer` — outcomes,
executed schedules, fault records and utilization integrals are
inherited unchanged (which is what keeps closed-batch streaming
bit-identical to the online simulator) — and adds the open-system
ledger: admission timestamps (queueing delay), shed arrivals, and the
compressed jobs-in-system step series.

Telemetry mirrors every admission decision as a ``streaming.<decision>``
event and keeps ``streaming.backlog`` / ``streaming.in_system`` gauges
current, so a live dashboard sees backpressure engage in real time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..online.reporting import ReportingLayer
from ..telemetry import runtime as _telemetry
from .results import RejectedJob, StreamingResult

__all__ = ["StreamingReportingLayer"]


class StreamingReportingLayer(ReportingLayer):
    """Run ledger for one open-system simulation.

    Args:
        capacities: nominal capacities (utilization denominator).
        tm: telemetry pipeline facade (may be disabled).
        start_time: the first arrival; horizon origin.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        tm: _telemetry.TelemetryLike,
        start_time: int,
    ) -> None:
        super().__init__(capacities, tm, start_time)
        self.admit_times: Dict[int, int] = {}
        self.arrivals_seen = 0
        self.rejections: List[RejectedJob] = []
        self.in_system_series: List[Tuple[int, int]] = []
        self.horizon_cutoff: Optional[int] = None

    # ------------------------------------------------------------------ #
    # admission ledger
    # ------------------------------------------------------------------ #

    def record_arrival(self) -> None:
        """One arrival was offered to admission."""
        self.arrivals_seen += 1

    def record_admission(self, index: int, admit_at: int) -> None:
        """Job ``index`` entered the cluster at ``admit_at``."""
        self.admit_times[index] = admit_at
        if self.tm_enabled:
            self.tm.event("streaming.admit", job=index, at=admit_at)

    def record_queued(self, index: int, at: int, backlog: int) -> None:
        """Job ``index`` hit the concurrency limit and joined the backlog."""
        if self.tm_enabled:
            self.tm.event("streaming.queue", job=index, at=at, backlog=backlog)
            self.tm.gauge("streaming.backlog", float(backlog))

    def record_rejection(self, index: int, at: int, reason: str) -> None:
        """Job ``index`` was shed; it appears in the result, not silently."""
        self.rejections.append(RejectedJob(index, at, reason))
        if self.tm_enabled:
            self.tm.event("streaming.reject", job=index, at=at, reason=reason)

    def record_cutoff(self, at: int) -> None:
        """The run horizon was reached; later arrivals are shed."""
        if self.horizon_cutoff is None:
            self.horizon_cutoff = at
            if self.tm_enabled:
                self.tm.event("streaming.horizon_cutoff", at=at)

    def sample_in_system(self, at: int, count: int) -> None:
        """Append to the step series; consecutive duplicates compress."""
        series = self.in_system_series
        if series and series[-1][1] == count:
            return
        if series and series[-1][0] == at:
            series[-1] = (at, count)
            return
        series.append((at, count))
        if self.tm_enabled:
            self.tm.gauge("streaming.in_system", float(count))

    # ------------------------------------------------------------------ #
    # final assembly
    # ------------------------------------------------------------------ #

    def finalize_streaming(self, makespan: int, fstate) -> StreamingResult:
        """Assemble the :class:`StreamingResult` once the loop drains."""
        online = self.finalize(makespan, fstate)
        delays = tuple(
            self.admit_times[o.job_index] - o.arrival_time
            for o in online.outcomes
        )
        return StreamingResult(
            online=online,
            queueing_delays=delays,
            rejected=tuple(self.rejections),
            in_system=tuple(self.in_system_series),
            arrivals=self.arrivals_seen,
            start_time=self.start_time,
            horizon_cutoff=(
                self.horizon_cutoff if self.horizon_cutoff is not None else -1
            ),
        )
