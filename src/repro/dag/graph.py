"""The :class:`TaskGraph` container.

A ``TaskGraph`` is an immutable directed acyclic graph of :class:`Task`
objects.  Edges point from a task to the tasks that depend on it, i.e.
``u -> v`` means *v cannot start until u has finished*.

The class validates structure at construction time (unique ids, edges that
reference existing tasks, acyclicity, consistent resource dimensionality)
and precomputes parent/child adjacency plus a deterministic topological
order.  All query methods are read-only; schedulers never mutate graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Sequence, Set, Tuple

from ..errors import CycleError, GraphError, UnknownTaskError
from .task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """Immutable DAG of tasks with parent/child adjacency.

    Args:
        tasks: the tasks in the job; ids must be unique and all demand
            vectors must have the same dimensionality.
        edges: iterable of ``(upstream_id, downstream_id)`` dependency pairs.
            Duplicate edges are collapsed; self-loops are rejected.

    Raises:
        GraphError: on duplicate ids, mismatched resource dimensionality,
            or self-loops.
        UnknownTaskError: if an edge references a missing task id.
        CycleError: if the dependency relation is cyclic.
    """

    __slots__ = (
        "_tasks",
        "_children",
        "_parents",
        "_topo_order",
        "_num_resources",
        "_num_edges",
    )

    def __init__(
        self,
        tasks: Iterable[Task],
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        task_map: Dict[int, Task] = {}
        for task in tasks:
            if task.task_id in task_map:
                raise GraphError(f"duplicate task id {task.task_id}")
            task_map[task.task_id] = task
        if not task_map:
            raise GraphError("a task graph must contain at least one task")

        dims = {task.num_resources for task in task_map.values()}
        if len(dims) != 1:
            raise GraphError(f"inconsistent resource dimensionality: {sorted(dims)}")
        self._num_resources: int = dims.pop()

        children: Dict[int, Set[int]] = {tid: set() for tid in task_map}
        parents: Dict[int, Set[int]] = {tid: set() for tid in task_map}
        num_edges = 0
        for up, down in edges:
            if up not in task_map:
                raise UnknownTaskError(f"edge references unknown task {up}")
            if down not in task_map:
                raise UnknownTaskError(f"edge references unknown task {down}")
            if up == down:
                raise GraphError(f"self-loop on task {up}")
            if down not in children[up]:
                children[up].add(down)
                parents[down].add(up)
                num_edges += 1

        self._tasks: Dict[int, Task] = task_map
        self._children: Dict[int, Tuple[int, ...]] = {
            tid: tuple(sorted(kids)) for tid, kids in children.items()
        }
        self._parents: Dict[int, Tuple[int, ...]] = {
            tid: tuple(sorted(pars)) for tid, pars in parents.items()
        }
        self._num_edges = num_edges
        self._topo_order: Tuple[int, ...] = self._compute_topo_order()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _compute_topo_order(self) -> Tuple[int, ...]:
        """Kahn's algorithm; deterministic (smallest id first) and cycle-safe."""
        indegree = {tid: len(self._parents[tid]) for tid in self._tasks}
        # Sorted container keeps the order deterministic across runs.
        ready = sorted(tid for tid, deg in indegree.items() if deg == 0)
        order: List[int] = []
        import heapq  # repro: noqa[REP107] -- min-heap for deterministic topo order, not an event loop

        heapq.heapify(ready)
        while ready:
            tid = heapq.heappop(ready)
            order.append(tid)
            for child in self._children[tid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
        if len(order) != len(self._tasks):
            remaining = sorted(set(self._tasks) - set(order))
            raise CycleError(f"dependency cycle involving tasks {remaining[:10]}")
        return tuple(order)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_tasks(self) -> int:
        """Number of tasks in the graph."""
        return len(self._tasks)

    @property
    def num_edges(self) -> int:
        """Number of distinct dependency edges."""
        return self._num_edges

    @property
    def num_resources(self) -> int:
        """Resource dimensionality shared by all tasks."""
        return self._num_resources

    @property
    def task_ids(self) -> Tuple[int, ...]:
        """All task ids in topological order."""
        return self._topo_order

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        """Iterate tasks in topological order."""
        return (self._tasks[tid] for tid in self._topo_order)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def task(self, task_id: int) -> Task:
        """Return the task with ``task_id`` or raise :class:`UnknownTaskError`."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise UnknownTaskError(f"no task with id {task_id}") from None

    def tasks(self) -> Mapping[int, Task]:
        """Read-only mapping of id -> task."""
        return dict(self._tasks)

    def children(self, task_id: int) -> Tuple[int, ...]:
        """Ids of tasks that directly depend on ``task_id``."""
        if task_id not in self._children:
            raise UnknownTaskError(f"no task with id {task_id}")
        return self._children[task_id]

    def parents(self, task_id: int) -> Tuple[int, ...]:
        """Ids of tasks that ``task_id`` directly depends on."""
        if task_id not in self._parents:
            raise UnknownTaskError(f"no task with id {task_id}")
        return self._parents[task_id]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate all dependency edges as ``(upstream, downstream)`` pairs."""
        for tid in self._topo_order:
            for child in self._children[tid]:
                yield (tid, child)

    def sources(self) -> Tuple[int, ...]:
        """Tasks with no parents (immediately runnable at time 0)."""
        return tuple(tid for tid in self._topo_order if not self._parents[tid])

    def sinks(self) -> Tuple[int, ...]:
        """Tasks with no children (exit nodes)."""
        return tuple(tid for tid in self._topo_order if not self._children[tid])

    def topological_order(self) -> Tuple[int, ...]:
        """A deterministic topological order of task ids."""
        return self._topo_order

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #

    def descendants(self, task_id: int) -> Set[int]:
        """All tasks transitively reachable from ``task_id`` (exclusive)."""
        self.task(task_id)
        seen: Set[int] = set()
        stack = list(self._children[task_id])
        while stack:
            tid = stack.pop()
            if tid not in seen:
                seen.add(tid)
                stack.extend(self._children[tid])
        return seen

    def ancestors(self, task_id: int) -> Set[int]:
        """All tasks that ``task_id`` transitively depends on (exclusive)."""
        self.task(task_id)
        seen: Set[int] = set()
        stack = list(self._parents[task_id])
        while stack:
            tid = stack.pop()
            if tid not in seen:
                seen.add(tid)
                stack.extend(self._parents[tid])
        return seen

    def levels(self) -> List[Tuple[int, ...]]:
        """Partition tasks into precedence levels (level = longest hop count
        from any source).  Level 0 holds the sources."""
        depth = {tid: 0 for tid in self._tasks}
        for tid in self._topo_order:
            for child in self._children[tid]:
                depth[child] = max(depth[child], depth[tid] + 1)
        buckets: Dict[int, List[int]] = {}
        for tid, d in depth.items():
            buckets.setdefault(d, []).append(tid)
        return [tuple(sorted(buckets[d])) for d in sorted(buckets)]

    def width(self) -> int:
        """Maximum number of tasks in any precedence level."""
        return max(len(level) for level in self.levels())

    def depth(self) -> int:
        """Number of precedence levels."""
        return len(self.levels())

    def total_work(self, resource: int | None = None) -> int:
        """Total work volume: sum of ``runtime * demand`` over tasks.

        With ``resource=None`` sums across all dimensions.
        """
        if resource is None:
            return sum(task.total_load() for task in self._tasks.values())
        return sum(task.load(resource) for task in self._tasks.values())

    def critical_path_length(self) -> int:
        """Length (in time slots) of the longest runtime-weighted path.

        This lower-bounds the makespan of any schedule on any cluster.
        """
        longest = {tid: self._tasks[tid].runtime for tid in self._tasks}
        for tid in reversed(self._topo_order):
            kids = self._children[tid]
            if kids:
                longest[tid] = self._tasks[tid].runtime + max(
                    longest[k] for k in kids
                )
        return max(longest.values())

    def subgraph(self, task_ids: Sequence[int]) -> "TaskGraph":
        """Induced subgraph on ``task_ids`` (edges within the set only)."""
        keep = set(task_ids)
        for tid in keep:
            self.task(tid)
        tasks = [self._tasks[tid] for tid in sorted(keep)]
        edges = [(u, v) for u, v in self.edges() if u in keep and v in keep]
        return TaskGraph(tasks, edges)

    # ------------------------------------------------------------------ #
    # dunder conveniences
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return self._tasks == other._tasks and self._children == other._children

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted(self._tasks.items())),
                tuple(sorted((k, v) for k, v in self._children.items())),
            )
        )

    def __repr__(self) -> str:
        return (
            f"TaskGraph(num_tasks={self.num_tasks}, num_edges={self.num_edges}, "
            f"num_resources={self.num_resources})"
        )
