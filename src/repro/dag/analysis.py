"""Structural analysis helpers for task graphs.

These summaries drive workload characterization (Fig. 9(a)/(b)) and the
lower bounds used to sanity-check scheduler output in tests: no valid
schedule can beat ``max(critical path, work volume / capacity)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from .features import compute_features
from .graph import TaskGraph

__all__ = ["GraphSummary", "summarize", "makespan_lower_bound"]


@dataclass(frozen=True)
class GraphSummary:
    """Descriptive statistics of one task graph."""

    num_tasks: int
    num_edges: int
    depth: int
    width: int
    critical_path: int
    total_runtime: int
    total_work: Tuple[int, ...]
    mean_runtime: float
    max_runtime: int
    mean_demand: Tuple[float, ...]
    max_demand: Tuple[int, ...]


def summarize(graph: TaskGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""

    runtimes = [task.runtime for task in graph]
    num_resources = graph.num_resources
    demands_by_dim = [
        [task.demands[r] for task in graph] for r in range(num_resources)
    ]
    features = compute_features(graph)
    return GraphSummary(
        num_tasks=graph.num_tasks,
        num_edges=graph.num_edges,
        depth=graph.depth(),
        width=graph.width(),
        critical_path=features.critical_path,
        total_runtime=sum(runtimes),
        total_work=tuple(graph.total_work(r) for r in range(num_resources)),
        mean_runtime=sum(runtimes) / len(runtimes),
        max_runtime=max(runtimes),
        mean_demand=tuple(
            sum(dim) / len(dim) for dim in demands_by_dim
        ),
        max_demand=tuple(max(dim) for dim in demands_by_dim),
    )


def makespan_lower_bound(graph: TaskGraph, capacities: Sequence[int]) -> int:
    """A makespan lower bound valid for every feasible schedule.

    The bound is the maximum of:

    * the critical-path length (dependencies alone), and
    * for each resource ``r``, ``ceil(total_work_r / capacity_r)``
      (capacity alone).

    Args:
        graph: the job DAG.
        capacities: cluster capacity per resource dimension; must match the
            graph's resource dimensionality.

    Raises:
        ValueError: on dimension mismatch or non-positive capacity.
    """

    if len(capacities) != graph.num_resources:
        raise ValueError(
            f"capacities has {len(capacities)} dims, graph has "
            f"{graph.num_resources}"
        )
    if any(c <= 0 for c in capacities):
        raise ValueError("capacities must be positive")
    bound = graph.critical_path_length()
    for r, capacity in enumerate(capacities):
        bound = max(bound, math.ceil(graph.total_work(r) / capacity))
    return bound
