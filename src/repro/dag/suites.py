"""Classic DAG-scheduling benchmark topologies.

The DAG-scheduling literature the paper builds on ([8]-[10], [15])
evaluates on structured task graphs from numerical kernels.  These
parametric builders provide the standard suite, usable anywhere a
:class:`TaskGraph` is — tests, ablations, and workload-diversity studies
beyond the paper's layered random DAGs:

* :func:`gaussian_elimination_dag` — the triangular dependence pattern of
  column-wise Gaussian elimination on an ``n x n`` matrix.
* :func:`fft_dag` — the butterfly graph of a radix-2 FFT on ``2^k``
  points (recursive splits followed by butterfly combines).
* :func:`stencil_dag` — a 1-D Jacobi/Laplace stencil unrolled over time:
  cell (t+1, i) depends on cells (t, i-1..i+1).
* :func:`cholesky_dag` — the task graph of a tiled Cholesky factorization
  (POTRF/TRSM/SYRK/GEMM kernels on a ``b x b`` tile grid).

Runtimes and demands default to per-kernel constants but accept
overrides, so resource heterogeneity can be dialed in.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from .graph import TaskGraph
from .task import Task

__all__ = [
    "gaussian_elimination_dag",
    "fft_dag",
    "stencil_dag",
    "cholesky_dag",
]

Demand = Tuple[int, ...]


def gaussian_elimination_dag(
    n: int,
    *,
    pivot_runtime: int = 2,
    update_runtime: int = 1,
    pivot_demand: Demand = (4, 2),
    update_demand: Demand = (2, 2),
) -> TaskGraph:
    """Column-oriented Gaussian elimination on an ``n x n`` system.

    For every elimination step ``k`` there is one pivot task ``T(k, k)``
    followed by update tasks ``T(k, j)`` for ``j > k``; the pivot of step
    ``k+1`` depends on update ``T(k, k+1)``, and update ``T(k+1, j)``
    depends on both ``T(k, j)`` and the new pivot — the classic triangular
    DAG with ``n(n+1)/2 - 1`` tasks for ``n >= 2``.
    """

    if n < 2:
        raise ConfigError("gaussian elimination needs n >= 2")
    tasks: List[Task] = []
    edges: List[Tuple[int, int]] = []
    ids: Dict[Tuple[int, int], int] = {}

    def add(step: int, column: int, is_pivot: bool) -> int:
        tid = len(tasks)
        ids[(step, column)] = tid
        if is_pivot:
            tasks.append(
                Task(tid, pivot_runtime, pivot_demand, name=f"pivot-{step}")
            )
        else:
            tasks.append(
                Task(
                    tid,
                    update_runtime,
                    update_demand,
                    name=f"update-{step}-{column}",
                )
            )
        return tid

    for k in range(n - 1):
        pivot = add(k, k, is_pivot=True)
        if k > 0:
            # The pivot consumes the previous step's update of its column.
            edges.append((ids[(k - 1, k)], pivot))
        for j in range(k + 1, n):
            update = add(k, j, is_pivot=False)
            edges.append((pivot, update))
            if k > 0:
                edges.append((ids[(k - 1, j)], update))
    return TaskGraph(tasks, edges)


def fft_dag(
    points: int,
    *,
    split_runtime: int = 1,
    combine_runtime: int = 2,
    split_demand: Demand = (2, 1),
    combine_demand: Demand = (3, 2),
) -> TaskGraph:
    """Radix-2 FFT butterfly on ``points = 2^k`` inputs (k >= 1).

    The canonical shape from the scheduling literature: a binary tree of
    recursive *split* tasks (depth ``k``) feeding ``k`` layers of
    ``points/2``-wide *butterfly* combine stages... simplified to the
    standard 2-phase form: ``points - 1`` splits (a binary out-tree) then
    ``k`` combine layers of ``points / 2`` tasks each, where combine
    ``(layer, i)`` depends on the two combines (or leaf splits) whose
    index ranges it merges.
    """

    if points < 2 or points & (points - 1):
        raise ConfigError("points must be a power of two >= 2")
    k = points.bit_length() - 1
    tasks: List[Task] = []
    edges: List[Tuple[int, int]] = []

    # Split phase: binary out-tree with `points` leaves.
    split_ids: Dict[Tuple[int, int], int] = {}
    for depth in range(k + 1):
        for i in range(2**depth):
            tid = len(tasks)
            split_ids[(depth, i)] = tid
            tasks.append(
                Task(tid, split_runtime, split_demand, name=f"split-{depth}-{i}")
            )
            if depth > 0:
                edges.append((split_ids[(depth - 1, i // 2)], tid))

    # Combine phase: k layers of points/2 butterflies.
    prev_layer: List[int] = [split_ids[(k, i)] for i in range(points)]
    for layer in range(k):
        width = points // 2
        current: List[int] = []
        group = 2 ** (layer + 1)
        for i in range(width):
            tid = len(tasks)
            tasks.append(
                Task(
                    tid,
                    combine_runtime,
                    combine_demand,
                    name=f"butterfly-{layer}-{i}",
                )
            )
            current.append(tid)
        # Wire: butterfly i of this layer reads a pair of previous outputs.
        if layer == 0:
            for i in range(width):
                edges.append((prev_layer[2 * i], current[i]))
                edges.append((prev_layer[2 * i + 1], current[i]))
        else:
            prev_width = len(prev_layer)
            for i in range(width):
                partner = i ^ (1 << (layer - 1)) if prev_width == width else i
                edges.append((prev_layer[i % prev_width], current[i]))
                edges.append((prev_layer[partner % prev_width], current[i]))
        prev_layer = current
    return TaskGraph(tasks, edges)


def stencil_dag(
    width: int,
    steps: int,
    *,
    runtime: int = 1,
    demand: Demand = (2, 2),
) -> TaskGraph:
    """1-D Jacobi stencil unrolled over ``steps`` time steps.

    Cell ``(t+1, i)`` depends on cells ``(t, i-1)``, ``(t, i)`` and
    ``(t, i+1)`` (boundaries clamp) — a wide, regular DAG whose critical
    path is ``steps x runtime``.
    """

    if width < 1 or steps < 1:
        raise ConfigError("width and steps must be >= 1")
    tasks = [
        Task(t * width + i, runtime, demand, name=f"cell-{t}-{i}")
        for t in range(steps)
        for i in range(width)
    ]
    edges: List[Tuple[int, int]] = []
    for t in range(steps - 1):
        for i in range(width):
            target = (t + 1) * width + i
            for j in (i - 1, i, i + 1):
                if 0 <= j < width:
                    edges.append((t * width + j, target))
    return TaskGraph(tasks, edges)


def cholesky_dag(
    tiles: int,
    *,
    potrf_runtime: int = 3,
    trsm_runtime: int = 2,
    syrk_runtime: int = 2,
    gemm_runtime: int = 1,
    potrf_demand: Demand = (4, 3),
    trsm_demand: Demand = (3, 2),
    syrk_demand: Demand = (3, 3),
    gemm_demand: Demand = (2, 2),
) -> TaskGraph:
    """Tiled (right-looking) Cholesky factorization on a ``tiles x tiles``
    lower-triangular tile grid.

    Kernels and dependencies per step ``k``:

    * ``POTRF(k)`` factors the diagonal tile (after its SYRK updates);
    * ``TRSM(k, i)`` for ``i > k`` solves the panel (needs POTRF(k) and
      the tile's GEMM updates);
    * ``SYRK(k, i)`` updates diagonal tile ``i`` with panel row ``i``;
    * ``GEMM(k, i, j)`` updates tile ``(i, j)`` with panel rows i and j.
    """

    if tiles < 1:
        raise ConfigError("tiles must be >= 1")
    tasks: List[Task] = []
    edges: List[Tuple[int, int]] = []
    # Last writer of each tile (i, j), i >= j.
    last_writer: Dict[Tuple[int, int], int] = {}

    def add(name: str, runtime: int, demand: Demand) -> int:
        tid = len(tasks)
        tasks.append(Task(tid, runtime, demand, name=name))
        return tid

    def read(tile: Tuple[int, int], consumer: int) -> None:
        writer = last_writer.get(tile)
        if writer is not None:
            edges.append((writer, consumer))

    for k in range(tiles):
        potrf = add(f"potrf-{k}", potrf_runtime, potrf_demand)
        read((k, k), potrf)
        last_writer[(k, k)] = potrf
        for i in range(k + 1, tiles):
            trsm = add(f"trsm-{k}-{i}", trsm_runtime, trsm_demand)
            edges.append((potrf, trsm))
            read((i, k), trsm)
            last_writer[(i, k)] = trsm
        for i in range(k + 1, tiles):
            syrk = add(f"syrk-{k}-{i}", syrk_runtime, syrk_demand)
            edges.append((last_writer[(i, k)], syrk))
            read((i, i), syrk)
            last_writer[(i, i)] = syrk
            for j in range(k + 1, i):
                gemm = add(f"gemm-{k}-{i}-{j}", gemm_runtime, gemm_demand)
                edges.append((last_writer[(i, k)], gemm))
                edges.append((last_writer[(j, k)], gemm))
                read((i, j), gemm)
                last_writer[(i, j)] = gemm
    return TaskGraph(tasks, edges)
