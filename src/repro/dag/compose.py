"""Composing jobs into larger workloads.

The trace experiments schedule jobs one at a time (per-job makespan, as in
the paper), but a cluster scheduler also faces *batches*: several DAGs
sharing the resource pool.  These combinators build such workloads while
keeping every graph invariant intact:

* :func:`disjoint_union` — run jobs concurrently: one graph whose
  components are the input jobs (ids re-based, no cross edges).
* :func:`serialize_jobs` — run jobs back to back: every sink of job ``k``
  feeds every source of job ``k+1`` (a strict barrier between jobs).
* :func:`with_barrier_task` — add a zero-ish-cost sink that depends on all
  current sinks, giving multi-sink jobs a single completion point.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import GraphError
from .graph import TaskGraph
from .task import Task

__all__ = [
    "disjoint_union",
    "serialize_jobs",
    "with_barrier_task",
    "relabel",
    "with_runtimes",
]


def with_runtimes(graph: TaskGraph, runtimes) -> TaskGraph:
    """Return ``graph`` with some task runtimes replaced.

    ``runtimes`` maps ``task_id -> runtime``; unmapped tasks keep their
    original estimate.  Used to build the *realized* graph of a
    fault-injected run (actual durations instead of estimates) so the
    executed schedule can be verified against what actually ran.

    Raises:
        GraphError: if a mapped id is unknown.
    """

    unknown = sorted(set(runtimes) - set(graph.task_ids))
    if unknown:
        raise GraphError(f"with_runtimes: unknown task ids {unknown[:5]}")
    tasks = [
        Task(task.task_id, runtimes.get(task.task_id, task.runtime), task.demands, task.name)
        for task in graph
    ]
    return TaskGraph(tasks, list(graph.edges()))


def relabel(graph: TaskGraph, offset: int) -> Tuple[List[Task], List[Tuple[int, int]]]:
    """Return ``graph``'s tasks and edges with ids shifted by ``offset``."""
    if offset < 0:
        raise GraphError("offset must be >= 0")
    tasks = [
        Task(task.task_id + offset, task.runtime, task.demands, task.name)
        for task in graph
    ]
    edges = [(u + offset, v + offset) for u, v in graph.edges()]
    return tasks, edges


def _concatenate(graphs: Sequence[TaskGraph]) -> Tuple[List[Task], List[Tuple[int, int]], List[int]]:
    """Re-base all graphs onto one id space; return (tasks, edges, offsets)."""
    if not graphs:
        raise GraphError("need at least one graph to compose")
    dims = {g.num_resources for g in graphs}
    if len(dims) != 1:
        raise GraphError(f"mixed resource dimensionality: {sorted(dims)}")
    tasks: List[Task] = []
    edges: List[Tuple[int, int]] = []
    offsets: List[int] = []
    offset = 0
    for graph in graphs:
        offsets.append(offset)
        shifted_tasks, shifted_edges = relabel(graph, offset)
        tasks.extend(shifted_tasks)
        edges.extend(shifted_edges)
        offset += graph.num_tasks
    return tasks, edges, offsets


def disjoint_union(graphs: Sequence[TaskGraph]) -> TaskGraph:
    """Concurrent batch: all jobs in one graph, no cross-job edges.

    The makespan of a schedule of the union is the batch completion time;
    task ids of job ``k`` are shifted by the total size of jobs ``< k``.
    """

    tasks, edges, _ = _concatenate(graphs)
    return TaskGraph(tasks, edges)


def serialize_jobs(graphs: Sequence[TaskGraph]) -> TaskGraph:
    """Sequential batch: job ``k+1`` may only start after job ``k`` ends.

    Realized by a complete bipartite edge set from each job's sinks to the
    next job's sources — a strict barrier, matching how a FIFO cluster
    queue would run the jobs.
    """

    tasks, edges, offsets = _concatenate(graphs)
    for (prev, prev_offset), (nxt, next_offset) in zip(
        zip(graphs, offsets), list(zip(graphs, offsets))[1:]
    ):
        for sink in prev.sinks():
            for source in nxt.sources():
                edges.append((sink + prev_offset, source + next_offset))
    return TaskGraph(tasks, edges)


def with_barrier_task(
    graph: TaskGraph,
    runtime: int = 1,
    demands: Tuple[int, ...] | None = None,
    name: str = "barrier",
) -> TaskGraph:
    """Append a single sink depending on every current sink.

    Useful when an algorithm (or a metric) wants a unique exit node; the
    barrier's default demand is zero in every dimension, so it does not
    perturb packing beyond its (1-slot) runtime.
    """

    if demands is None:
        demands = (0,) * graph.num_resources
    barrier_id = max(graph.task_ids) + 1
    tasks = list(graph) + [Task(barrier_id, runtime, demands, name=name)]
    edges = list(graph.edges()) + [(sink, barrier_id) for sink in graph.sinks()]
    return TaskGraph(tasks, edges)
