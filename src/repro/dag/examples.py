"""Hand-built example DAGs, including the Fig. 3 motivating example.

The paper's Fig. 3 shows an 8-task job on a unit-capacity (CPU, memory)
cluster where the optimal schedule completes in ``2T`` while greedy packers
(Tetris) and heuristic DAG schedulers need ``3T``.  The published figure's
exact numbers are not in the text, so this module reconstructs an instance
that provably exhibits the same phenomenon:

* optimal / exhaustive makespan ``2T``;
* Tetris (resource packing, dependency-blind) produces ``3T`` because its
  alignment score greedily grabs the large no-child decoy task and thereby
  starves one parent of the second wave;
* the dependency structure (three parent->child pairs) is what makes the
  decoy choice wrong — exactly the failure mode Sec. II-C describes.

Capacities are integers: ``100`` slots per resource == the paper's ``1.0``.
"""

from __future__ import annotations

from typing import Tuple

from .graph import TaskGraph
from .task import Task

__all__ = ["motivating_example", "MOTIVATING_CAPACITY", "MOTIVATING_T"]

#: Cluster capacity for the motivating example (1.0 in the paper's units).
MOTIVATING_CAPACITY: Tuple[int, ...] = (100, 100)

#: The time unit "T" of Fig. 3 in slots.
MOTIVATING_T: int = 10


def motivating_example(time_unit: int = MOTIVATING_T) -> TaskGraph:
    """Return the 8-task motivating-example DAG (reconstruction of Fig. 3).

    Structure (demands in slots out of 100 per resource):

    ========  =======  ============  =========================
    task      runtime  (cpu, mem)    role
    ========  =======  ============  =========================
    0 (x)     T        (40, 60)      no-child decoy (max score)
    1 (p1)    T        (40, 13)      parent of task 5
    2 (p2)    T        (30, 13)      parent of task 6
    3 (p3)    T        (20, 13)      parent of task 7
    4 (y)     T        (10, 60)      memory-heavy filler
    5 (c1)    T        (20, 13)      child of task 1
    6 (c2)    T        (30, 13)      child of task 2
    7 (c3)    T        (10, 13)      child of task 3
    ========  =======  ============  =========================

    The optimal schedule packs ``{1, 2, 3, 4}`` in window ``[0, T)`` and
    ``{0, 5, 6, 7}`` in ``[T, 2T)`` — both windows use exactly 100 CPU and
    99 memory — for a makespan of ``2T``.  A dependency-blind packer takes
    task 0 first (highest alignment score — and, all runtimes being equal,
    SJF's id tiebreak lands on it too), which displaces a parent and pushes
    one child into a third window: makespan ``3T``.

    Args:
        time_unit: slots per "T"; must be >= 1.
    """

    if time_unit < 1:
        raise ValueError("time_unit must be >= 1")
    t = time_unit
    tasks = [
        Task(0, t, (40, 60), name="x"),
        Task(1, t, (40, 13), name="p1"),
        Task(2, t, (30, 13), name="p2"),
        Task(3, t, (20, 13), name="p3"),
        Task(4, t, (10, 60), name="y"),
        Task(5, t, (20, 13), name="c1"),
        Task(6, t, (30, 13), name="c2"),
        Task(7, t, (10, 13), name="c3"),
    ]
    edges = [(1, 5), (2, 6), (3, 7)]
    return TaskGraph(tasks, edges)
