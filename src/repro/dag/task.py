"""The :class:`Task` value type.

A task is the unit of scheduling: it runs for an integer number of time
slots and, while running, occupies an integer number of slots in each
resource dimension (Sec. II-C: "the top number denotes the runtime of the
task and the bottom vector shows the resource demands").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigError

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """An immutable task with runtime and multi-resource demands.

    Attributes:
        task_id: unique non-negative identifier within a graph.
        runtime: execution duration in time slots (>= 1); a task runs
            non-preemptively once started.
        demands: slots required per resource dimension while running.
            Each entry must be >= 0 and at least one must be positive for a
            task to occupy the cluster meaningfully; zero-demand tasks are
            permitted (pure synchronization barriers).
        name: optional human-readable label (e.g. ``"map-7"``).
    """

    task_id: int
    runtime: int
    demands: Tuple[int, ...]
    name: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ConfigError(f"task_id must be >= 0, got {self.task_id}")
        if self.runtime < 1:
            raise ConfigError(
                f"task {self.task_id}: runtime must be >= 1, got {self.runtime}"
            )
        if not self.demands:
            raise ConfigError(f"task {self.task_id}: needs >= 1 resource dimension")
        if any(d < 0 for d in self.demands):
            raise ConfigError(
                f"task {self.task_id}: demands must be >= 0, got {self.demands}"
            )
        # Normalize to a plain tuple of ints so hashing/serialization is stable.
        object.__setattr__(self, "demands", tuple(int(d) for d in self.demands))
        object.__setattr__(self, "runtime", int(self.runtime))
        object.__setattr__(self, "task_id", int(self.task_id))

    @property
    def num_resources(self) -> int:
        """Number of resource dimensions this task's demand vector spans."""
        return len(self.demands)

    def load(self, resource: int) -> int:
        """Work volume in one dimension: ``runtime * demands[resource]``.

        This is the per-task term of the *b-load* feature of Sec. III-D.
        """
        return self.runtime * self.demands[resource]

    def total_load(self) -> int:
        """Work volume summed over all resource dimensions."""
        return self.runtime * sum(self.demands)

    def label(self) -> str:
        """Display label: the explicit name if set, else ``"task-<id>"``."""
        return self.name if self.name is not None else f"task-{self.task_id}"

    def with_runtime(self, runtime: int) -> "Task":
        """Return a copy with a different runtime (used by trace scaling)."""
        return Task(self.task_id, runtime, self.demands, self.name)
