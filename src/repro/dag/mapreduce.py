"""Two-stage MapReduce DAG construction.

The trace-driven experiments of Sec. V-C replay Hive MapReduce jobs: a map
stage of ``m`` parallel tasks feeding a reduce stage of ``r`` parallel
tasks, with a complete bipartite dependency (every reduce task consumes
every map task's output — the shuffle barrier).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import ConfigError
from .graph import TaskGraph
from .task import Task

__all__ = ["mapreduce_dag"]


def mapreduce_dag(
    map_runtimes: Sequence[int],
    reduce_runtimes: Sequence[int],
    *,
    map_demands: Sequence[Tuple[int, ...]] | None = None,
    reduce_demands: Sequence[Tuple[int, ...]] | None = None,
    default_map_demand: Tuple[int, ...] = (2, 1),
    default_reduce_demand: Tuple[int, ...] = (1, 2),
    shuffle: str = "full",
) -> TaskGraph:
    """Build a two-stage MapReduce DAG.

    Map tasks get ids ``0..m-1`` and names ``map-i``; reduce tasks get ids
    ``m..m+r-1`` and names ``reduce-j``.

    Args:
        map_runtimes: runtime per map task (slots, >= 1 each).
        reduce_runtimes: runtime per reduce task.
        map_demands: optional per-map demand vectors; defaults to
            ``default_map_demand`` (CPU-leaning, matching the common
            observation that map tasks are lighter than reduce tasks).
        reduce_demands: optional per-reduce demand vectors; defaults to
            ``default_reduce_demand``.
        shuffle: ``"full"`` for a complete bipartite map->reduce barrier
            (Hive semantics); ``"striped"`` wires reduce ``j`` only to maps
            with ``i % r == j % m``-style stripes — a lighter topology used
            by ablation workloads.

    Returns:
        A validated :class:`TaskGraph` with ``m + r`` tasks.
    """

    num_map = len(map_runtimes)
    num_reduce = len(reduce_runtimes)
    if num_map < 1 or num_reduce < 1:
        raise ConfigError("need at least one map and one reduce task")
    if map_demands is None:
        map_demands = [default_map_demand] * num_map
    if reduce_demands is None:
        reduce_demands = [default_reduce_demand] * num_reduce
    if len(map_demands) != num_map:
        raise ConfigError("map_demands length mismatch")
    if len(reduce_demands) != num_reduce:
        raise ConfigError("reduce_demands length mismatch")
    if shuffle not in ("full", "striped"):
        raise ConfigError(f"unknown shuffle mode {shuffle!r}")

    tasks = [
        Task(i, int(map_runtimes[i]), tuple(map_demands[i]), name=f"map-{i}")
        for i in range(num_map)
    ]
    tasks += [
        Task(
            num_map + j,
            int(reduce_runtimes[j]),
            tuple(reduce_demands[j]),
            name=f"reduce-{j}",
        )
        for j in range(num_reduce)
    ]

    edges = []
    if shuffle == "full":
        for i in range(num_map):
            for j in range(num_reduce):
                edges.append((i, num_map + j))
    else:  # striped
        for j in range(num_reduce):
            for i in range(num_map):
                if i % num_reduce == j % max(num_map, 1) % num_reduce or i == j % num_map:
                    edges.append((i, num_map + j))
        # Guarantee each reduce has at least one upstream map.
        covered = {down for _, down in edges}
        for j in range(num_reduce):
            if num_map + j not in covered:
                edges.append((j % num_map, num_map + j))

    return TaskGraph(tasks, edges)
