"""Synthetic DAG generators.

:func:`random_layered_dag` reproduces the simulation workload of Sec. V-A:
DAGs with a fixed number of tasks, layer widths drawn uniformly from a small
range (paper: 2..5), and task runtimes / per-resource demands drawn from
normal distributions truncated to ``[1, max]`` (paper: max 20 for both).

The remaining generators build canonical topologies (chains, fork-join
diamonds, independent task bags) used by tests, examples and ablations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..config import WorkloadConfig
from ..errors import ConfigError
from ..utils.rng import SeedLike, as_generator
from .graph import TaskGraph
from .task import Task

__all__ = [
    "random_layered_dag",
    "chain_dag",
    "fork_join_dag",
    "independent_tasks_dag",
    "truncated_normal_int",
]


def truncated_normal_int(
    rng: np.random.Generator,
    mean: float,
    std: float,
    low: int,
    high: int,
    size: int,
) -> np.ndarray:
    """Draw integers from N(mean, std) rounded and clipped to ``[low, high]``.

    The paper states runtimes and demands "follow normal distributions" with
    a stated maximum; clipping (rather than rejection) keeps the generator
    O(size) and deterministic in the number of RNG draws.
    """

    if low > high:
        raise ConfigError(f"empty truncation range [{low}, {high}]")
    draws = rng.normal(mean, std, size=size)
    return np.clip(np.rint(draws), low, high).astype(int)


def _draw_layers(
    rng: np.random.Generator, num_tasks: int, min_width: int, max_width: int
) -> List[int]:
    """Split ``num_tasks`` into consecutive layers of width in range."""
    layers: List[int] = []
    remaining = num_tasks
    while remaining > 0:
        width = int(rng.integers(min_width, max_width + 1))
        width = min(width, remaining)
        layers.append(width)
        remaining -= width
    return layers


def random_layered_dag(
    config: WorkloadConfig | None = None,
    *,
    seed: SeedLike = None,
    num_resources: int = 2,
    name_prefix: str = "t",
) -> TaskGraph:
    """Generate one random layered DAG per the Sec. V-A workload.

    Tasks are arranged in layers; every task in layer ``k+1`` depends on at
    least one task in layer ``k`` and, with ``config.edge_probability``, on
    each other task of layer ``k``.  Every non-terminal task gets at least
    one child so the DAG has no spurious early exits.

    Args:
        config: workload parameters; defaults to the paper's values.
        seed: RNG seed or generator.
        num_resources: resource dimensionality (paper: 2 — CPU and memory).
        name_prefix: prefix for generated task names.

    Returns:
        A validated :class:`TaskGraph`.
    """

    cfg = config if config is not None else WorkloadConfig()
    if num_resources < 1:
        raise ConfigError("num_resources must be >= 1")
    rng = as_generator(seed)

    runtimes = truncated_normal_int(
        rng, cfg.runtime_mean, cfg.runtime_std, 1, cfg.max_runtime, cfg.num_tasks
    )
    demands = np.stack(
        [
            truncated_normal_int(
                rng, cfg.demand_mean, cfg.demand_std, 1, cfg.max_demand, cfg.num_tasks
            )
            for _ in range(num_resources)
        ],
        axis=1,
    )

    tasks = [
        Task(
            task_id=i,
            runtime=int(runtimes[i]),
            demands=tuple(int(d) for d in demands[i]),
            name=f"{name_prefix}{i}",
        )
        for i in range(cfg.num_tasks)
    ]

    layer_sizes = _draw_layers(rng, cfg.num_tasks, cfg.min_width, cfg.max_width)
    layers: List[List[int]] = []
    next_id = 0
    for size in layer_sizes:
        layers.append(list(range(next_id, next_id + size)))
        next_id += size

    edges: List[Tuple[int, int]] = []
    for upper, lower in zip(layers, layers[1:]):
        # Random cross edges.
        for u in upper:
            for v in lower:
                if rng.random() < cfg.edge_probability:
                    edges.append((u, v))
        edge_set = set(edges)
        # Guarantee every lower task has a parent in the layer above.
        for v in lower:
            if not any((u, v) in edge_set for u in upper):
                u = int(upper[rng.integers(0, len(upper))])
                edges.append((u, v))
                edge_set.add((u, v))
        # Guarantee every upper task has a child (no accidental sinks).
        for u in upper:
            if not any((u, v) in edge_set for v in lower):
                v = int(lower[rng.integers(0, len(lower))])
                edges.append((u, v))
                edge_set.add((u, v))

    return TaskGraph(tasks, edges)


def chain_dag(
    runtimes: List[int],
    demands: Optional[List[Tuple[int, ...]]] = None,
    *,
    num_resources: int = 2,
    default_demand: int = 1,
) -> TaskGraph:
    """A linear chain ``t0 -> t1 -> ... -> tn-1``.

    Args:
        runtimes: runtime per task, in chain order.
        demands: optional explicit demand vectors; defaults to
            ``(default_demand,) * num_resources`` each.
    """

    if not runtimes:
        raise ConfigError("chain_dag requires at least one task")
    if demands is None:
        demands = [(default_demand,) * num_resources] * len(runtimes)
    if len(demands) != len(runtimes):
        raise ConfigError("runtimes and demands must have equal length")
    tasks = [
        Task(i, runtime, tuple(demand))
        for i, (runtime, demand) in enumerate(zip(runtimes, demands))
    ]
    edges = [(i, i + 1) for i in range(len(tasks) - 1)]
    return TaskGraph(tasks, edges)


def fork_join_dag(
    fan_out: int,
    *,
    branch_runtime: int = 1,
    head_runtime: int = 1,
    tail_runtime: int = 1,
    demand: Tuple[int, ...] = (1, 1),
) -> TaskGraph:
    """A diamond: one head task fans out to ``fan_out`` parallel branches
    which all join into one tail task."""

    if fan_out < 1:
        raise ConfigError("fan_out must be >= 1")
    tasks = [Task(0, head_runtime, demand, name="head")]
    tasks += [
        Task(i + 1, branch_runtime, demand, name=f"branch-{i}")
        for i in range(fan_out)
    ]
    tail_id = fan_out + 1
    tasks.append(Task(tail_id, tail_runtime, demand, name="tail"))
    edges = [(0, i + 1) for i in range(fan_out)]
    edges += [(i + 1, tail_id) for i in range(fan_out)]
    return TaskGraph(tasks, edges)


def independent_tasks_dag(
    runtimes: List[int],
    demands: Optional[List[Tuple[int, ...]]] = None,
    *,
    num_resources: int = 2,
    default_demand: int = 1,
) -> TaskGraph:
    """A bag of independent tasks (no edges) — the Tetris/DeepRM setting."""

    if not runtimes:
        raise ConfigError("independent_tasks_dag requires at least one task")
    if demands is None:
        demands = [(default_demand,) * num_resources] * len(runtimes)
    if len(demands) != len(runtimes):
        raise ConfigError("runtimes and demands must have equal length")
    tasks = [
        Task(i, runtime, tuple(demand))
        for i, (runtime, demand) in enumerate(zip(runtimes, demands))
    ]
    return TaskGraph(tasks, edges=())
