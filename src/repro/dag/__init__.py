"""Task-DAG substrate: tasks, graphs, features, generators and I/O.

This package models the jobs scheduled by Spear: directed acyclic graphs
whose nodes are tasks with an integer runtime and a multi-dimensional
resource demand (Sec. II-C of the paper).
"""

from .task import Task
from .graph import TaskGraph
from .features import GraphFeatures, compute_features
from .generators import random_layered_dag, chain_dag, fork_join_dag, independent_tasks_dag
from .mapreduce import mapreduce_dag
from .examples import motivating_example
from .io import graph_to_dict, graph_from_dict, save_graph, load_graph
from .compose import disjoint_union, serialize_jobs, with_barrier_task
from .analysis import GraphSummary, summarize, makespan_lower_bound
from .suites import gaussian_elimination_dag, fft_dag, stencil_dag, cholesky_dag

__all__ = [
    "Task",
    "TaskGraph",
    "GraphFeatures",
    "compute_features",
    "random_layered_dag",
    "chain_dag",
    "fork_join_dag",
    "independent_tasks_dag",
    "mapreduce_dag",
    "motivating_example",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "disjoint_union",
    "serialize_jobs",
    "with_barrier_task",
    "GraphSummary",
    "summarize",
    "makespan_lower_bound",
    "gaussian_elimination_dag",
    "fft_dag",
    "stencil_dag",
    "cholesky_dag",
]
