"""JSON (de)serialization of task graphs.

The schema is intentionally flat and versioned so saved workloads remain
loadable across library versions:

.. code-block:: json

    {
      "version": 1,
      "tasks": [{"id": 0, "runtime": 3, "demands": [2, 1], "name": "map-0"}],
      "edges": [[0, 1]]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import TraceError
from .graph import TaskGraph
from .task import Task

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph"]

SCHEMA_VERSION = 1


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize ``graph`` to a JSON-compatible dictionary."""

    return {
        "version": SCHEMA_VERSION,
        "tasks": [
            {
                "id": task.task_id,
                "runtime": task.runtime,
                "demands": list(task.demands),
                "name": task.name,
            }
            for task in graph
        ],
        "edges": [list(edge) for edge in graph.edges()],
    }


def graph_from_dict(payload: Dict[str, Any]) -> TaskGraph:
    """Reconstruct a :class:`TaskGraph` from :func:`graph_to_dict` output.

    Raises:
        TraceError: if the payload is missing fields or has a wrong version.
    """

    if not isinstance(payload, dict):
        raise TraceError(f"expected a dict payload, got {type(payload).__name__}")
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise TraceError(f"unsupported graph schema version {version!r}")
    try:
        tasks = [
            Task(
                task_id=entry["id"],
                runtime=entry["runtime"],
                demands=tuple(entry["demands"]),
                name=entry.get("name"),
            )
            for entry in payload["tasks"]
        ]
        edges = [(int(u), int(v)) for u, v in payload.get("edges", [])]
    except (KeyError, TypeError) as exc:
        raise TraceError(f"malformed graph payload: {exc}") from exc
    return TaskGraph(tasks, edges)


def save_graph(graph: TaskGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as JSON."""

    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: Union[str, Path]) -> TaskGraph:
    """Load a graph previously written with :func:`save_graph`."""

    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TraceError(f"invalid JSON in {path}: {exc}") from exc
    return graph_from_dict(payload)
