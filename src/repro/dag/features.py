"""Graph-topology features used by the DRL state (Sec. III-D).

The paper augments per-task resource demands with features that capture how
important a task is for the makespan of the whole DAG:

* **b-level** — length of the longest runtime-weighted path from the task to
  an exit node, *including* the task's own runtime.  The maximum b-level over
  all tasks equals the critical-path length.
* **#children** — out-degree, the classic b-level tiebreaker.
* **b-load(r)** — accumulated load (``runtime * demand[r]``) along the
  task's b-level path, one value per resource dimension.  Where several
  children attain the same b-level, the child with the larger accumulated
  load is followed (deterministic tie-break by task id thereafter).

Also provided: **t-level** (longest path from a source to the task,
excluding the task), used by analysis tooling and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .graph import TaskGraph

__all__ = ["GraphFeatures", "compute_features"]


@dataclass(frozen=True)
class GraphFeatures:
    """Per-task topology features for one :class:`TaskGraph`.

    All mappings are keyed by task id and cover every task in the graph.

    Attributes:
        b_level: longest downstream runtime-weighted path, inclusive.
        t_level: longest upstream runtime-weighted path, exclusive.
        num_children: out-degree of each task.
        b_load: per-task tuple with one accumulated-load entry per
            resource dimension, measured along the b-level path.
        critical_path: the maximum b-level (= DAG critical-path length).
    """

    b_level: Dict[int, int]
    t_level: Dict[int, int]
    num_children: Dict[int, int]
    b_load: Dict[int, Tuple[int, ...]]
    critical_path: int

    def priority_order(self) -> Tuple[int, ...]:
        """Task ids sorted by descending b-level (the CP heuristic order).

        Ties break on descending #children, then ascending id, matching the
        tie-breaking convention described in Sec. III-D.
        """
        return tuple(
            sorted(
                self.b_level,
                key=lambda tid: (
                    -self.b_level[tid],
                    -self.num_children[tid],
                    tid,
                ),
            )
        )


#: Memo of recently computed features, keyed by graph identity.  The value
#: keeps a strong reference to the graph and is compared with ``is`` before
#: use: ``id()`` alone could collide after a garbage-collected graph's
#: address is reused, and :class:`TaskGraph` uses ``__slots__`` without
#: ``__weakref__`` (and an O(V+E) ``__hash__``), so a ``WeakKeyDictionary``
#: is not an option.  Bounded FIFO keeps long experiment sweeps from
#: pinning every graph they ever touched.
_FEATURE_CACHE: Dict[int, Tuple[TaskGraph, GraphFeatures]] = {}
_FEATURE_CACHE_MAX = 64


def compute_features(graph: TaskGraph) -> GraphFeatures:
    """Compute :class:`GraphFeatures` for ``graph`` in O(V + E).

    A single reverse-topological sweep yields b-level and b-load together;
    a forward sweep yields t-level.  Results are memoized per graph
    instance (graphs are immutable): baseline policies, observation
    builders and analysis tooling all ask for the same graph's features
    repeatedly, often once per episode.
    """

    key = id(graph)
    cached = _FEATURE_CACHE.get(key)
    if cached is not None and cached[0] is graph:
        return cached[1]

    order = graph.topological_order()
    num_resources = graph.num_resources

    b_level: Dict[int, int] = {}
    b_load: Dict[int, Tuple[int, ...]] = {}
    for tid in reversed(order):
        task = graph.task(tid)
        own_load = tuple(task.load(r) for r in range(num_resources))
        kids = graph.children(tid)
        if not kids:
            b_level[tid] = task.runtime
            b_load[tid] = own_load
            continue
        # Follow the child with the largest b-level; among equals prefer the
        # heavier accumulated load, then the smallest id (determinism).
        best = max(
            kids, key=lambda k: (b_level[k], sum(b_load[k]), -k)
        )
        b_level[tid] = task.runtime + b_level[best]
        b_load[tid] = tuple(
            own + downstream for own, downstream in zip(own_load, b_load[best])
        )

    t_level: Dict[int, int] = {}
    for tid in order:
        parents = graph.parents(tid)
        if not parents:
            t_level[tid] = 0
        else:
            t_level[tid] = max(
                t_level[p] + graph.task(p).runtime for p in parents
            )

    num_children = {tid: len(graph.children(tid)) for tid in order}
    critical_path = max(b_level.values())
    features = GraphFeatures(
        b_level=b_level,
        t_level=t_level,
        num_children=num_children,
        b_load=b_load,
        critical_path=critical_path,
    )
    if len(_FEATURE_CACHE) >= _FEATURE_CACHE_MAX:
        _FEATURE_CACHE.pop(next(iter(_FEATURE_CACHE)))
    _FEATURE_CACHE[key] = (graph, features)
    return features
