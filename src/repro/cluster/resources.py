"""Exact integer arithmetic over multi-dimensional resource vectors.

Resources are plain tuples of non-negative integers (slot counts), so all
capacity checks are exact — no floating-point drift can admit a task that
does not fit.  Free functions (rather than a wrapper class) keep the hot
paths of the simulator allocation-free.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import CapacityError

ResourceVector = Tuple[int, ...]

__all__ = ["ResourceVector", "fits", "subtract", "add", "validate_demands"]


def fits(demands: Sequence[int], available: Sequence[int]) -> bool:
    """True iff ``demands[r] <= available[r]`` for every resource ``r``."""

    # Plain loop: this is the innermost simulator check (millions of
    # calls per run) and a generator expression costs a frame per call.
    for d, a in zip(demands, available):
        if d > a:
            return False
    return True


def subtract(available: Sequence[int], demands: Sequence[int]) -> ResourceVector:
    """Allocate: return ``available - demands``.

    Raises:
        CapacityError: if any dimension would go negative.
    """

    result = tuple(a - d for a, d in zip(available, demands))
    if any(v < 0 for v in result):
        raise CapacityError(
            f"allocation of {tuple(demands)} exceeds available {tuple(available)}"
        )
    return result


def add(available: Sequence[int], demands: Sequence[int]) -> ResourceVector:
    """Release: return ``available + demands``."""

    return tuple(a + d for a, d in zip(available, demands))


def validate_demands(
    demands: Sequence[int], capacities: Sequence[int], label: str = "task"
) -> None:
    """Raise :class:`CapacityError` unless ``demands`` can ever fit.

    A task demanding more than the *total* capacity of any dimension can
    never be scheduled; detecting this up front turns a would-be livelock
    into a clear error.
    """

    if len(demands) != len(capacities):
        raise CapacityError(
            f"{label}: demand vector has {len(demands)} dims, "
            f"cluster has {len(capacities)}"
        )
    for r, (d, c) in enumerate(zip(demands, capacities)):
        if d > c:
            raise CapacityError(
                f"{label}: demand {d} for resource {r} exceeds capacity {c}"
            )
