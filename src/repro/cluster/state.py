"""Live cluster state: running tasks, free capacity, event-driven time.

:class:`ClusterState` is the hot data structure of the whole library — the
scheduling environment steps it, MCTS clones it thousands of times per
decision, and every baseline policy queries it.  It is therefore designed
for cheap cloning: running tasks are immutable tuples kept in a min-heap
keyed by finish time, and a clone is a shallow list copy.

Time semantics: ``now`` is the current slot index.  Starting a task
occupies its demands immediately; the task finishes at ``now + runtime``.
``advance(dt)`` moves time forward and releases every task whose finish
time has been reached; ``advance_to_next_event()`` jumps straight to the
earliest finish time (the Sec. III-C tree-depth optimization: "we will only
proceed until at least one task finishes, since no new information arrives
prior").
"""

from __future__ import annotations

import heapq  # repro: noqa[REP107] -- audited running-task heap, cloned per MCTS decision
from typing import List, NamedTuple, Sequence, Tuple

from ..errors import CapacityError, EnvironmentStateError
from .resources import ResourceVector, fits, validate_demands

__all__ = ["RunningTask", "ClusterState"]


class RunningTask(NamedTuple):
    """A task currently occupying the cluster.

    Heap ordering is by ``finish_time`` then ``task_id``, which makes the
    completion order deterministic.
    """

    finish_time: int
    task_id: int
    demands: Tuple[int, ...]


class ClusterState:
    """Mutable multi-resource cluster simulator state.

    Args:
        capacities: total slots per resource dimension.
        now: initial simulation time (default 0).

    Example:
        >>> state = ClusterState((10, 10))
        >>> state.start(task_id=1, demands=(4, 2), runtime=3)
        >>> state.available
        (6, 8)
        >>> state.advance_to_next_event()
        (3, [1])
        >>> state.available
        (10, 10)
    """

    __slots__ = ("capacities", "_available", "_running", "now")

    def __init__(self, capacities: Sequence[int], now: int = 0) -> None:
        if not capacities or any(c <= 0 for c in capacities):
            raise CapacityError(f"invalid capacities {tuple(capacities)}")
        self.capacities: ResourceVector = tuple(int(c) for c in capacities)
        self._available: List[int] = list(self.capacities)
        self._running: List[RunningTask] = []
        self.now: int = int(now)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def available(self) -> ResourceVector:
        """Currently free slots per resource."""
        return tuple(self._available)

    def available_ref(self) -> List[int]:
        """The live free-capacity list — borrow only, never mutate.

        Hot-path accessor: :attr:`available` allocates a defensive tuple
        per call, which the environment's per-candidate fit checks cannot
        afford.  The returned list aliases internal state and is updated
        in place by ``start``/``advance``.
        """
        return self._available

    @property
    def num_resources(self) -> int:
        """Resource dimensionality."""
        return len(self.capacities)

    @property
    def num_running(self) -> int:
        """Number of tasks currently occupying the cluster."""
        return len(self._running)

    @property
    def is_idle(self) -> bool:
        """True iff no task is running."""
        return not self._running

    def running_tasks(self) -> List[RunningTask]:
        """Running tasks sorted by (finish_time, task_id)."""
        return sorted(self._running)

    def running_ids(self) -> List[int]:
        """Ids of running tasks, in completion order."""
        return [entry.task_id for entry in sorted(self._running)]

    def can_fit(self, demands: Sequence[int]) -> bool:
        """True iff ``demands`` fit in the currently free capacity."""
        return fits(demands, self._available)

    def earliest_finish_time(self) -> int:
        """Finish time of the next task to complete.

        Raises:
            EnvironmentStateError: if the cluster is idle.
        """
        if not self._running:
            raise EnvironmentStateError("no running tasks: no next event")
        return self._running[0].finish_time

    def utilization(self) -> Tuple[float, ...]:
        """Fraction of each resource currently in use."""
        return tuple(
            (cap - avail) / cap
            for cap, avail in zip(self.capacities, self._available)
        )

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def start(
        self,
        task_id: int,
        demands: Sequence[int],
        runtime: int,
        precleared: bool = False,
    ) -> RunningTask:
        """Begin running a task now, occupying its demands.

        Args:
            precleared: skip the per-call demand-shape validation.  Safe
                only when the caller has already validated ``demands``
                against :attr:`capacities` (the scheduling environment does
                this once per task at construction); the free-capacity fit
                check always runs.

        Returns:
            The :class:`RunningTask` entry recorded for the task — keep it
            to revert the call with :meth:`undo_start`.

        Raises:
            CapacityError: if the demands exceed free capacity (or can never
                fit at all).
            EnvironmentStateError: on a non-positive runtime.
        """
        if runtime < 1:
            raise EnvironmentStateError(
                f"task {task_id}: runtime must be >= 1, got {runtime}"
            )
        if not precleared:
            validate_demands(demands, self.capacities, label=f"task {task_id}")
        available = self._available
        for r, demand in enumerate(demands):
            if demand > available[r]:
                raise CapacityError(
                    f"task {task_id}: demands {tuple(demands)} exceed free "
                    f"capacity {self.available}"
                )
        for r, demand in enumerate(demands):
            available[r] -= demand
        entry = RunningTask(self.now + int(runtime), int(task_id), tuple(demands))
        heapq.heappush(self._running, entry)
        return entry

    def undo_start(self, entry: RunningTask) -> None:
        """Revert a prior :meth:`start` call, releasing its demands.

        Args:
            entry: the exact :class:`RunningTask` that :meth:`start`
                returned.  The entry must still be running.

        Raises:
            EnvironmentStateError: if ``entry`` is not currently running.
        """
        try:
            self._running.remove(entry)
        except ValueError:
            raise EnvironmentStateError(
                f"undo_start: task {entry.task_id} is not running"
            ) from None
        heapq.heapify(self._running)
        for r, demand in enumerate(entry.demands):
            self._available[r] += demand

    def kill(self, entry: RunningTask) -> None:
        """Remove a running task *without* completing it (fault handling).

        Mechanically identical to :meth:`undo_start` — the entry leaves
        the heap and its demands are released — but semantically distinct:
        the occupied slot-time is lost, not refunded, and the caller is
        expected to re-enqueue the work.

        Raises:
            EnvironmentStateError: if ``entry`` is not currently running.
        """

        try:
            self._running.remove(entry)
        except ValueError:
            raise EnvironmentStateError(
                f"kill: task {entry.task_id} is not running"
            ) from None
        heapq.heapify(self._running)
        for r, demand in enumerate(entry.demands):
            self._available[r] += demand

    def adjust_capacity(self, deltas: Sequence[int]) -> None:
        """Shrink or grow total capacity in place (machine crash/recovery).

        ``deltas`` may be negative (crash) or positive (recovery); both
        :attr:`capacities` and the free pool move together.  Shrinking
        below current usage is rejected — the caller must :meth:`kill`
        victims first so the freed slots cover the loss.

        Raises:
            CapacityError: on a dimension mismatch, or when a shrink
                exceeds the currently free slots of some resource.
        """

        deltas = tuple(int(d) for d in deltas)
        if len(deltas) != len(self.capacities):
            raise CapacityError(
                f"capacity delta {deltas} has {len(deltas)} dims, "
                f"cluster has {len(self.capacities)}"
            )
        for r, delta in enumerate(deltas):
            if delta < 0 and self._available[r] + delta < 0:
                raise CapacityError(
                    f"cannot remove {-delta} slots of resource {r}: only "
                    f"{self._available[r]} free (kill running tasks first)"
                )
            if self.capacities[r] + delta < 0:
                raise CapacityError(
                    f"cannot remove {-delta} slots of resource {r}: capacity "
                    f"is only {self.capacities[r]}"
                )
        self.capacities = tuple(c + d for c, d in zip(self.capacities, deltas))
        for r, delta in enumerate(deltas):
            self._available[r] += delta

    def advance(self, dt: int) -> List[int]:
        """Move time forward by ``dt`` slots; release finished tasks.

        Returns:
            Ids of tasks that completed in ``(now, now + dt]``, in
            completion order.

        Raises:
            EnvironmentStateError: if ``dt`` is not positive.
        """
        return [entry.task_id for entry in self.advance_entries(dt)]

    def advance_entries(self, dt: int) -> List[RunningTask]:
        """Like :meth:`advance` but return the full released entries.

        The returned entries (in completion order) carry the demands and
        finish times needed to revert the call with :meth:`undo_advance`.

        Raises:
            EnvironmentStateError: if ``dt`` is not positive.
        """
        if dt < 1:
            raise EnvironmentStateError(f"dt must be >= 1, got {dt}")
        self.now += int(dt)
        completed: List[RunningTask] = []
        running = self._running
        available = self._available
        while running and running[0].finish_time <= self.now:
            entry = heapq.heappop(running)
            for r, demand in enumerate(entry.demands):
                available[r] += demand
            completed.append(entry)
        return completed

    def undo_advance(self, dt: int, completed: Sequence[RunningTask]) -> None:
        """Revert a prior ``advance``/``advance_entries`` call.

        Args:
            dt: the time delta that was advanced.
            completed: the entries that call released (as returned by
                :meth:`advance_entries`); they are re-occupied.
        """
        self.now -= int(dt)
        available = self._available
        for entry in completed:
            for r, demand in enumerate(entry.demands):
                available[r] -= demand
            heapq.heappush(self._running, entry)

    def advance_to_next_event(self) -> Tuple[int, List[int]]:
        """Jump time to the earliest finish and release finished tasks.

        Returns:
            ``(new_now, completed_ids)``; at least one task completes.

        Raises:
            EnvironmentStateError: if the cluster is idle.
        """
        dt, entries = self.advance_to_next_event_entries()
        return self.now, [entry.task_id for entry in entries]

    def advance_to_next_event_entries(self) -> Tuple[int, List[RunningTask]]:
        """Fused event sweep for the simulation hot path.

        Equivalent to ``advance_entries(earliest_finish_time() - now)`` but
        with a single method call and no intermediate bookkeeping.

        Returns:
            ``(dt, completed_entries)``; at least one task completes.

        Raises:
            EnvironmentStateError: if the cluster is idle.
        """
        running = self._running
        if not running:
            raise EnvironmentStateError("no running tasks: no next event")
        target = running[0].finish_time
        dt = target - self.now
        self.now = target
        completed: List[RunningTask] = []
        available = self._available
        while running and running[0].finish_time <= target:
            entry = heapq.heappop(running)
            for r, demand in enumerate(entry.demands):
                available[r] += demand
            completed.append(entry)
        return dt, completed

    # ------------------------------------------------------------------ #
    # copying / equality
    # ------------------------------------------------------------------ #

    def clone(self) -> "ClusterState":
        """Cheap deep-enough copy (running entries are immutable tuples).

        ``_running`` is a binary min-heap stored as a plain list; the
        shallow ``list(...)`` copy preserves element order exactly, so the
        clone's list satisfies the same heap invariant as the original
        (``heap[k] <= heap[2k+1]`` and ``heap[k] <= heap[2k+2]``) without a
        re-``heapify``.  :meth:`heap_invariant_ok` makes this checkable;
        the regression tests interleave ``advance``/``start`` on clones to
        pin the property down.
        """
        copy = ClusterState.__new__(ClusterState)
        copy.capacities = self.capacities
        copy._available = list(self._available)
        copy._running = list(self._running)
        copy.now = self.now
        return copy

    def heap_invariant_ok(self) -> bool:
        """True iff the internal running-task list is a valid min-heap."""
        heap = self._running
        n = len(heap)
        for k in range((n - 2) // 2 + 1):
            left, right = 2 * k + 1, 2 * k + 2
            if left < n and heap[left] < heap[k]:
                return False
            if right < n and heap[right] < heap[k]:
                return False
        return True

    def signature(self) -> Tuple:
        """Hashable snapshot of the state (for transposition detection)."""
        return (self.now, tuple(self._available), tuple(sorted(self._running)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterState):
            return NotImplemented
        return (
            self.capacities == other.capacities
            and self.signature() == other.signature()
        )

    def __hash__(self) -> int:
        return hash((self.capacities, self.signature()))

    def __repr__(self) -> str:
        return (
            f"ClusterState(now={self.now}, available={self.available}, "
            f"running={len(self._running)})"
        )
