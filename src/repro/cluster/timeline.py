"""The resource-time space of Sec. III-B.

"Each resource dimension can be expressed as a separate rectangle with the
width representing the capacity and the height denoting the time span."

:class:`ResourceTimeSpace` models exactly that: a usage grid indexed by
``(resource, time_slot)`` holding how many slots are occupied.  It serves
two distinct consumers:

* **Graphene's planner** places tasks at arbitrary future times, both
  forward (earliest feasible start) and backward (latest feasible start
  below a deadline), to derive its task ordering.
* **The DRL observation builder** renders the occupancy of the next
  ``horizon`` slots as a normalized image fed to the policy network.

The grid grows on demand along the time axis, so callers never have to
pre-size the horizon.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import CapacityError, PlacementError
from .resources import validate_demands

__all__ = ["ResourceTimeSpace"]


class ResourceTimeSpace:
    """A growable (resource x time) occupancy grid.

    Args:
        capacities: slots per resource dimension.
        initial_horizon: initial number of time slots allocated (the grid
            grows automatically beyond it).
    """

    def __init__(self, capacities: Sequence[int], initial_horizon: int = 64) -> None:
        if not capacities or any(c <= 0 for c in capacities):
            raise CapacityError(f"invalid capacities {tuple(capacities)}")
        if initial_horizon < 1:
            raise ValueError("initial_horizon must be >= 1")
        self.capacities: Tuple[int, ...] = tuple(int(c) for c in capacities)
        self._usage = np.zeros((len(self.capacities), initial_horizon), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #

    @property
    def num_resources(self) -> int:
        """Resource dimensionality."""
        return len(self.capacities)

    @property
    def horizon(self) -> int:
        """Currently allocated number of time slots."""
        return self._usage.shape[1]

    def _ensure_horizon(self, slots: int) -> None:
        if slots <= self.horizon:
            return
        grown = max(slots, 2 * self.horizon)
        extra = np.zeros((self.num_resources, grown - self.horizon), dtype=np.int64)
        self._usage = np.concatenate([self._usage, extra], axis=1)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def usage(self, resource: int, t: int) -> int:
        """Occupied slots of ``resource`` at time ``t`` (0 beyond horizon)."""
        if t < 0:
            raise ValueError("t must be >= 0")
        if t >= self.horizon:
            return 0
        return int(self._usage[resource, t])

    def free(self, resource: int, t: int) -> int:
        """Free slots of ``resource`` at time ``t``."""
        return self.capacities[resource] - self.usage(resource, t)

    def fits_at(self, demands: Sequence[int], start: int, duration: int) -> bool:
        """True iff ``demands`` fit during ``[start, start + duration)``."""
        if start < 0 or duration < 1:
            return False
        validate_demands(demands, self.capacities, label="placement")
        end = start + duration
        self._ensure_horizon(end)
        window = self._usage[:, start:end]
        demand_col = np.asarray(demands, dtype=np.int64)[:, None]
        capacity_col = np.asarray(self.capacities, dtype=np.int64)[:, None]
        return bool(np.all(window + demand_col <= capacity_col))

    def earliest_start(
        self,
        demands: Sequence[int],
        duration: int,
        not_before: int = 0,
        search_limit: int = 1_000_000,
    ) -> int:
        """Earliest ``t >= not_before`` at which the rectangle fits.

        Raises:
            PlacementError: if no feasible start exists within
                ``search_limit`` slots (indicates an impossible demand, which
                ``validate_demands`` should normally have caught).
        """
        if duration < 1:
            raise PlacementError("duration must be >= 1")
        validate_demands(demands, self.capacities, label="placement")
        t = max(0, int(not_before))
        limit = t + int(search_limit)
        while t <= limit:
            if self.fits_at(demands, t, duration):
                return t
            # Skip ahead: find the first blocking slot and hop past it.
            end = t + duration
            window = self._usage[:, t:end]
            demand_col = np.asarray(demands, dtype=np.int64)[:, None]
            capacity_col = np.asarray(self.capacities, dtype=np.int64)[:, None]
            blocked = np.any(window + demand_col > capacity_col, axis=0)
            last_block = int(np.nonzero(blocked)[0][-1])
            t = t + last_block + 1
        raise PlacementError(
            f"no feasible start for demands {tuple(demands)} within "
            f"{search_limit} slots"
        )

    def latest_start(
        self,
        demands: Sequence[int],
        duration: int,
        deadline: int,
        not_before: int = 0,
    ) -> Optional[int]:
        """Latest ``t`` with ``not_before <= t`` and ``t + duration <= deadline``
        at which the rectangle fits; ``None`` if no such ``t`` exists.

        This is the primitive behind Graphene's *backward* placement, which
        packs troublesome tasks from the top of the time horizon downward.
        """
        if duration < 1:
            raise PlacementError("duration must be >= 1")
        validate_demands(demands, self.capacities, label="placement")
        t = int(deadline) - int(duration)
        floor = max(0, int(not_before))
        while t >= floor:
            if self.fits_at(demands, t, duration):
                return t
            t -= 1
        return None

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def place(self, demands: Sequence[int], start: int, duration: int) -> None:
        """Occupy ``demands`` during ``[start, start + duration)``.

        Raises:
            PlacementError: if the rectangle does not fit there.
        """
        if not self.fits_at(demands, start, duration):
            raise PlacementError(
                f"demands {tuple(demands)} do not fit at t={start} "
                f"for {duration} slots"
            )
        end = start + duration
        self._ensure_horizon(end)
        demand_col = np.asarray(demands, dtype=np.int64)[:, None]
        self._usage[:, start:end] += demand_col

    def remove(self, demands: Sequence[int], start: int, duration: int) -> None:
        """Undo a prior :meth:`place` with identical arguments.

        Raises:
            PlacementError: if removal would drive usage negative (the
            rectangle was never placed there).
        """
        end = start + duration
        if start < 0 or end > self.horizon:
            raise PlacementError("removal outside the allocated horizon")
        demand_col = np.asarray(demands, dtype=np.int64)[:, None]
        window = self._usage[:, start:end] - demand_col
        if np.any(window < 0):
            raise PlacementError(
                f"cannot remove {tuple(demands)} at t={start}: not placed"
            )
        self._usage[:, start:end] = window

    def shift(self, dt: int) -> None:
        """Advance the origin by ``dt`` slots (drop the past).

        "When the cluster is processed for a certain number of time steps,
        the resource-time space will shift accordingly." (Sec. III-B)
        """
        if dt < 0:
            raise ValueError("dt must be >= 0")
        if dt == 0:
            return
        dt = min(dt, self.horizon)
        self._usage = np.concatenate(
            [
                self._usage[:, dt:],
                np.zeros((self.num_resources, dt), dtype=np.int64),
            ],
            axis=1,
        )

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #

    def image(self, horizon: int) -> np.ndarray:
        """Occupancy of the next ``horizon`` slots, normalized to [0, 1].

        Returns:
            Array of shape ``(num_resources, horizon)`` where entry
            ``(r, t)`` is the occupied fraction of resource ``r`` at
            ``t`` slots in the future.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self._ensure_horizon(horizon)
        window = self._usage[:, :horizon].astype(np.float64)
        caps = np.asarray(self.capacities, dtype=np.float64)[:, None]
        return window / caps

    def makespan(self) -> int:
        """Index one past the last occupied slot (0 if the grid is empty)."""
        occupied = np.any(self._usage > 0, axis=0)
        nonzero = np.nonzero(occupied)[0]
        return int(nonzero[-1]) + 1 if nonzero.size else 0

    def copy(self) -> "ResourceTimeSpace":
        """Independent deep copy of the grid."""
        duplicate = ResourceTimeSpace(self.capacities, self.horizon)
        duplicate._usage = self._usage.copy()
        return duplicate

    def __repr__(self) -> str:
        return (
            f"ResourceTimeSpace(capacities={self.capacities}, "
            f"horizon={self.horizon}, makespan={self.makespan()})"
        )
