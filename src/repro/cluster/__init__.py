"""Cluster substrate: multi-resource capacity tracking and the
resource-time space of Sec. III-B.

* :class:`ClusterState` — the live simulator state used by the scheduling
  environment and MCTS: which tasks are running, what capacity is free,
  and event-driven time advancement.
* :class:`ResourceTimeSpace` — the two-dimensional (resource x time)
  occupancy grid used for Graphene's forward/backward placement and for
  rendering the DRL agent's state image.
"""

from .resources import ResourceVector, fits, subtract, add
from .sim_adapter import ClusterProcess
from .state import ClusterState, RunningTask
from .timeline import ResourceTimeSpace

__all__ = [
    "ResourceVector",
    "fits",
    "subtract",
    "add",
    "ClusterProcess",
    "ClusterState",
    "RunningTask",
    "ResourceTimeSpace",
]
