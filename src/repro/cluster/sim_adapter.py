"""Kernel adapter: :class:`ClusterState` as a ``repro.sim`` event source.

:class:`ClusterProcess` implements the :class:`repro.sim.SimProcess`
protocol over a live :class:`~repro.cluster.state.ClusterState`.  The
cluster's next occurrence is its earliest running-task finish; when the
kernel advances the clock, the adapter releases every entry finishing by
the new instant and enqueues one ``COMPLETION`` event per released entry
(payload: the :class:`~repro.cluster.state.RunningTask`), in completion
order.

The split matters for same-instant semantics: capacity *release* happens
here, during time advance — before any event of the instant runs — so a
crash arriving at the same time computes its victims against
post-release occupancy (a task occupies its slots up to, not including,
its finish instant).  Only the *follow-up* work of a completion (DAG
unlocks, outcome records, retries) runs as a ``COMPLETION`` event, after
crash and recovery events of the same instant.  See
:mod:`repro.sim.events` for the full tie-break table.
"""

from __future__ import annotations

from typing import Optional

from ..sim.events import EventClass
from ..sim.queue import EventQueue
from .state import ClusterState

__all__ = ["ClusterProcess", "COMPLETION_KIND"]

COMPLETION_KIND = "cluster.completion"


class ClusterProcess:
    """Expose a :class:`ClusterState`'s completions as kernel events.

    Args:
        state: the live cluster; the adapter owns its time advancement
            (callers must not call ``advance`` on it directly while the
            kernel is driving).
    """

    __slots__ = ("state",)

    def __init__(self, state: ClusterState) -> None:
        self.state = state

    def next_event_time(self) -> Optional[int]:
        """Earliest running-task finish, or ``None`` when idle."""
        if self.state.is_idle:
            return None
        return self.state.earliest_finish_time()

    def advance_to(self, now: int, queue: EventQueue) -> None:
        """Advance cluster time to ``now``; enqueue released completions."""
        state = self.state
        dt = now - state.now
        if dt <= 0:
            return
        for entry in state.advance_entries(dt):
            queue.push(now, EventClass.COMPLETION, COMPLETION_KIND, payload=entry)
