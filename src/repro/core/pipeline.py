"""End-to-end training pipeline: graphs -> imitation -> REINFORCE -> Spear.

Reproduces the Sec. IV recipe:

1. Generate the training set (paper: 144 random DAGs of 25 tasks each).
2. Supervised pre-training to imitate the critical-path heuristic.
3. REINFORCE with the 20-rollout average baseline.
4. Wrap the trained network into a :class:`SpearScheduler`.

Every step is reproducible from a single seed, and the trained network can
be checkpointed with :mod:`repro.rl.checkpoints`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..config import EnvConfig, MctsConfig, NetworkConfig, TrainingConfig, WorkloadConfig
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..env.observation import observation_size
from ..rl.imitation import ImitationTrainer
from ..rl.network import PolicyNetwork
from ..rl.reinforce import EpochStats, ReinforceTrainer
from ..utils.rng import SeedLike, as_generator, spawn
from .spear import SpearScheduler

__all__ = [
    "default_network",
    "training_graphs",
    "pretrain_network",
    "train_spear_network",
    "build_spear",
]


def default_network(
    env_config: EnvConfig | None = None,
    network_config: NetworkConfig | None = None,
    seed: SeedLike = None,
) -> PolicyNetwork:
    """A freshly initialized policy network matching ``env_config``'s
    observation layout and visibility window."""
    env_config = env_config if env_config is not None else EnvConfig()
    network_config = (
        network_config
        if network_config is not None
        else NetworkConfig(max_ready=env_config.max_ready)
    )
    if network_config.max_ready != env_config.max_ready:
        network_config = replace(network_config, max_ready=env_config.max_ready)
    size = observation_size(env_config)
    return PolicyNetwork(size, network_config, seed=seed)


def training_graphs(
    training: TrainingConfig | None = None,
    workload: WorkloadConfig | None = None,
    seed: SeedLike = None,
) -> List[TaskGraph]:
    """The training set: ``num_examples`` random DAGs of
    ``example_num_tasks`` tasks (paper: 144 x 25)."""
    training = training if training is not None else TrainingConfig()
    base = workload if workload is not None else WorkloadConfig()
    workload = replace(base, num_tasks=training.example_num_tasks)
    rng = as_generator(seed)
    return [
        random_layered_dag(workload, seed=child)
        for child in spawn(rng, training.num_examples)
    ]


def pretrain_network(
    network: PolicyNetwork,
    graphs: List[TaskGraph],
    env_config: EnvConfig | None = None,
    training: TrainingConfig | None = None,
    seed: SeedLike = None,
) -> List[float]:
    """Imitation pre-training on the critical-path teacher; returns the
    supervised loss curve."""
    trainer = ImitationTrainer(
        network, env_config=env_config, training=training, seed=seed
    )
    return trainer.fit(graphs)


def train_spear_network(
    env_config: EnvConfig | None = None,
    training: TrainingConfig | None = None,
    workload: WorkloadConfig | None = None,
    seed: SeedLike = None,
    epochs: Optional[int] = None,
    log_every: int = 0,
) -> Tuple[PolicyNetwork, List[EpochStats]]:
    """Full Sec. IV pipeline; returns the network and the learning curve.

    Args:
        env_config: cluster shape for the training environments.
        training: hyper-parameters; ``epochs`` overrides
            ``training.epochs`` for quick runs.
        workload: base workload for the training DAGs.
        seed: master seed (graphs, init, sampling all derive from it).
        log_every: print progress every N epochs (0 = silent).
    """
    env_config = env_config if env_config is not None else EnvConfig(
        process_until_completion=True
    )
    training = training if training is not None else TrainingConfig()
    rng = as_generator(seed)
    graph_rng, net_rng, imit_rng, rl_rng = spawn(rng, 4)

    graphs = training_graphs(training, workload, seed=graph_rng)
    network = default_network(env_config, seed=net_rng)
    pretrain_network(
        network, graphs, env_config=env_config, training=training, seed=imit_rng
    )
    trainer = ReinforceTrainer(
        network, graphs, env_config=env_config, training=training, seed=rl_rng
    )
    history = trainer.train(epochs=epochs, log_every=log_every)
    return network, history


def build_spear(
    network: PolicyNetwork,
    config: MctsConfig | None = None,
    env_config: EnvConfig | None = None,
    seed: SeedLike = None,
) -> SpearScheduler:
    """Convenience constructor for a ready-to-run Spear scheduler."""
    return SpearScheduler(
        network, config=config, env_config=env_config, seed=seed
    )
