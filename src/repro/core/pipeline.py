"""End-to-end training pipeline: graphs -> imitation -> REINFORCE -> Spear.

Reproduces the Sec. IV recipe:

1. Generate the training set (paper: 144 random DAGs of 25 tasks each).
2. Supervised pre-training to imitate the critical-path heuristic.
3. REINFORCE with the 20-rollout average baseline.
4. Wrap the trained network into a :class:`SpearScheduler`.

Every step is reproducible from a single seed, and the trained network can
be checkpointed with :mod:`repro.rl.checkpoints`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..config import (
    EnvConfig,
    GnnConfig,
    MctsConfig,
    NetworkConfig,
    TrainingConfig,
    WorkloadConfig,
)
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..env.observation import observation_size
from ..errors import ConfigError
from ..rl.gnn import GraphPolicyNetwork
from ..rl.imitation import ImitationTrainer
from ..rl.network import PolicyNetwork
from ..rl.ppo import PpoTrainer
from ..rl.reinforce import EpochStats, ReinforceTrainer
from ..utils.rng import SeedLike, as_generator, spawn
from .spear import SpearScheduler

__all__ = [
    "default_network",
    "default_graph_network",
    "training_graphs",
    "pretrain_network",
    "train_spear_network",
    "build_spear",
    "TRAINER_CLASSES",
]

#: ``--algo`` name -> rollout-trainer class (the trainer layer's registry).
TRAINER_CLASSES = {
    "reinforce": ReinforceTrainer,
    "ppo": PpoTrainer,
}


def default_network(
    env_config: EnvConfig | None = None,
    network_config: NetworkConfig | None = None,
    seed: SeedLike = None,
) -> PolicyNetwork:
    """A freshly initialized policy network matching ``env_config``'s
    observation layout and visibility window."""
    env_config = env_config if env_config is not None else EnvConfig()
    network_config = (
        network_config
        if network_config is not None
        else NetworkConfig(max_ready=env_config.max_ready)
    )
    if network_config.max_ready != env_config.max_ready:
        network_config = replace(network_config, max_ready=env_config.max_ready)
    size = observation_size(env_config)
    return PolicyNetwork(size, network_config, seed=seed)


def default_graph_network(
    env_config: EnvConfig | None = None,
    gnn_config: GnnConfig | None = None,
    seed: SeedLike = None,
) -> GraphPolicyNetwork:
    """A freshly initialized graph policy network for ``env_config``'s
    cluster shape (the DAG size never enters the parameterization)."""
    env_config = env_config if env_config is not None else EnvConfig()
    return GraphPolicyNetwork(
        len(env_config.cluster.capacities), gnn_config, seed=seed
    )


def training_graphs(
    training: TrainingConfig | None = None,
    workload: WorkloadConfig | None = None,
    seed: SeedLike = None,
) -> List[TaskGraph]:
    """The training set: ``num_examples`` random DAGs of
    ``example_num_tasks`` tasks (paper: 144 x 25)."""
    training = training if training is not None else TrainingConfig()
    base = workload if workload is not None else WorkloadConfig()
    workload = replace(base, num_tasks=training.example_num_tasks)
    rng = as_generator(seed)
    return [
        random_layered_dag(workload, seed=child)
        for child in spawn(rng, training.num_examples)
    ]


def pretrain_network(
    network: PolicyNetwork,
    graphs: List[TaskGraph],
    env_config: EnvConfig | None = None,
    training: TrainingConfig | None = None,
    seed: SeedLike = None,
) -> List[float]:
    """Imitation pre-training on the critical-path teacher; returns the
    supervised loss curve."""
    trainer = ImitationTrainer(
        network, env_config=env_config, training=training, seed=seed
    )
    return trainer.fit(graphs)


def train_spear_network(
    env_config: EnvConfig | None = None,
    training: TrainingConfig | None = None,
    workload: WorkloadConfig | None = None,
    seed: SeedLike = None,
    epochs: Optional[int] = None,
    log_every: int = 0,
    algo: str = "reinforce",
    policy: str = "mlp",
    gnn_config: GnnConfig | None = None,
):
    """Full Sec. IV pipeline; returns the network and the learning curve.

    The default (``algo="reinforce"``, ``policy="mlp"``) is the paper's
    recipe and is bit-identical to the historical implementation; the
    plug-in layers open up ``algo="ppo"`` and ``policy="gnn"`` in any
    combination.

    Args:
        env_config: cluster shape for the training environments.
        training: hyper-parameters; ``epochs`` overrides
            ``training.epochs`` for quick runs.
        workload: base workload for the training DAGs.
        seed: master seed (graphs, init, sampling all derive from it).
        log_every: print progress every N epochs (0 = silent).
        algo: rollout trainer — ``"reinforce"`` or ``"ppo"``.
        policy: model family — ``"mlp"`` (windowed) or ``"gnn"``
            (scale-invariant graph policy).
        gnn_config: architecture overrides for ``policy="gnn"``.
    """
    env_config = env_config if env_config is not None else EnvConfig(
        process_until_completion=True
    )
    training = training if training is not None else TrainingConfig()
    if algo not in TRAINER_CLASSES:
        raise ConfigError(
            f"unknown training algorithm {algo!r}; expected one of "
            f"{sorted(TRAINER_CLASSES)}"
        )
    if policy not in ("mlp", "gnn"):
        raise ConfigError(f"unknown policy family {policy!r}")
    rng = as_generator(seed)
    graph_rng, net_rng, imit_rng, rl_rng = spawn(rng, 4)

    graphs = training_graphs(training, workload, seed=graph_rng)
    if policy == "mlp":
        network = default_network(env_config, seed=net_rng)
    else:
        network = default_graph_network(env_config, gnn_config, seed=net_rng)
    pretrain_network(
        network, graphs, env_config=env_config, training=training, seed=imit_rng
    )
    trainer = TRAINER_CLASSES[algo](
        network, graphs, env_config=env_config, training=training, seed=rl_rng
    )
    history = trainer.train(epochs=epochs, log_every=log_every)
    return network, history


def build_spear(
    network: PolicyNetwork,
    config: MctsConfig | None = None,
    env_config: EnvConfig | None = None,
    seed: SeedLike = None,
) -> SpearScheduler:
    """Convenience constructor for a ready-to-run Spear scheduler."""
    return SpearScheduler(
        network, config=config, env_config=env_config, seed=seed
    )
