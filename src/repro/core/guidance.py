"""Network-guided expansion and rollout policies for MCTS.

These are the two integration points of Sec. III-A: "the DRL agent can
choose an action leading to the next state during expansion and rollout,
whereas the default MCTS strategy uses a random policy during these steps."

* :class:`NetworkExpansion` — orders a node's untried actions by the
  policy's probabilities, so the search "can focus on more promising
  subtrees instead of a randomly selected one".
* :class:`NetworkRollout` — simulates to termination by sampling from the
  policy ("our DRL model will simulate the DAG scheduling problem with
  expertise and provide a more meaningful estimation of the makespan").
"""

from __future__ import annotations

from typing import List

from ..env.actions import Action
from ..env.scheduling_env import SchedulingEnv
from ..errors import EnvironmentStateError
from ..mcts.policies import ExpansionPolicy, RolloutPolicy
from ..rl.agent import NetworkPolicy
from ..rl.network import PolicyNetwork
from ..utils.rng import SeedLike

__all__ = ["NetworkExpansion", "NetworkRollout", "TruncatedRollout"]


class NetworkExpansion(ExpansionPolicy):
    """Order untried actions by descending policy probability.

    Args:
        network: the trained policy network.
        work_conserving: must match the search's expansion-filter setting
            so probabilities are computed over the same action set.
    """

    def __init__(self, network, work_conserving: bool = True) -> None:
        self._policy = network.make_policy(
            mode="greedy", work_conserving=work_conserving
        )

    def prioritize(self, env: SchedulingEnv, actions: List[Action]) -> List[Action]:
        probabilities = self._policy.action_probabilities(env)
        return sorted(
            actions,
            key=lambda a: (-probabilities.get(a, 0.0), a),
        )


class NetworkRollout(RolloutPolicy):
    """Simulate to termination with the trained policy.

    Args:
        network: the trained policy network.
        seed: sampling RNG (ignored in greedy mode).
        mode: ``"sample"`` (default — diverse rollouts, matching how the
            network was trained) or ``"greedy"``.
        work_conserving: apply the Spear action filter during rollout.
        max_steps_factor: livelock guard multiplier.
    """

    def __init__(
        self,
        network,
        seed: SeedLike = None,
        mode: str = "sample",
        work_conserving: bool = True,
        max_steps_factor: int = 50,
    ) -> None:
        self._policy = network.make_policy(
            mode=mode, seed=seed, work_conserving=work_conserving
        )
        self._max_steps_factor = max_steps_factor
        self._evaluator = None

    def _step_limit(self, env: SchedulingEnv) -> int:
        return self._max_steps_factor * (
            sum(task.runtime for task in env.graph) + env.graph.num_tasks
        )

    def rollout(self, env: SchedulingEnv) -> int:
        limit = self._step_limit(env)
        steps = 0
        while not env.done:
            if steps >= limit:
                raise EnvironmentStateError("network rollout livelocked")
            env.step(self._policy.select(env))
            steps += 1
        return env.makespan

    def rollout_many(self, envs: List, limit: int) -> List[int]:
        """Batched-MCTS hook: play clones of all lanes to completion with
        one network forward per simulation step (see
        :class:`repro.rl.evaluator.PolicyEvaluator`).  Never mutates the
        input environments."""
        from ..rl.evaluator import PolicyEvaluator

        if self._evaluator is None or self._evaluator.graph is not envs[0].graph:
            self._evaluator = PolicyEvaluator(
                self._policy.network,
                envs[0].config,
                envs[0].graph,
                work_conserving=self._policy.work_conserving,
            )
        return self._evaluator.rollout_many(
            envs, limit, mode=self._policy.mode, rng=self._policy._rng
        )


class TruncatedRollout(RolloutPolicy):
    """Depth-limited rollout scored by a value network (AlphaZero-style).

    Plays the guidance policy for at most ``depth_limit`` decisions; if
    the episode has not terminated, the remaining makespan is estimated by
    the value network and added to the elapsed time.  This extension of
    Spear caps rollout cost on deep DAGs at the price of estimator bias —
    ablate it against full rollouts before trusting it on a new workload.

    Args:
        policy_network: the trained policy used to play the prefix.
        value_network: :class:`repro.rl.value_network.ValueNetwork`
            predicting remaining makespan from an observation.
        depth_limit: decisions to play before consulting the value net
            (>= 1).
        seed: sampling RNG for the prefix.
        work_conserving: action-filter setting (match the search's).
    """

    def __init__(
        self,
        policy_network: PolicyNetwork,
        value_network,
        depth_limit: int,
        seed: SeedLike = None,
        work_conserving: bool = True,
    ) -> None:
        if depth_limit < 1:
            raise ValueError("depth_limit must be >= 1")
        self._policy = NetworkPolicy(
            policy_network, mode="sample", seed=seed,
            work_conserving=work_conserving,
        )
        self._value = value_network
        self._depth_limit = depth_limit

    def rollout(self, env: SchedulingEnv) -> int:
        from ..env.observation import ObservationBuilder

        steps = 0
        while not env.done and steps < self._depth_limit:
            env.step(self._policy.select(env))
            steps += 1
        if env.done:
            return env.makespan
        builder = ObservationBuilder(env.graph, env.config)
        remaining = float(self._value.predict(builder.build(env))[0])
        # A terminal state can never precede the running tasks' finishes.
        floor = 0
        if not env.cluster.is_idle:
            floor = env.cluster.earliest_finish_time() - env.now
        return env.now + max(int(round(remaining)), floor, 1)
