"""Spear: the paper's primary contribution — MCTS guided by a trained DRL
policy in both the expansion and rollout steps (Sec. III)."""

from .guidance import NetworkExpansion, NetworkRollout, TruncatedRollout
from .spear import SpearScheduler
from .pipeline import (
    default_network,
    training_graphs,
    pretrain_network,
    train_spear_network,
    build_spear,
)

__all__ = [
    "NetworkExpansion",
    "NetworkRollout",
    "TruncatedRollout",
    "SpearScheduler",
    "default_network",
    "training_graphs",
    "pretrain_network",
    "train_spear_network",
    "build_spear",
]
