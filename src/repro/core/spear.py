"""The Spear scheduler (Sec. III): MCTS + DRL guidance.

Spear is :class:`repro.mcts.MctsScheduler` with the random expansion and
rollout policies replaced by the trained network — nothing else changes,
which is exactly the paper's framing: "we replace random expansion and
random rollout in MCTS, and adopt a trained DRL model to choose actions
like an expert".

The headline consequence (Fig. 8(a)): Spear with a budget of 100 matches
pure MCTS with a budget of 1000 — a 10x search-budget reduction.
"""

from __future__ import annotations

from ..config import EnvConfig, MctsConfig
from ..mcts.search import MctsScheduler
from ..rl.network import PolicyNetwork
from ..utils.rng import SeedLike, as_generator
from .guidance import NetworkExpansion, NetworkRollout

__all__ = ["SpearScheduler"]


class SpearScheduler(MctsScheduler):
    """Network-guided MCTS scheduling.

    Args:
        network: a trained policy network (see
            :func:`repro.core.pipeline.train_spear_network`); its
            ``max_ready`` must match ``env_config.max_ready``.
        config: search parameters.  The paper uses a much smaller budget
            than pure MCTS (100/50 on the production trace); pass your own
            :class:`MctsConfig` to control it.
        env_config: cluster shape (event-skipping PROCESS by default).
        seed: RNG seed for rollout sampling.
        rollout_mode: ``"sample"`` (paper behaviour) or ``"greedy"``.
    """

    def __init__(
        self,
        network: PolicyNetwork,
        config: MctsConfig | None = None,
        env_config: EnvConfig | None = None,
        seed: SeedLike = None,
        rollout_mode: str = "sample",
    ) -> None:
        cfg = config if config is not None else MctsConfig()
        rng = as_generator(seed)
        expansion = NetworkExpansion(
            network, work_conserving=cfg.use_expansion_filters
        )
        rollout = NetworkRollout(
            network,
            seed=rng,
            mode=rollout_mode,
            work_conserving=cfg.use_expansion_filters,
        )
        super().__init__(
            config=cfg,
            env_config=env_config,
            expansion=expansion,
            rollout=rollout,
            seed=rng,
            name="spear",
        )
        self.network = network
