"""The Spear scheduler (Sec. III): MCTS + DRL guidance.

Spear is :class:`repro.mcts.MctsScheduler` with the random expansion and
rollout policies replaced by the trained network — nothing else changes,
which is exactly the paper's framing: "we replace random expansion and
random rollout in MCTS, and adopt a trained DRL model to choose actions
like an expert".

The headline consequence (Fig. 8(a)): Spear with a budget of 100 matches
pure MCTS with a budget of 1000 — a 10x search-budget reduction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from ..config import EnvConfig, MctsConfig
from ..errors import ConfigError
from ..mcts.search import MctsScheduler
from ..rl.gnn import GraphPolicyNetwork
from ..rl.network import PolicyNetwork
from ..utils.rng import SeedLike, as_generator
from .guidance import NetworkExpansion, NetworkRollout

AnyPolicyNetwork = Union[PolicyNetwork, GraphPolicyNetwork]

__all__ = ["SpearScheduler"]


class SpearScheduler(MctsScheduler):
    """Network-guided MCTS scheduling.

    Args:
        network: a trained policy network (see
            :func:`repro.core.pipeline.train_spear_network`) — the
            windowed MLP (its ``max_ready`` must match
            ``env_config.max_ready``) or a scale-invariant
            :class:`~repro.rl.gnn.GraphPolicyNetwork`.
        config: search parameters.  The paper uses a much smaller budget
            than pure MCTS (100/50 on the production trace); pass your own
            :class:`MctsConfig` to control it.
        env_config: cluster shape (event-skipping PROCESS by default).
        seed: RNG seed for rollout sampling.
        rollout_mode: ``"sample"`` (paper behaviour) or ``"greedy"``.
    """

    def __init__(
        self,
        network: AnyPolicyNetwork,
        config: MctsConfig | None = None,
        env_config: EnvConfig | None = None,
        seed: SeedLike = None,
        rollout_mode: str = "sample",
    ) -> None:
        cfg = config if config is not None else MctsConfig()
        rng = as_generator(seed)
        expansion = NetworkExpansion(
            network, work_conserving=cfg.use_expansion_filters
        )
        rollout = NetworkRollout(
            network,
            seed=rng,
            mode=rollout_mode,
            work_conserving=cfg.use_expansion_filters,
        )
        super().__init__(
            config=cfg,
            env_config=env_config,
            expansion=expansion,
            rollout=rollout,
            seed=rng,
            name="spear",
            leaf_network=network,
        )
        self.network = network


# ---------------------------------------------------------------------- #
# registry factories (spec-string construction)
# ---------------------------------------------------------------------- #


def _mcts_config(
    budget: Optional[int],
    min_budget: Optional[int],
    rollout_batch: Optional[int] = None,
    leaf_policy: Optional[str] = None,
) -> MctsConfig:
    cfg = MctsConfig()
    if budget is not None:
        cfg = replace(cfg, initial_budget=budget)
    if min_budget is not None:
        cfg = replace(cfg, min_budget=min_budget)
    if rollout_batch is not None:
        cfg = replace(cfg, rollout_batch=rollout_batch)
    if leaf_policy is not None:
        cfg = replace(cfg, leaf_policy=leaf_policy)
    return cfg


def _make_mcts(
    env_config: EnvConfig,
    budget: Optional[int] = None,
    min_budget: Optional[int] = None,
    seed: int = 0,
) -> MctsScheduler:
    """Registry factory: ``make_scheduler("mcts:budget=200,seed=3")``."""
    return MctsScheduler(
        _mcts_config(budget, min_budget), env_config, seed=seed
    )


def checkpoint(raw: str) -> str:
    """Option type for ``spear``'s ``network`` key: a checkpoint path.

    Spec strings carry the path; programmatic ``make_scheduler`` calls
    may pass a live :class:`~repro.rl.network.PolicyNetwork` instead.
    """
    return raw


def _make_spear(
    env_config: EnvConfig,
    budget: Optional[int] = None,
    min_budget: Optional[int] = None,
    seed: int = 0,
    network: Union[str, AnyPolicyNetwork, None] = None,
    rollout_mode: str = "sample",
    rollout_batch: Optional[int] = None,
    leaf_policy: Optional[str] = None,
) -> SpearScheduler:
    """Registry factory: ``make_scheduler("spear:budget=100,fallback=heft")``.

    ``network`` is a checkpoint path (spec) or a live network
    (programmatic); omitted, a freshly initialized network is used —
    functional for wiring/fault tests, but untrained (use
    :func:`repro.core.pipeline.train_spear_network` or
    :func:`repro.experiments.cached_network` for paper-faithful guidance).
    Spear defaults to the paper's reduced budget (100/20) rather than
    pure MCTS's 1000/100.
    """
    if isinstance(network, str):
        from ..rl.checkpoints import load_policy_checkpoint

        net = load_policy_checkpoint(network)
    elif network is None:
        from .pipeline import default_network

        net = default_network(env_config, seed=seed)
    elif isinstance(network, (PolicyNetwork, GraphPolicyNetwork)):
        net = network
    else:
        raise ConfigError(
            f"spear: network must be a checkpoint path or a policy "
            f"network, got {type(network).__name__}"
        )
    cfg = _mcts_config(
        budget if budget is not None else 100,
        min_budget if min_budget is not None else 20,
        rollout_batch,
        leaf_policy,
    )
    return SpearScheduler(
        net,
        config=cfg,
        env_config=env_config,
        seed=seed,
        rollout_mode=rollout_mode,
    )


def _register() -> None:
    from ..schedulers.registry import register

    register(
        "mcts",
        _make_mcts,
        options={"budget": int, "min_budget": int, "seed": int},
    )
    register(
        "spear",
        _make_spear,
        options={
            "budget": int,
            "min_budget": int,
            "seed": int,
            "network": checkpoint,
            "rollout_mode": str,
            "rollout_batch": int,
            "leaf_policy": str,
        },
    )


_register()
