"""Whole-program dataflow analysis for the reproduction's contracts.

The per-module AST rules in :mod:`repro.analysis.rules` cannot see an
unseeded RNG escaping through a helper, a frozen snapshot mutated two
calls deep, or a registry schema drifting from its factory signature.
This subpackage supplies the missing machinery:

* :mod:`~repro.analysis.flow.modgraph` — project import graph and
  per-module symbol tables (functions, classes, frozen dataclasses,
  module-level state, resolved imports);
* :mod:`~repro.analysis.flow.cfg` — per-function control-flow graphs;
* :mod:`~repro.analysis.flow.dataflow` — a small forward worklist
  framework over those CFGs;
* :mod:`~repro.analysis.flow.taint` — label propagation (the common
  abstract domain) plus interprocedural call summaries;
* :mod:`~repro.analysis.flow.engine` — the :class:`FlowRule` registry
  and the :func:`analyze_project` driver ``repro lint --flow`` runs;
* :mod:`~repro.analysis.flow.rules` — the REP201–REP205 contract rules.

Flow rules see the *whole* project at once (a :class:`ProjectGraph`),
unlike :class:`repro.analysis.LintRule` which sees one module.  Both
families share violation records, ``# repro: noqa[REPxxx]`` suppressions
and the committed baseline workflow.
"""

from .cfg import CFG, BasicBlock, build_cfg
from .dataflow import ForwardAnalysis, run_forward
from .engine import (
    FlowRule,
    analyze_project,
    available_flow_rules,
    flow_rule_ids,
    register_flow_rule,
)
from .modgraph import FunctionInfo, ModuleInfo, ProjectGraph
from .taint import TaintAnalysis, expr_labels, fixed_point_summaries

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "ProjectGraph",
    "CFG",
    "BasicBlock",
    "build_cfg",
    "ForwardAnalysis",
    "run_forward",
    "TaintAnalysis",
    "expr_labels",
    "fixed_point_summaries",
    "FlowRule",
    "register_flow_rule",
    "available_flow_rules",
    "flow_rule_ids",
    "analyze_project",
]
