"""Project import graph and per-module symbol tables.

:class:`ProjectGraph` is the whole-program view every flow rule starts
from: all modules of a package parsed once, imports resolved to dotted
targets, functions and methods indexed by qualified name, frozen
dataclasses identified, and a project-local call graph with just enough
local type inference (``x = SomeClass(...)`` makes ``x.method()``
resolvable) to trace contracts through helpers.

Resolution is deliberately *syntactic* and conservative: a call that
cannot be resolved to a project symbol simply contributes no edge, so
analyses built on top under-approximate reachability rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

__all__ = ["ModuleInfo", "FunctionInfo", "ClassInfo", "ProjectGraph", "dotted_name"]


def dotted_name(expr: ast.expr) -> Optional[str]:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else ``None``)."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str  #: ``pkg.mod.func`` or ``pkg.mod.Class.method``
    module: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    class_name: Optional[str] = None  #: enclosing class simple name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return names

    @property
    def has_kwargs(self) -> bool:
        return self.node.args.kwarg is not None


@dataclass
class ClassInfo:
    """One class: name, AST, and whether it is a frozen dataclass."""

    qualname: str
    module: str
    node: ast.ClassDef
    frozen_dataclass: bool = False
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = dotted_name(deco.func)
            if name and name.split(".")[-1] == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


@dataclass
class ModuleInfo:
    """One parsed module plus its resolved symbol tables."""

    name: str  #: dotted module name, e.g. ``repro.utils.rng``
    path: str  #: source path as given to the builder (display/baseline key)
    tree: ast.Module
    source: str
    #: local alias -> dotted target (``np`` -> ``numpy``,
    #: ``as_generator`` -> ``repro.utils.rng.as_generator``).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level assigned names -> the value node of their *first* binding.
    module_assigns: Dict[str, ast.expr] = field(default_factory=dict)

    def resolve_local(self, name: str) -> Optional[str]:
        """Resolve a bare name used in this module to a dotted target."""
        if name in self.imports:
            return self.imports[name]
        if name in self.functions:
            return f"{self.name}.{name}"
        if name in self.classes:
            return f"{self.name}.{name}"
        if name in self.module_assigns:
            return f"{self.name}.{name}"
        return None


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    """Resolve ``from ..x import y`` relative to ``module``'s package."""
    # ``module`` is the dotted module name; its package drops the last part.
    parts = module.split(".")
    # level 1 = current package, level 2 = parent package, ...
    base = parts[: len(parts) - level]
    if target:
        base = base + target.split(".")
    return ".".join(base)


def _collect_imports(module: str, tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, node.level, node.module)
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _index_module(name: str, path: str, source: str, tree: ast.Module) -> ModuleInfo:
    info = ModuleInfo(
        name=name,
        path=path,
        tree=tree,
        source=source,
        imports=_collect_imports(name, tree),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = FunctionInfo(
                qualname=f"{name}.{node.name}", module=name, node=node
            )
        elif isinstance(node, ast.ClassDef):
            cls = ClassInfo(
                qualname=f"{name}.{node.name}",
                module=name,
                node=node,
                frozen_dataclass=_is_frozen_dataclass(node),
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        qualname=f"{name}.{node.name}.{item.name}",
                        module=name,
                        node=item,
                        class_name=node.name,
                    )
            info.classes[node.name] = cls
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.module_assigns.setdefault(target.id, node.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                info.module_assigns.setdefault(node.target.id, node.value)
    return info


class ProjectGraph:
    """All modules of a project, indexed for whole-program queries."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self._by_path: Dict[str, ModuleInfo] = {m.path: m for m in self.modules.values()}
        #: every function/method by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: every class by qualified name.
        self.classes: Dict[str, ClassInfo] = {}
        for mod in self.modules.values():
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_paths(cls, paths: Sequence[Union[str, Path]]) -> "ProjectGraph":
        """Parse every ``.py`` file under ``paths`` into a project graph.

        Unreadable or syntactically invalid files are skipped — the
        linter already reports them as ``REP000``; flow analysis runs on
        what parses.
        """
        from ..linter import iter_python_files  # local: avoid import cycle

        modules: List[ModuleInfo] = []
        for file in iter_python_files(paths):
            try:
                source = file.read_text(encoding="utf-8")
                tree = ast.parse(source)
            except (OSError, SyntaxError, ValueError):
                continue
            modules.append(
                _index_module(_module_name(file), str(file), source, tree)
            )
        return cls(modules)

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "ProjectGraph":
        """Build a graph from ``{path: source}`` (tests and tools).

        The dotted module name is derived from the path with any leading
        ``src/`` stripped: ``"src/pkg/mod.py"`` and ``"pkg/mod.py"``
        both become ``pkg.mod``.
        """
        modules: List[ModuleInfo] = []
        for path, source in sources.items():
            tree = ast.parse(source)
            modules.append(
                _index_module(_module_name(Path(path)), path, source, tree)
            )
        return cls(modules)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def module_for_path(self, path: Union[str, Path]) -> Optional[ModuleInfo]:
        return self._by_path.get(str(path))

    def resolve_call(
        self,
        module: ModuleInfo,
        func: ast.expr,
        local_types: Optional[Mapping[str, str]] = None,
        self_class: Optional[str] = None,
    ) -> Optional[str]:
        """Resolve a call's function expression to a dotted target name.

        Handles bare names (via imports and module symbols), dotted
        chains rooted at an import (``np.random.default_rng``),
        ``self.method()`` inside a known class, and ``var.method()``
        where ``var`` was locally bound to a project-class construction
        (``local_types`` maps var -> class qualname).  Returns ``None``
        when the target is unknown.
        """
        if isinstance(func, ast.Name):
            return module.resolve_local(func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and self_class:
                    return f"{self_class}.{func.attr}"
                if local_types and base.id in local_types:
                    return f"{local_types[base.id]}.{func.attr}"
            name = dotted_name(func)
            if name is None:
                return None
            head, _, rest = name.partition(".")
            resolved_head = module.resolve_local(head)
            if resolved_head is None:
                return None
            return f"{resolved_head}.{rest}" if rest else resolved_head
        return None

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        """Look up a function, following ``Class`` -> ``Class.__init__``."""
        fn = self.functions.get(qualname)
        if fn is not None:
            return fn
        cls = self.classes.get(qualname)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def frozen_class_names(self) -> Set[str]:
        """Simple names of every ``@dataclass(frozen=True)`` in the project."""
        return {
            cls.node.name
            for cls in self.classes.values()
            if cls.frozen_dataclass
        }

    def infer_local_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Map local names to project-class qualnames for obvious bindings.

        Only the transparent case is handled: ``x = SomeClass(...)``
        where ``SomeClass`` resolves to a project class.  Enough to
        follow ``scheduler = MctsScheduler(...); scheduler.schedule(g)``.
        """
        module = self.modules[fn.module]
        types: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                target_names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if not target_names:
                    continue
                resolved = self.resolve_call(module, node.value.func)
                if resolved in self.classes:
                    for name in target_names:
                        types[name] = resolved
        return types


def _module_name(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Walks up through package directories (those containing
    ``__init__.py``) when the file exists on disk; for in-memory paths it
    uses the path parts with a leading ``src`` component stripped.
    """
    path = Path(path)
    if path.exists():
        parts = [path.stem] if path.stem != "__init__" else []
        parent = path.parent
        while (parent / "__init__.py").exists():
            parts.append(parent.name)
            parent = parent.parent
        if parts:
            return ".".join(reversed(parts))
    parts_t: Tuple[str, ...] = path.parts
    if parts_t and parts_t[0] in ("src", "."):
        parts_t = parts_t[1:]
    stem = [Path(parts_t[-1]).stem] if parts_t else [path.stem]
    if stem == ["__init__"]:
        stem = []
    return ".".join(list(parts_t[:-1]) + stem) if parts_t else path.stem
