"""REP204 — registry-spec contract drift.

The scheduler registry is a three-way contract spread across files:

1. the **option schema** declared at ``register(name, factory,
   options={...})`` time (:mod:`repro.schedulers.registry`, plus lazy
   providers like :mod:`repro.core.spear`);
2. the **factory signature** — ``make_scheduler`` calls
   ``factory(env_config, **typed_options)``, so every schema key must
   land in a real parameter and every defaultless parameter must be
   fillable;
3. the **spec strings** users type — ``"mcts:budget=200,seed=3"`` —
   scattered through CLI defaults, experiment configs, docstrings and
   tests.

Each leg can drift independently and nothing complains until a user
hits ``ConfigError`` at runtime (or worse, a silently ignored option).
This rule cross-checks all three statically:

* schema keys the factory cannot accept (no matching parameter, no
  ``**kwargs``);
* factory parameters (beyond the leading config) without defaults that
  the schema does not cover — ``factory(config)`` would crash;
* schema keys shadowing reserved wrapper keys
  (``verify``/``telemetry``/``fallback``/``replan_budget``);
* the same name registered twice;
* spec-string literals (including f-strings with holes) whose name is
  registered but whose keys are not in that scheduler's schema or the
  wrapper set.

The closed-kind spec families share the same grammar
(:mod:`repro.specs`) and publish their schemas as dict literals in
``repro.specs.catalog`` (``ARRIVAL_SPEC_SCHEMAS``,
``ROUTER_SPEC_SCHEMAS``).  The rule reads those literals statically and
applies the same spec-literal check to ``"poisson:rate=..."`` and
``"least-load:metric=..."`` strings — without the wrapper-key allowance,
which is a scheduler-only concept.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...linter import LintViolation
from ..engine import FlowRule, register_flow_rule
from ..modgraph import ModuleInfo, ProjectGraph

__all__ = ["RegistryContractRule"]

#: spec keys reserved by make_scheduler's wrapper stack.
_WRAPPER_KEYS = frozenset({"verify", "telemetry", "fallback", "replan_budget"})

#: placeholder standing in for an f-string interpolation hole.
_HOLE = "\x00"

#: Names may contain hyphens (``round-robin``, ``least-load``); option
#: keys may not (they must be valid ``**kwargs`` identifiers).
_SPEC_RE = re.compile(
    r"^(?P<name>[A-Za-z_\x00][A-Za-z0-9_\x00-]*):"
    r"(?P<opts>[A-Za-z_\x00][A-Za-z0-9_\x00]*=[^,\s]+"
    r"(?:,[A-Za-z_\x00][A-Za-z0-9_\x00]*=[^,\s]+)*)$"
)

#: ``repro.specs.catalog`` assignments holding closed-kind schemas, and
#: the noun spec-literal violations use for each family.
_CATALOG_TABLES = {
    "ARRIVAL_SPEC_SCHEMAS": "arrival kind",
    "ROUTER_SPEC_SCHEMAS": "router policy",
}


@dataclass(frozen=True)
class _SpecFamily:
    """One checkable spec-name family: who owns the name, what keys it
    takes, and which extra keys are always legal (wrapper keys for
    schedulers, nothing for the closed-kind families)."""

    noun: str
    keys: Optional[Set[str]]  #: None when not statically known
    extra: frozenset = frozenset()


@dataclass
class _Registration:
    """One ``register(...)`` call site, with what could be read off it."""

    name: str
    module: ModuleInfo
    call: ast.Call
    schema_keys: Optional[Set[str]] = None  #: None when not a dict literal
    factory: Optional[ast.expr] = None
    key_nodes: Dict[str, ast.expr] = field(default_factory=dict)


def _constant_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _spec_text(node: ast.expr) -> Optional[str]:
    """The literal text of a potential spec string (holes become ``\\x00``)."""
    text = _constant_str(node)
    if text is not None:
        return text
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append(_HOLE)
        return "".join(parts)
    return None


def _factory_params(
    project: ProjectGraph, module: ModuleInfo, factory: ast.expr
) -> Optional[Tuple[List[str], List[str], bool]]:
    """``(param names, defaultless names, has **kwargs)`` for a factory.

    Works for inline lambdas and for names resolving to project
    functions/classes; anything else returns ``None`` (unknown).
    """
    if isinstance(factory, ast.Lambda):
        args = factory.args
    else:
        target = project.resolve_call(module, factory)
        if target is None:
            return None
        fn = project.function(target)
        if fn is None:
            return None
        args = fn.node.args
        if fn.class_name is not None and fn.name == "__init__":
            # drop self: register() hands the config to the constructor.
            args = ast.arguments(
                posonlyargs=list(args.posonlyargs),
                args=list(args.args[1:]) if args.args else [],
                vararg=args.vararg,
                kwonlyargs=list(args.kwonlyargs),
                kw_defaults=list(args.kw_defaults),
                kwarg=args.kwarg,
                defaults=list(args.defaults),
            )
    positional = list(args.posonlyargs) + list(args.args)
    names = [a.arg for a in positional] + [a.arg for a in args.kwonlyargs]
    required = [a.arg for a in positional[: len(positional) - len(args.defaults)]]
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is None:
            required.append(arg.arg)
    return names, required, args.kwarg is not None


@register_flow_rule
class RegistryContractRule(FlowRule):
    rule_id = "REP204"
    description = (
        "scheduler registry drift: option schema vs factory signature vs "
        "spec-string literals (unknown keys, uncallable factories, "
        "reserved-key collisions, duplicate names)"
    )

    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        registrations = self._find_registrations(project)
        violations: List[LintViolation] = []
        violations.extend(self._check_registrations(project, registrations))
        families: Dict[str, _SpecFamily] = {
            name: _SpecFamily("scheduler", keys, _WRAPPER_KEYS)
            for name, keys in self._merged_schemas(registrations).items()
        }
        for kind, family in self._catalog_families(project).items():
            families.setdefault(kind, family)
        if families:
            violations.extend(self._check_spec_literals(project, families))
        return violations

    # ------------------------------------------------------------------ #
    # registration discovery
    # ------------------------------------------------------------------ #

    def _find_registrations(self, project: ProjectGraph) -> List[_Registration]:
        found: List[_Registration] = []
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = project.resolve_call(module, node.func)
                if target is None or not target.endswith(".register"):
                    continue
                owner = target.rsplit(".", 1)[0]
                if not owner.endswith("registry"):
                    continue
                name = _constant_str(node.args[0] if node.args else None)
                if name is None:
                    continue
                reg = _Registration(name=name, module=module, call=node)
                reg.factory = node.args[1] if len(node.args) > 1 else None
                options = node.args[2] if len(node.args) > 2 else None
                for kw in node.keywords:
                    if kw.arg == "factory":
                        reg.factory = kw.value
                    elif kw.arg == "options":
                        options = kw.value
                if options is None or (
                    isinstance(options, ast.Constant) and options.value is None
                ):
                    reg.schema_keys = set()
                elif isinstance(options, ast.Dict):
                    keys: Set[str] = set()
                    literal = True
                    for key_node in options.keys:
                        key = _constant_str(key_node)
                        if key is None:
                            literal = False
                            break
                        keys.add(key)
                        reg.key_nodes[key] = key_node  # type: ignore[assignment]
                    reg.schema_keys = keys if literal else None
                else:
                    reg.schema_keys = None  # computed dict: cannot check
                found.append(reg)
        found.sort(key=lambda r: (r.module.path, r.call.lineno))
        return found

    def _merged_schemas(
        self, registrations: List[_Registration]
    ) -> Dict[str, Optional[Set[str]]]:
        schemas: Dict[str, Optional[Set[str]]] = {}
        for reg in registrations:
            schemas.setdefault(reg.name, reg.schema_keys)
        return schemas

    # ------------------------------------------------------------------ #
    # registration-site checks
    # ------------------------------------------------------------------ #

    def _check_registrations(
        self, project: ProjectGraph, registrations: List[_Registration]
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        seen: Dict[str, _Registration] = {}
        for reg in registrations:
            first = seen.get(reg.name)
            if first is not None:
                violations.append(
                    self.violation(
                        reg.call,
                        reg.module.path,
                        f"scheduler {reg.name!r} registered twice (first at "
                        f"{first.module.path}:{first.call.lineno})",
                    )
                )
            else:
                seen[reg.name] = reg
            if reg.schema_keys is None:
                continue  # non-literal schema: nothing to cross-check
            reserved = sorted(reg.schema_keys & _WRAPPER_KEYS)
            for key in reserved:
                violations.append(
                    self.violation(
                        reg.key_nodes.get(key, reg.call),
                        reg.module.path,
                        f"scheduler {reg.name!r} declares option {key!r}, "
                        "which is a reserved wrapper key",
                    )
                )
            if reg.factory is None:
                continue
            sig = _factory_params(project, reg.module, reg.factory)
            if sig is None:
                continue  # factory not statically resolvable
            params, required, has_kwargs = sig
            accepted = set(params[1:])  # params[0] is the env config
            if not has_kwargs:
                for key in sorted(reg.schema_keys - accepted):
                    violations.append(
                        self.violation(
                            reg.key_nodes.get(key, reg.call),
                            reg.module.path,
                            f"scheduler {reg.name!r} declares option "
                            f"{key!r} but its factory accepts no such "
                            f"parameter (has: {sorted(accepted) or 'none'})",
                        )
                    )
            config_slot = params[0] if params else None
            for param in (p for p in required if p != config_slot):
                if param not in reg.schema_keys:
                    violations.append(
                        self.violation(
                            reg.call,
                            reg.module.path,
                            f"factory for scheduler {reg.name!r} requires "
                            f"parameter {param!r} with no default and no "
                            "matching option key; make_scheduler("
                            f"{reg.name!r}) would crash",
                        )
                    )
        return violations

    # ------------------------------------------------------------------ #
    # spec-literal checks
    # ------------------------------------------------------------------ #

    def _catalog_families(
        self, project: ProjectGraph
    ) -> Dict[str, _SpecFamily]:
        """Closed-kind schemas published as dict literals by the shared
        grammar's catalog (``repro.specs.catalog``)."""
        families: Dict[str, _SpecFamily] = {}
        for module in project.modules.values():
            for node in module.tree.body:
                if isinstance(node, ast.Assign):
                    targets = [
                        t for t in node.targets if isinstance(t, ast.Name)
                    ]
                    value: Optional[ast.expr] = node.value
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                for target in targets:
                    noun = _CATALOG_TABLES.get(target.id)
                    if noun is None or not isinstance(value, ast.Dict):
                        continue
                    for kind_node, schema_node in zip(value.keys, value.values):
                        kind = _constant_str(kind_node)
                        if kind is None:
                            continue
                        keys: Optional[Set[str]] = None
                        if isinstance(schema_node, ast.Dict):
                            literal = [
                                _constant_str(k) for k in schema_node.keys
                            ]
                            if all(k is not None for k in literal):
                                keys = {k for k in literal if k is not None}
                        families.setdefault(kind, _SpecFamily(noun, keys))
        return families

    def _check_spec_literals(
        self, project: ProjectGraph, families: Dict[str, _SpecFamily]
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.Constant, ast.JoinedStr)):
                    continue
                text = _spec_text(node)
                if text is None or ":" not in text:
                    continue
                match = _SPEC_RE.match(text)
                if match is None:
                    continue
                name = match.group("name")
                if _HOLE in name:
                    continue  # dynamic name: out of scope
                family = families.get(name)
                if family is None or family.keys is None:
                    continue  # unregistered name or non-literal schema
                known = family.keys | family.extra
                for entry in match.group("opts").split(","):
                    key = entry.partition("=")[0]
                    if _HOLE in key or key in known:
                        continue
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"spec string {text.replace(_HOLE, '{…}')!r} "
                            f"uses option {key!r}, unknown to {family.noun} "
                            f"{name!r} (known: {sorted(known)})",
                        )
                    )
        return violations
