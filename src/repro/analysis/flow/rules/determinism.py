"""REP201 — determinism taint: every RNG stream must be seed-disciplined.

The per-module REP101 rule catches a literal ``np.random.default_rng()``
in the file it appears in; it cannot see the same unseeded generator
*returned through a helper* or stashed into long-lived state.  This rule
runs whole-program taint:

* **sources** — RNG constructors.  Seedless forms
  (``np.random.default_rng()``, ``random.Random()``,
  ``repro.utils.rng.as_generator()`` / ``as_generator(None)``) carry the
  ``unseeded`` label on top of ``rng``;
* **summaries** — a project function whose return value carries RNG
  labels transfers them to its call sites, to any depth, so an unseeded
  generator two calls deep is flagged where it enters the program;
* **sinks** — (a) any construction or helper call producing an
  ``unseeded`` stream, and (b) RNG values escaping into module-level or
  instance state: module globals are cross-run/cross-process shared
  streams, and ``self.x = <unseeded rng>`` pins an unreproducible stream
  into an object that outlives the call.

Seed-disciplined idioms stay silent: ``as_generator(seed)``,
``default_rng(seed)``, ``SeedSequence``-derived spawns, and storing a
*seeded* generator on ``self`` (every scheduler in this repo does that).
The plumbing module :mod:`repro.utils.rng` is exempt, mirroring REP101.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...linter import LintViolation
from ..cfg import build_cfg
from ..engine import FlowRule, register_flow_rule
from ..modgraph import FunctionInfo, ModuleInfo, ProjectGraph
from ..taint import EMPTY, Labels, TaintAnalysis, iter_statement_states

__all__ = ["DeterminismTaintRule"]

RNG = "rng"
UNSEEDED = "rng-unseeded"

#: constructors that yield an RNG; value is True when a seed argument is
#: *required* for the construction to count as seeded.
_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "numpy.random.SeedSequence",
    "random.Random",
}

#: repro.utils.rng helpers: suffix -> labels semantics handled in code.
_RNG_HELPERS = ("utils.rng.as_generator", "utils.rng.spawn")


def _is_seedless(call: ast.Call) -> bool:
    """True when the call passes no seed at all (or an explicit ``None``)."""
    if not call.args and not call.keywords:
        return True
    if call.args and not call.keywords:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return False


@register_flow_rule
class DeterminismTaintRule(FlowRule):
    rule_id = "REP201"
    description = (
        "unseeded RNG stream (possibly via helpers), or an RNG escaping "
        "into module/class state; derive streams from repro.utils.rng"
    )

    #: module-name suffixes exempt from this rule (the RNG plumbing).
    exempt_module_suffixes = ("utils.rng",)

    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        summaries = self._return_summaries(project)
        violations: List[LintViolation] = []
        for module in project.modules.values():
            if self._exempt(module):
                continue
            violations.extend(self._check_module(project, module, summaries))
        return violations

    def _exempt(self, module: ModuleInfo) -> bool:
        return any(
            module.name == suffix or module.name.endswith("." + suffix)
            for suffix in self.exempt_module_suffixes
        )

    # ------------------------------------------------------------------ #
    # call labeling + summaries
    # ------------------------------------------------------------------ #

    def _call_labels_fn(
        self,
        project: ProjectGraph,
        module: ModuleInfo,
        summaries: Dict[str, Labels],
        self_class: Optional[str] = None,
    ):
        def call_labels(call: ast.Call, args: Tuple[Labels, ...], state) -> Labels:
            target = project.resolve_call(module, call.func, self_class=self_class)
            if target is None:
                return EMPTY
            if target in _CONSTRUCTORS:
                labels = frozenset({RNG})
                if _is_seedless(call):
                    labels |= {UNSEEDED}
                return labels
            if target.endswith(_RNG_HELPERS[0]):  # as_generator
                labels = frozenset({RNG})
                if _is_seedless(call):
                    labels |= {UNSEEDED}
                # as_generator(rng) forwards its argument's labels too.
                for arg in args:
                    labels |= arg
                return labels
            if target.endswith(_RNG_HELPERS[1]):  # spawn
                labels = frozenset({RNG})
                for arg in args:
                    labels |= arg & {UNSEEDED}
                return labels
            return summaries.get(target, EMPTY)

        return call_labels

    def _return_summaries(self, project: ProjectGraph) -> Dict[str, Labels]:
        """Fixed point of "labels this function's return value carries"."""
        summaries: Dict[str, Labels] = {}
        for _ in range(25):
            changed = False
            for qualname, fn in project.functions.items():
                new = self._returned_labels(project, fn, summaries)
                if summaries.get(qualname, EMPTY) != new:
                    summaries[qualname] = new
                    changed = True
            if not changed:
                break
        return summaries

    def _returned_labels(
        self,
        project: ProjectGraph,
        fn: FunctionInfo,
        summaries: Dict[str, Labels],
    ) -> Labels:
        module = project.modules[fn.module]
        if self._exempt(module):
            # Helpers in the plumbing module still need *summaries* (their
            # call sites elsewhere matter) — handled by _RNG_HELPERS; the
            # general summary for exempt modules stays empty.
            return EMPTY
        analysis = TaintAnalysis(
            call_labels=self._call_labels_fn(
                project, module, summaries, self._class_qualname(fn)
            )
        )
        out: Labels = EMPTY
        for stmt, state in iter_statement_states(build_cfg(fn.node), analysis):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                out |= analysis.labels(stmt.value, state)
        return out

    @staticmethod
    def _class_qualname(fn: FunctionInfo) -> Optional[str]:
        if fn.class_name is None:
            return None
        return f"{fn.module}.{fn.class_name}"

    # ------------------------------------------------------------------ #
    # per-module checks
    # ------------------------------------------------------------------ #

    def _check_module(
        self,
        project: ProjectGraph,
        module: ModuleInfo,
        summaries: Dict[str, Labels],
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        # (a) construction sites + unseeded-returning helper calls, anywhere.
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = self._call_target(project, module, node)
            if target is None:
                continue
            if target in _CONSTRUCTORS or target.endswith(_RNG_HELPERS[0]):
                if _is_seedless(node):
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"unseeded RNG constructed via {target.rsplit('.', 1)[-1]}(); "
                            "derive the stream from a seed or repro.utils.rng",
                        )
                    )
            elif UNSEEDED in summaries.get(target, EMPTY):
                violations.append(
                    self.violation(
                        node,
                        module.path,
                        f"call to {target}() returns an unseeded RNG "
                        "(constructed without a seed inside the callee)",
                    )
                )
        # (b) module-level escape: any RNG bound to module state.
        analysis = TaintAnalysis(
            call_labels=self._call_labels_fn(project, module, summaries)
        )
        for stmt, state in iter_statement_states(
            build_cfg(module.tree.body), analysis
        ):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and RNG in analysis.labels(value, state):
                    violations.append(
                        self.violation(
                            stmt,
                            module.path,
                            "RNG stored in module-level state: a shared "
                            "stream breaks per-component seed discipline; "
                            "pass generators explicitly",
                        )
                    )
        # (c) instance escape: self.<attr> = <unseeded rng> inside methods.
        for fn in module.functions.values():
            violations.extend(
                self._check_instance_escape(project, module, fn, summaries)
            )
        for cls in module.classes.values():
            for method in cls.methods.values():
                violations.extend(
                    self._check_instance_escape(project, module, method, summaries)
                )
        return violations

    def _call_target(
        self, project: ProjectGraph, module: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        # Best-effort enclosing-class resolution is unnecessary here: the
        # constructors and helpers this rule looks for are module-rooted.
        return project.resolve_call(module, call.func)

    def _check_instance_escape(
        self,
        project: ProjectGraph,
        module: ModuleInfo,
        fn: FunctionInfo,
        summaries: Dict[str, Labels],
    ) -> Iterable[LintViolation]:
        analysis = TaintAnalysis(
            call_labels=self._call_labels_fn(
                project, module, summaries, self._class_qualname(fn)
            )
        )
        violations: List[LintViolation] = []
        for stmt, state in iter_statement_states(build_cfg(fn.node), analysis):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and UNSEEDED in analysis.labels(value, state)
                ):
                    violations.append(
                        self.violation(
                            stmt,
                            module.path,
                            f"unseeded RNG escapes into instance state "
                            f"self.{target.attr}; seed it explicitly "
                            "(repro.utils.rng.as_generator(seed))",
                        )
                    )
        return violations
