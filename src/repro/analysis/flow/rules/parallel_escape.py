"""REP205 — shared-state escape from process-parallel entry points.

Root-parallel MCTS fans work out with ``multiprocessing.Pool.map``:
each worker runs in a *forked/spawned process*, so any write it makes
to module-level state is silently thrown away when the worker exits —
on the parent it looks like a cache that never fills, a counter stuck
at zero, or (worse) results that differ between ``workers=1`` and
``workers=8``.  Nothing crashes; the numbers are just wrong.

This rule finds the worker entry points statically — project functions
passed to ``map``/``imap``/``imap_unordered``/``starmap``/``apply``/
``apply_async`` on a ``multiprocessing.Pool`` (or ``submit`` on a
``ProcessPoolExecutor``) — walks every project function reachable from
them through the call graph, and flags writes to module-level state
inside that worker closure:

* ``global NAME`` rebinding;
* item/attribute writes on a module-level name
  (``_CACHE[key] = ...``);
* in-place mutator calls on a module-level name
  (``_RESULTS.append(...)``) — unless the name is shadowed by a local
  binding, in which case it is the worker's own object.

Thread pools are exempt on purpose: threads share memory, so the same
write is *visible* (merely racy, which is REP-future territory).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ...linter import LintViolation
from ..engine import FlowRule, register_flow_rule
from ..modgraph import FunctionInfo, ModuleInfo, ProjectGraph

__all__ = ["ParallelEscapeRule"]

#: dotted constructors whose instances dispatch to *processes*.
_POOL_TYPES = frozenset(
    {
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
        "multiprocessing.get_context",  # ctx.Pool() chains resolve here
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)

#: pool methods whose first argument is the worker callable.
_DISPATCH_METHODS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async", "submit"}
)

#: method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)


def _pool_locals(
    project: ProjectGraph, module: ModuleInfo, fn: FunctionInfo
) -> Set[str]:
    """Local names bound to a process-pool construction in ``fn``.

    Covers ``pool = multiprocessing.Pool(n)`` and
    ``with multiprocessing.Pool(n) as pool:`` (the repo's idiom).
    """
    names: Set[str] = set()

    def _is_pool_call(expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        target = project.resolve_call(module, expr.func)
        return target is not None and (
            target in _POOL_TYPES
            or any(target.startswith(t + ".") for t in ("multiprocessing",))
            and target.endswith(".Pool")
        )

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and _is_pool_call(node.value):
            names.update(
                t.id for t in node.targets if isinstance(t, ast.Name)
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_pool_call(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    names.add(item.optional_vars.id)
    return names


def _local_bindings(fn: FunctionInfo) -> Set[str]:
    """Every name bound locally in ``fn`` (params + stores)."""
    args = fn.node.args
    bound = {
        a.arg
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
    }
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound


@register_flow_rule
class ParallelEscapeRule(FlowRule):
    rule_id = "REP205"
    description = (
        "write to module-level state reachable from a process-pool worker; "
        "the write dies with the worker process"
    )

    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        entries = self._entry_points(project)
        violations: List[LintViolation] = []
        reported: Set[Tuple[str, int, str]] = set()
        for entry in sorted(entries):
            for fn in self._reachable(project, entry):
                for violation in self._check_worker_fn(project, fn, entry):
                    key = (violation.path, violation.line, violation.message)
                    if key in reported:
                        continue
                    reported.add(key)
                    violations.append(violation)
        return violations

    # ------------------------------------------------------------------ #
    # entry-point discovery + reachability
    # ------------------------------------------------------------------ #

    def _entry_points(self, project: ProjectGraph) -> Set[str]:
        entries: Set[str] = set()
        for fn in project.functions.values():
            module = project.modules[fn.module]
            pools = _pool_locals(project, module, fn)
            if not pools:
                continue
            self_class = (
                f"{fn.module}.{fn.class_name}" if fn.class_name else None
            )
            local_types = project.infer_local_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DISPATCH_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in pools
                    and node.args
                ):
                    continue
                worker = project.resolve_call(
                    module, node.args[0], local_types, self_class
                )
                if worker is not None and project.function(worker) is not None:
                    entries.add(project.function(worker).qualname)
        return entries

    def _reachable(
        self, project: ProjectGraph, entry: str
    ) -> Iterable[FunctionInfo]:
        seen: Set[str] = set()
        queue: List[str] = [entry]
        while queue:
            qualname = queue.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            fn = project.functions.get(qualname)
            if fn is None:
                continue
            yield fn
            module = project.modules[fn.module]
            self_class = (
                f"{fn.module}.{fn.class_name}" if fn.class_name else None
            )
            local_types = project.infer_local_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = project.resolve_call(
                    module, node.func, local_types, self_class
                )
                if target is None:
                    continue
                callee = project.function(target)
                if callee is not None and callee.qualname not in seen:
                    queue.append(callee.qualname)

    # ------------------------------------------------------------------ #
    # per-worker-function checks
    # ------------------------------------------------------------------ #

    def _check_worker_fn(
        self, project: ProjectGraph, fn: FunctionInfo, entry: str
    ) -> Iterable[LintViolation]:
        module = project.modules[fn.module]
        module_state = set(module.module_assigns)
        locals_ = _local_bindings(fn)
        globals_declared: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        shadowed = locals_ - globals_declared
        violations: List[LintViolation] = []

        def _shared(name: str) -> bool:
            return name in module_state and name not in shadowed

        via = (
            f"in process-pool worker {fn.qualname} (entry point {entry})"
            if fn.qualname != entry
            else f"in process-pool worker {fn.qualname}"
        )
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Store)
                and node.id in globals_declared
                and node.id in module_state
            ):
                violations.append(
                    self.violation(
                        node,
                        module.path,
                        f"global {node.id!r} rebound {via}; the write is "
                        "lost when the worker process exits",
                    )
                )
            elif isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                base = node.value
                if isinstance(base, ast.Name) and _shared(base.id):
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"write to module-level {base.id!r} {via}; "
                            "worker processes do not share memory — return "
                            "results instead",
                        )
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                    and isinstance(func.value, ast.Name)
                    and _shared(func.value.id)
                ):
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"in-place {func.attr}() on module-level "
                            f"{func.value.id!r} {via}; worker processes do "
                            "not share memory — return results instead",
                        )
                    )
        return violations
