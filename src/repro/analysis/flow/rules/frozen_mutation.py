"""REP202 — mutation of frozen planning state, traced through helpers.

:class:`~repro.schedulers.base.ClusterSnapshot` and
:class:`~repro.schedulers.base.ScheduleRequest` are frozen dataclasses
by design: a replan must be able to hand the same request to several
schedulers (fallback stacks, verification wrappers) and trust that none
of them edited the snapshot under the others.  ``dataclasses.FrozenInstanceError``
only guards *attribute* assignment at runtime — ``request.frozen[tid] = ...``
mutates the mapping inside the frozen shell without a peep, and only on
the execution paths tests happen to cover.

This rule finds such writes statically.  A parameter is *frozen-marked*
when its annotation names ``ClusterSnapshot``/``ScheduleRequest`` or any
project ``@dataclass(frozen=True)``, or when it is named ``request`` /
``snapshot``.  Taint labels on the marked parameters propagate through
locals, attribute chains and subscripts, so aliased mutation
(``placements = request.frozen; placements[t] = span``) is caught; and
per-function *mutation summaries* propagate through project-local calls,
so passing a snapshot into a helper that mutates its own parameter is
flagged at the call site, to any depth.

Taking a copy first (``dict(request.frozen)``) launders the label, as it
should: copies are yours to edit.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ...linter import LintViolation
from ..cfg import build_cfg
from ..engine import FlowRule, register_flow_rule
from ..modgraph import FunctionInfo, ModuleInfo, ProjectGraph, dotted_name
from ..taint import EMPTY, Labels, TaintAnalysis, iter_statement_states

__all__ = ["FrozenMutationRule"]

#: method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)

#: always-frozen marker type names (beyond detected frozen dataclasses).
_MARKER_TYPES = frozenset({"ClusterSnapshot", "ScheduleRequest"})

#: parameter names treated as frozen even without an annotation.
_MARKER_NAMES = frozenset({"request", "snapshot"})


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Every identifier appearing in an annotation (handles Optional[X],
    quoted forward references, unions)."""
    if annotation is None:
        return set()
    names: Set[str] = set()
    nodes: List[ast.AST] = [annotation]
    while nodes:
        node = nodes.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                nodes.append(ast.parse(node.value, mode="eval").body)
            except SyntaxError:
                pass
        else:
            nodes.extend(ast.iter_child_nodes(node))
    return names


def _param_label(index: int) -> str:
    return f"param:{index}"


def _fresh_locals(fn: FunctionInfo) -> FrozenSet[str]:
    """Names only ever bound to freshly-built containers.

    A comprehension or collection literal *derives from* tainted data but
    is a new object; mutating it is not mutating the frozen source
    (``dims = {t.num_resources for t in tasks}; dims.pop()`` is fine).
    A name qualifies only when every binding is such a construction —
    params, loop targets and aliasing assignments all disqualify it.
    """
    fresh = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
             ast.List, ast.Set, ast.Dict, ast.Tuple)
    verdict: Dict[str, bool] = {}

    def note(name: str, is_fresh: bool) -> None:
        verdict[name] = verdict.get(name, True) and is_fresh

    args = fn.node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        note(arg.arg, False)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            is_fresh = isinstance(node.value, fresh)
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        note(name_node.id, is_fresh and target is name_node)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            note(node.target.id, isinstance(node.value, fresh))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    note(name_node.id, False)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            note(name_node.id, False)
        elif isinstance(node, (ast.AugAssign, ast.NamedExpr)) and isinstance(
            getattr(node, "target", None), ast.Name
        ):
            note(node.target.id, False)
    return frozenset(name for name, ok in verdict.items() if ok)


@register_flow_rule
class FrozenMutationRule(FlowRule):
    rule_id = "REP202"
    description = (
        "attribute/item write on frozen planning state (ClusterSnapshot/"
        "ScheduleRequest/frozen dataclass), directly or through helpers"
    )

    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        frozen_types = _MARKER_TYPES | project.frozen_class_names()
        summaries = self._mutation_summaries(project)
        violations: List[LintViolation] = []
        for fn in project.functions.values():
            marked = self._frozen_params(fn, frozen_types)
            if not marked:
                continue
            violations.extend(
                self._check_function(project, fn, marked, summaries)
            )
        return violations

    # ------------------------------------------------------------------ #
    # parameter marking
    # ------------------------------------------------------------------ #

    def _frozen_params(
        self, fn: FunctionInfo, frozen_types: FrozenSet[str]
    ) -> Dict[int, Tuple[str, str]]:
        """``param index -> (name, why)`` for frozen-marked parameters."""
        args = fn.node.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        marked: Dict[int, Tuple[str, str]] = {}
        for index, arg in enumerate(params):
            if fn.class_name is not None and index == 0:
                continue  # self/cls
            hits = _annotation_names(arg.annotation) & frozen_types
            if hits:
                marked[index] = (arg.arg, f"annotated {sorted(hits)[0]}")
            elif arg.arg in _MARKER_NAMES:
                marked[index] = (arg.arg, f"named {arg.arg!r}")
        return marked

    # ------------------------------------------------------------------ #
    # interprocedural mutation summaries
    # ------------------------------------------------------------------ #

    def _mutation_summaries(
        self, project: ProjectGraph
    ) -> Dict[str, FrozenSet[int]]:
        """Fixed point of "which parameter positions does fn mutate"."""
        summaries: Dict[str, FrozenSet[int]] = {}
        for _ in range(25):
            changed = False
            for qualname, fn in project.functions.items():
                new = self._mutated_positions(project, fn, summaries)
                if summaries.get(qualname, frozenset()) != new:
                    summaries[qualname] = new
                    changed = True
            if not changed:
                break
        return summaries

    def _param_analysis(self, fn: FunctionInfo) -> TaintAnalysis:
        args = fn.node.args
        params = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        labels = {
            arg.arg: frozenset({_param_label(i)}) for i, arg in enumerate(params)
        }
        return TaintAnalysis(param_labels=labels)

    def _mutated_positions(
        self,
        project: ProjectGraph,
        fn: FunctionInfo,
        summaries: Dict[str, FrozenSet[int]],
    ) -> FrozenSet[int]:
        module = project.modules[fn.module]
        analysis = self._param_analysis(fn)
        local_types = project.infer_local_types(fn)
        self_class = (
            f"{fn.module}.{fn.class_name}" if fn.class_name is not None else None
        )
        fresh = _fresh_locals(fn)
        mutated: Set[int] = set()
        for stmt, state in iter_statement_states(build_cfg(fn.node), analysis):
            for labels in self._mutation_label_sets(
                project, module, stmt, state, analysis, summaries,
                local_types, self_class, fresh,
            ):
                mutated.update(self._positions(labels))
        return frozenset(mutated)

    @staticmethod
    def _positions(labels: Labels) -> Set[int]:
        out: Set[int] = set()
        for label in labels:
            if label.startswith("param:"):
                out.add(int(label.split(":", 1)[1]))
        return out

    # ------------------------------------------------------------------ #
    # mutation detection (shared by summary computation and reporting)
    # ------------------------------------------------------------------ #

    def _mutation_label_sets(
        self,
        project: ProjectGraph,
        module: ModuleInfo,
        stmt: ast.stmt,
        state,
        analysis: TaintAnalysis,
        summaries: Dict[str, FrozenSet[int]],
        local_types: Dict[str, str],
        self_class: Optional[str],
        fresh: FrozenSet[str],
    ) -> Iterable[Labels]:
        """Label sets of every value ``stmt`` mutates in place."""

        def receiver_labels(expr: ast.expr) -> Labels:
            # A freshly-built local container is the function's own copy.
            if isinstance(expr, ast.Name) and expr.id in fresh:
                return EMPTY
            return analysis.labels(expr, state)

        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    yield receiver_labels(target.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    yield receiver_labels(target.value)
        # Mutating method calls and helper calls, anywhere in the statement.
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and not (
                    isinstance(func.value, ast.Name)
                    and func.value.id in local_types
                )
            ):
                yield receiver_labels(func.value)
            target = project.resolve_call(module, func, local_types, self_class)
            if target is None:
                continue
            callee = project.function(target)
            if callee is None:
                continue
            callee_mutates = summaries.get(callee.qualname, frozenset())
            if not callee_mutates:
                continue
            for labels in self._forwarded_labels(
                node, callee, callee_mutates, state, analysis, fresh
            ):
                yield labels

    def _forwarded_labels(
        self,
        call: ast.Call,
        callee: FunctionInfo,
        mutated_positions: FrozenSet[int],
        state,
        analysis: TaintAnalysis,
        fresh: FrozenSet[str],
    ) -> Iterable[Labels]:
        """Labels of arguments that land in mutated callee positions."""

        def arg_labels(expr: ast.expr) -> Labels:
            if isinstance(expr, ast.Name) and expr.id in fresh:
                return EMPTY
            return analysis.labels(expr, state)

        offset = 1 if callee.class_name is not None else 0
        for arg_index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            if arg_index + offset in mutated_positions:
                yield arg_labels(arg)
        param_names = callee.params
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            if keyword.arg in param_names:
                position = param_names.index(keyword.arg)
                if position in mutated_positions:
                    yield arg_labels(keyword.value)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def _check_function(
        self,
        project: ProjectGraph,
        fn: FunctionInfo,
        marked: Dict[int, Tuple[str, str]],
        summaries: Dict[str, FrozenSet[int]],
    ) -> Iterable[LintViolation]:
        module = project.modules[fn.module]
        analysis = self._param_analysis(fn)
        local_types = project.infer_local_types(fn)
        self_class = (
            f"{fn.module}.{fn.class_name}" if fn.class_name is not None else None
        )
        fresh = _fresh_locals(fn)
        marked_labels = {_param_label(i): i for i in marked}
        violations: List[LintViolation] = []
        seen: Set[Tuple[int, int]] = set()
        for stmt, state in iter_statement_states(build_cfg(fn.node), analysis):
            for labels in self._mutation_label_sets(
                project, module, stmt, state, analysis, summaries,
                local_types, self_class, fresh,
            ):
                hit = sorted(
                    marked_labels[label] for label in labels if label in marked_labels
                )
                if not hit:
                    continue
                key = (stmt.lineno, hit[0])
                if key in seen:
                    continue
                seen.add(key)
                name, why = marked[hit[0]]
                violations.append(
                    self.violation(
                        stmt,
                        module.path,
                        f"mutates frozen planning state reachable from "
                        f"parameter {name!r} ({why}) in {fn.qualname}; "
                        "copy before editing (e.g. dict(request.frozen))",
                    )
                )
        return violations
