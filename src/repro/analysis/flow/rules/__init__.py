"""Built-in flow rules (REP201–REP205).

Importing this package registers every built-in whole-program rule with
the engine in :mod:`repro.analysis.flow.engine`.  Each module holds one
contract:

* REP201 — determinism taint (unseeded RNG streams);
* REP202 — frozen-snapshot mutation;
* REP203 — sim-time discipline;
* REP204 — registry-spec contract drift;
* REP205 — parallel-escape detection.
"""

from .determinism import DeterminismTaintRule
from .frozen_mutation import FrozenMutationRule
from .parallel_escape import ParallelEscapeRule
from .registry_contract import RegistryContractRule
from .sim_time import SimTimeRule

__all__ = [
    "DeterminismTaintRule",
    "FrozenMutationRule",
    "SimTimeRule",
    "RegistryContractRule",
    "ParallelEscapeRule",
]
