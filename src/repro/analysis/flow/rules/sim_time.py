"""REP203 — sim-time discipline inside the simulation packages.

The discrete-event kernel's whole guarantee is an *integer* clock:
``repro.sim`` orders events by ``(time, class, seq)`` with exact
equality, and every layer above it (``repro.online``, ``repro.cluster``)
counts slots — as does the open-system layer (``repro.streaming``)
above them.  One wall-clock read or one float leaking into time
arithmetic silently re-introduces the nondeterminism the kernel
extraction removed — bit-identical replays stop replaying.

Inside the simulation packages this rule flags:

* wall-clock reads — ``time.time()``, ``time.monotonic()``,
  ``time.perf_counter()`` and friends, ``datetime.now()`` /
  ``utcnow()`` / ``today()`` — however the module was imported
  (wall-clock *measurement* belongs in :mod:`repro.utils.timing`, which
  schedulers use for planning budgets, outside sim time);
* float contamination of time values — arithmetic combining a
  recognizably time-named operand (``now``, ``clock.now``,
  ``sim_time``, ...) with a float literal, and true division (``/``) of
  time-named operands where floor division keeps the clock integral.

Scope is by module name (``repro.sim``, ``repro.online``,
``repro.cluster``, ``repro.streaming`` — the streaming package hosts an
asyncio daemon, where a stray ``time.time()`` would leak wall time into
request sim-times), which per-module AST rules cannot express reliably;
the project graph gives every file its dotted name.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ...linter import LintViolation
from ..engine import FlowRule, register_flow_rule
from ..modgraph import ModuleInfo, ProjectGraph

__all__ = ["SimTimeRule"]

#: dotted call targets that read a wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: names that denote a simulation-time value when used in arithmetic.
_TIME_NAMES = frozenset({"now", "sim_time", "current_time", "clock"})


def _time_named(expr: ast.expr) -> Optional[str]:
    """The time-ish name an operand refers to, if any."""
    if isinstance(expr, ast.Name) and expr.id in _TIME_NAMES:
        return expr.id
    if isinstance(expr, ast.Attribute) and expr.attr in _TIME_NAMES:
        return expr.attr
    return None


def _is_float_literal(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, float)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(expr.operand)
    return False


@register_flow_rule
class SimTimeRule(FlowRule):
    rule_id = "REP203"
    description = (
        "wall-clock read or float time arithmetic inside repro.sim/"
        "repro.online/repro.cluster/repro.streaming/repro.federation; "
        "sim time is an integer slot count"
    )

    #: package prefixes the discipline applies to.
    scoped_packages = (
        "repro.sim",
        "repro.online",
        "repro.cluster",
        "repro.streaming",
        "repro.federation",
    )

    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for module in project.modules.values():
            if not self._in_scope(module):
                continue
            violations.extend(self._check_module(project, module))
        return violations

    def _in_scope(self, module: ModuleInfo) -> bool:
        return any(
            module.name == package or module.name.startswith(package + ".")
            for package in self.scoped_packages
        )

    def _check_module(
        self, project: ProjectGraph, module: ModuleInfo
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = project.resolve_call(module, node.func)
                if target in _WALL_CLOCK:
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"wall-clock read {target}() inside the "
                            "simulation packages; advance the kernel "
                            "clock instead (wall timing belongs in "
                            "repro.utils.timing)",
                        )
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
            ):
                left_time = _time_named(node.left)
                right_time = _time_named(node.right)
                time_name = left_time or right_time
                if time_name is None:
                    continue
                if isinstance(node.op, ast.Div):
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"true division on sim-time value "
                            f"{time_name!r} produces a float; use // to "
                            "keep the clock integral",
                        )
                    )
                elif _is_float_literal(node.left) or _is_float_literal(
                    node.right
                ):
                    violations.append(
                        self.violation(
                            node,
                            module.path,
                            f"float literal combined with sim-time value "
                            f"{time_name!r}; sim time is an integer slot "
                            "count",
                        )
                    )
        return violations
