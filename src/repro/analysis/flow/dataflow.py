"""Forward dataflow over per-function CFGs.

The classic worklist algorithm, generic over the abstract state: a
:class:`ForwardAnalysis` supplies the initial state, the join, and the
per-statement transfer function; :func:`run_forward` iterates block
transfer to a fixed point and returns the state at every block entry and
exit.

States must be treated as immutable by transfer functions (return a new
state rather than mutating), and the join must be monotone —
label-set union over a finite label universe, as
:mod:`~repro.analysis.flow.taint` uses, terminates trivially.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Dict, Generic, List, Tuple, TypeVar

import ast

from .cfg import CFG

__all__ = ["ForwardAnalysis", "run_forward"]

S = TypeVar("S")


class ForwardAnalysis(abc.ABC, Generic[S]):
    """The three hooks a forward dataflow analysis provides."""

    @abc.abstractmethod
    def initial(self) -> S:
        """State at function entry."""

    @abc.abstractmethod
    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (must be monotone)."""

    @abc.abstractmethod
    def transfer(self, state: S, stmt: ast.stmt) -> S:
        """State after executing ``stmt`` (header only, for compounds)."""


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> Tuple[Dict[int, S], Dict[int, S]]:
    """Iterate ``analysis`` over ``cfg`` to a fixed point.

    Returns ``(state_in, state_out)`` keyed by block index.  Blocks with
    no predecessors (the entry, or unreachable code) start from
    ``analysis.initial()``.
    """
    state_in: Dict[int, S] = {b.index: analysis.initial() for b in cfg.blocks}
    state_out: Dict[int, S] = {}
    # Seed every block so unreachable code is still analyzed once.
    worklist = deque(b.index for b in cfg.blocks)
    queued = set(worklist)
    while worklist:
        index = worklist.popleft()
        queued.discard(index)
        state = state_in[index]
        for stmt in cfg.blocks[index].statements:
            state = analysis.transfer(state, stmt)
        if index in state_out and state_out[index] == state:
            continue
        state_out[index] = state
        for succ in cfg.blocks[index].successors:
            joined = analysis.join(state_in[succ], state)
            if joined != state_in[succ]:
                state_in[succ] = joined
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return state_in, state_out
