"""Flow-rule registry and the whole-program analysis driver.

A :class:`FlowRule` sees the entire :class:`~repro.analysis.flow.modgraph.ProjectGraph`
at once — unlike :class:`repro.analysis.LintRule`, which sees one module
— and yields the same :class:`~repro.analysis.linter.LintViolation`
records, so both rule families share formatting, ``# repro: noqa``
suppressions and the baseline workflow.

:func:`analyze_project` is what ``repro lint --flow`` calls: build the
project graph over the given paths, run every selected flow rule, and
filter suppressed hits.  A rule that crashes is converted to
:class:`~repro.analysis.linter.LintInternalError` so the CLI can exit 2
(analyzer bug) instead of 1 (violations found).
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type, Union

from ...errors import ConfigError
from ..linter import (
    LintInternalError,
    LintViolation,
    collect_suppressions,
    filter_suppressed,
)
from .modgraph import ProjectGraph

__all__ = [
    "FlowRule",
    "register_flow_rule",
    "available_flow_rules",
    "flow_rule_ids",
    "analyze_project",
    "analyze_graph",
]


class FlowRule(abc.ABC):
    """One whole-program contract check.

    Subclasses set ``rule_id`` (stable, ``REP2xx``) and ``description``
    and implement :meth:`check` over the project graph.
    """

    rule_id: str = "REP???"
    description: str = ""

    @abc.abstractmethod
    def check(self, project: ProjectGraph) -> Iterable[LintViolation]:
        """Yield every violation of this rule in the project."""

    def violation(
        self, node, path: Union[str, Path], message: str
    ) -> LintViolation:
        """Convenience constructor anchored at ``node``'s location."""
        return LintViolation(
            rule_id=self.rule_id,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_FLOW_REGISTRY: Dict[str, Type[FlowRule]] = {}


def register_flow_rule(cls: Type[FlowRule]) -> Type[FlowRule]:
    """Class decorator adding ``cls`` to the flow-rule registry."""
    if cls.rule_id in _FLOW_REGISTRY:
        raise ConfigError(f"flow rule {cls.rule_id!r} already registered")
    _FLOW_REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_builtin_rules() -> None:
    from . import rules  # noqa: F401  (importing registers the built-ins)


def available_flow_rules() -> Dict[str, str]:
    """Mapping ``rule_id -> description`` of every registered flow rule."""
    _ensure_builtin_rules()
    return {rid: _FLOW_REGISTRY[rid].description for rid in sorted(_FLOW_REGISTRY)}


def flow_rule_ids() -> List[str]:
    """Sorted ids of the registered flow rules."""
    _ensure_builtin_rules()
    return sorted(_FLOW_REGISTRY)


def _resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[FlowRule]:
    """Instantiate the chosen flow rules.

    Unknown ids in ``select``/``ignore`` are *not* rejected here — the
    linter front end validates them against the union of both rule
    registries, so a per-family resolver only filters.
    """
    _ensure_builtin_rules()
    chosen = set(_FLOW_REGISTRY)
    if select is not None:
        chosen &= set(select)
    if ignore:
        chosen -= set(ignore)
    return [_FLOW_REGISTRY[rid]() for rid in sorted(chosen)]


def analyze_graph(
    project: ProjectGraph,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Run the selected flow rules over an already-built project graph.

    Suppressions (``# repro: noqa[REPxxx]``) are honored per module.

    Raises:
        LintInternalError: when a rule itself crashes (analyzer bug).
    """
    violations: List[LintViolation] = []
    for rule in _resolve_rules(select, ignore):
        try:
            violations.extend(rule.check(project))
        except Exception as exc:  # noqa: BLE001 - converted to exit-code-2 error
            raise LintInternalError(
                f"flow rule {rule.rule_id} crashed: {type(exc).__name__}: {exc}"
            ) from exc
    by_path: Dict[str, List[LintViolation]] = {}
    for violation in violations:
        by_path.setdefault(violation.path, []).append(violation)
    kept: List[LintViolation] = []
    for path, hits in by_path.items():
        module = project.module_for_path(path)
        if module is not None:
            hits = filter_suppressed(hits, collect_suppressions(module.source))
        kept.extend(hits)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return kept


def analyze_project(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Build a project graph over ``paths`` and run the flow rules."""
    return analyze_graph(ProjectGraph.from_paths(paths), select, ignore)
