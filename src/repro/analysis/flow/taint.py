"""Label propagation: the abstract domain the flow rules share.

The state is a mapping from local variable names to *label sets*
(frozensets of strings such as ``{"rng", "rng-unseeded"}``).  Labels
enter at analysis-defined sources (certain calls), flow through
assignments, arithmetic, subscripts and attribute access, and are
checked at analysis-defined sinks.

Two layers:

* :class:`TaintAnalysis` — a :class:`~repro.analysis.flow.dataflow.ForwardAnalysis`
  whose transfer handles the assignment forms this codebase uses; a rule
  customizes it by passing a ``call_labels`` function (the sources and
  interprocedural summaries) and then inspects per-statement states via
  :func:`iter_statement_states`.
* :func:`fixed_point_summaries` — iterate a per-function summary
  computation over the whole project until stable, so facts propagate
  through helpers ("returns an unseeded RNG", "mutates its first
  parameter") to any call depth.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Hashable, Iterator, Mapping, Optional, Tuple, TypeVar

from .cfg import CFG
from .dataflow import ForwardAnalysis, run_forward

__all__ = [
    "Labels",
    "EMPTY",
    "expr_labels",
    "TaintAnalysis",
    "iter_statement_states",
    "fixed_point_summaries",
]

Labels = frozenset
EMPTY: Labels = frozenset()

#: ``call_labels(call, arg_labels, state) -> labels`` — the labels a call's
#: result carries.  ``arg_labels`` covers positional args in order.
CallLabels = Callable[[ast.Call, Tuple[Labels, ...], Mapping[str, Labels]], Labels]

State = Dict[str, Labels]


def expr_labels(
    expr: Optional[ast.expr],
    state: Mapping[str, Labels],
    call_labels: Optional[CallLabels] = None,
) -> Labels:
    """Union of labels an expression's value may carry.

    Field-insensitive: ``x.attr`` and ``x[i]`` carry ``x``'s labels (an
    RNG pulled out of a list of RNGs is still an RNG).  Calls defer to
    ``call_labels``; without one, a call result is unlabeled.
    """
    if expr is None:
        return EMPTY
    if isinstance(expr, ast.Name):
        return state.get(expr.id, EMPTY)
    if isinstance(expr, ast.Call):
        args = tuple(expr_labels(a, state, call_labels) for a in expr.args)
        if call_labels is not None:
            return call_labels(expr, args, state)
        return EMPTY
    if isinstance(expr, ast.Attribute):
        return expr_labels(expr.value, state, call_labels)
    if isinstance(expr, ast.Subscript):
        return expr_labels(expr.value, state, call_labels)
    if isinstance(expr, ast.Starred):
        return expr_labels(expr.value, state, call_labels)
    if isinstance(expr, ast.BinOp):
        return expr_labels(expr.left, state, call_labels) | expr_labels(
            expr.right, state, call_labels
        )
    if isinstance(expr, ast.UnaryOp):
        return expr_labels(expr.operand, state, call_labels)
    if isinstance(expr, ast.BoolOp):
        out: Labels = EMPTY
        for value in expr.values:
            out |= expr_labels(value, state, call_labels)
        return out
    if isinstance(expr, ast.IfExp):
        return expr_labels(expr.body, state, call_labels) | expr_labels(
            expr.orelse, state, call_labels
        )
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        out = EMPTY
        for element in expr.elts:
            out |= expr_labels(element, state, call_labels)
        return out
    if isinstance(expr, ast.Dict):
        out = EMPTY
        for value in expr.values:
            out |= expr_labels(value, state, call_labels)
        return out
    if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
        return expr_labels(expr.elt, state, call_labels)
    if isinstance(expr, ast.DictComp):
        return expr_labels(expr.value, state, call_labels)
    if isinstance(expr, ast.NamedExpr):
        return expr_labels(expr.value, state, call_labels)
    if isinstance(expr, ast.Await):
        return expr_labels(expr.value, state, call_labels)
    return EMPTY


def _bind(state: State, target: ast.expr, labels: Labels) -> State:
    """Bind ``labels`` to every name in an assignment target."""
    if isinstance(target, ast.Name):
        new = dict(state)
        if labels:
            new[target.id] = labels
        else:
            new.pop(target.id, None)
        return new
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            state = _bind(state, element, labels)
        return state
    if isinstance(target, ast.Starred):
        return _bind(state, target.value, labels)
    # Attribute / subscript targets don't bind locals; escape detection
    # is the rules' job (they see the statement + the value's labels).
    return state


class TaintAnalysis(ForwardAnalysis[State]):
    """Forward label propagation through local assignments.

    Args:
        call_labels: labels of a call's result (sources + summaries).
        param_labels: labels the function's parameters start with.
    """

    def __init__(
        self,
        call_labels: Optional[CallLabels] = None,
        param_labels: Optional[Mapping[str, Labels]] = None,
    ) -> None:
        self.call_labels = call_labels
        self.param_labels = dict(param_labels) if param_labels else {}

    def initial(self) -> State:
        return dict(self.param_labels)

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        joined = dict(a)
        for name, labels in b.items():
            joined[name] = joined.get(name, EMPTY) | labels
        return joined

    def labels(self, expr: Optional[ast.expr], state: State) -> Labels:
        return expr_labels(expr, state, self.call_labels)

    def transfer(self, state: State, stmt: ast.stmt) -> State:
        if isinstance(stmt, ast.Assign):
            labels = self.labels(stmt.value, state)
            for target in stmt.targets:
                state = _bind(state, target, labels)
            return state
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return _bind(state, stmt.target, self.labels(stmt.value, state))
        if isinstance(stmt, ast.AugAssign):
            labels = self.labels(stmt.value, state) | self.labels(
                stmt.target, state
            )
            return _bind(state, stmt.target, labels)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return _bind(state, stmt.target, self.labels(stmt.iter, state))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    state = _bind(
                        state,
                        item.optional_vars,
                        self.labels(item.context_expr, state),
                    )
            return state
        return state


def iter_statement_states(
    cfg: CFG, analysis: TaintAnalysis
) -> Iterator[Tuple[ast.stmt, State]]:
    """Yield ``(statement, state-before)`` at the fixed point.

    Runs the worklist once, then replays each block from its converged
    entry state — the standard way to consume a dataflow result.
    """
    state_in, _ = run_forward(cfg, analysis)
    for block in cfg.blocks:
        state = state_in[block.index]
        for stmt in block.statements:
            yield stmt, state
            state = analysis.transfer(state, stmt)


K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


def fixed_point_summaries(
    keys: Mapping[K, object],
    compute: Callable[[K, Dict[K, V]], V],
    max_rounds: int = 50,
) -> Dict[K, V]:
    """Iterate ``compute`` over all keys until summaries stop changing.

    ``compute(key, summaries)`` may read other keys' current summaries
    (missing ones read as absent); with monotone summaries this is the
    usual chaotic iteration.  ``max_rounds`` bounds pathological cycles.
    """
    summaries: Dict[K, V] = {}
    for _ in range(max_rounds):
        changed = False
        for key in keys:
            new = compute(key, summaries)
            if summaries.get(key) != new:
                summaries[key] = new
                changed = True
        if not changed:
            break
    return summaries
