"""Per-function control-flow graphs.

A :class:`CFG` is a set of :class:`BasicBlock`\\ s of statements with
successor edges; :func:`build_cfg` constructs one from a function's AST
body.  The construction covers the control statements this codebase
uses — ``if``/``elif``/``else``, ``while``, ``for``, ``try``/``except``/
``finally``, ``with``, ``return``/``raise``/``break``/``continue`` —
conservatively: every ``except`` handler is assumed reachable from the
``try`` body, and loop bodies loop back to their header, which is what a
forward may-analysis needs for soundness.

Compound statements appear in blocks as themselves (so a transfer
function can inspect e.g. the ``if`` test or the ``for`` target) but
their *bodies* live in successor blocks; transfer functions must only
interpret the "header" part of a compound statement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["BasicBlock", "CFG", "build_cfg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class BasicBlock:
    """A straight-line run of statements with outgoing edges."""

    index: int
    statements: List[ast.stmt] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    def link(self, other: "BasicBlock") -> None:
        if other.index not in self.successors:
            self.successors.append(other.index)


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    blocks: List[BasicBlock]
    entry: int = 0
    exit: int = 1  #: synthetic exit block; return/raise edges land here

    def successors(self, index: int) -> List[int]:
        return self.blocks[index].successors


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        self.entry = self._new()
        self.exit = self._new()
        #: (break target, continue target) stack for enclosing loops.
        self._loops: List[Tuple[BasicBlock, BasicBlock]] = []

    def _new(self) -> BasicBlock:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        last = self._body(body, self.entry)
        if last is not None:
            last.link(self.exit)
        return CFG(blocks=self.blocks, entry=self.entry.index, exit=self.exit.index)

    def _body(
        self, body: Sequence[ast.stmt], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Append ``body`` after ``current``; return the fall-through block.

        ``None`` means control never falls through (return/raise/...).
        """
        for stmt in body:
            if current is None:
                # Dead code after a terminator still gets analyzed in its
                # own unreachable block (rules may want to flag it).
                current = self._new()
            current = self._statement(stmt, current)
        return current

    def _statement(
        self, stmt: ast.stmt, current: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(stmt, ast.If):
            current.statements.append(stmt)
            after = self._new()
            then_block = self._new()
            current.link(then_block)
            then_end = self._body(stmt.body, then_block)
            if then_end is not None:
                then_end.link(after)
            if stmt.orelse:
                else_block = self._new()
                current.link(else_block)
                else_end = self._body(stmt.orelse, else_block)
                if else_end is not None:
                    else_end.link(after)
            else:
                current.link(after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self._new()
            current.link(header)
            header.statements.append(stmt)
            after = self._new()
            body_block = self._new()
            header.link(body_block)
            header.link(after)  # zero iterations / loop condition false
            self._loops.append((after, header))
            body_end = self._body(stmt.body, body_block)
            self._loops.pop()
            if body_end is not None:
                body_end.link(header)
            if stmt.orelse:
                else_end = self._body(stmt.orelse, self._linked(header))
                if else_end is not None:
                    else_end.link(after)
            return after
        if isinstance(stmt, ast.Try):
            current.statements.append(stmt)
            after = self._new()
            try_block = self._new()
            current.link(try_block)
            try_end = self._body(stmt.body, try_block)
            # Handlers may fire anywhere in the try body: edge from entry.
            handler_ends: List[Optional[BasicBlock]] = []
            for handler in stmt.handlers:
                handler_block = self._new()
                try_block.link(handler_block)
                if try_end is not None:
                    try_end.link(handler_block)
                handler_ends.append(self._body(handler.body, handler_block))
            if stmt.orelse and try_end is not None:
                try_end = self._body(stmt.orelse, try_end)
            finals = [try_end] + handler_ends if stmt.handlers else [try_end]
            if stmt.finalbody:
                final_block = self._new()
                for end in finals:
                    if end is not None:
                        end.link(final_block)
                final_end = self._body(stmt.finalbody, final_block)
                if final_end is not None:
                    final_end.link(after)
            else:
                for end in finals:
                    if end is not None:
                        end.link(after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.statements.append(stmt)
            inner = self._new()
            current.link(inner)
            inner_end = self._body(stmt.body, inner)
            if inner_end is None:
                return None
            after = self._new()
            inner_end.link(after)
            return after
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            current.link(self.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if self._loops:
                current.link(self._loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if self._loops:
                current.link(self._loops[-1][1])
            return None
        current.statements.append(stmt)
        return current

    def _linked(self, predecessor: BasicBlock) -> BasicBlock:
        block = self._new()
        predecessor.link(block)
        return block


def build_cfg(fn: Union[FunctionNode, Sequence[ast.stmt]]) -> CFG:
    """Build the CFG of a function node (or a raw statement list)."""
    body = fn.body if isinstance(
        fn, (ast.FunctionDef, ast.AsyncFunctionDef)
    ) else list(fn)
    return _Builder().build(body)
