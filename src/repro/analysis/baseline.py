"""Committed violation baselines: pre-existing debt must not block CI.

A baseline file records known violations as *fingerprints* —
``(rule, path, message)``, deliberately without line numbers so
unrelated edits that shift code do not invalidate it — with a count per
fingerprint.  ``repro lint --baseline`` subtracts baselined hits from a
run's findings; only *new* violations fail the gate, and the gate stays
honest because growing an existing fingerprint's count past its
baseline also fails.

Workflow::

    repro lint --flow --baseline lint-baseline.json src/repro   # gate
    repro lint --flow --baseline lint-baseline.json \\
               --update-baseline src/repro                      # re-record

The file is JSON, sorted and stable, so diffs in review show exactly
which debt was added or paid down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import ConfigError
from .linter import LintViolation

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]

Fingerprint = Tuple[str, str, str]

#: schema version of the baseline file.
_VERSION = 1


def fingerprint(violation: LintViolation) -> Fingerprint:
    """Line-number-free identity of a violation for baseline matching."""
    return (violation.rule_id, _normalize(violation.path), violation.message)


def _normalize(path: str) -> str:
    """Posix-style, ``./``-free path so fingerprints match across OSes."""
    normalized = Path(path).as_posix()
    if normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


def load_baseline(path: Union[str, Path]) -> Counter:
    """Read a baseline file into a fingerprint counter.

    A missing file is an error (commit an empty baseline explicitly —
    ``write_baseline([], path)`` — rather than relying on absence).

    Raises:
        ConfigError: on a missing/unreadable file or malformed payload.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigError(f"cannot read baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise ConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "violations" not in payload:
        raise ConfigError(
            f"baseline {path} is missing the 'violations' list"
        )
    counter: Counter = Counter()
    for entry in payload["violations"]:
        try:
            key = (entry["rule"], _normalize(entry["path"]), entry["message"])
            count = int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise ConfigError(
                f"baseline {path} entry {entry!r} is malformed"
            ) from exc
        counter[key] += count
    return counter


def write_baseline(
    violations: Sequence[LintViolation], path: Union[str, Path]
) -> Path:
    """Record ``violations`` as the new baseline at ``path``."""
    counter: Counter = Counter(fingerprint(v) for v in violations)
    entries: List[Dict[str, object]] = [
        {"rule": rule, "path": vpath, "message": message, "count": count}
        for (rule, vpath, message), count in sorted(counter.items())
    ]
    path = Path(path)
    payload = {
        "version": _VERSION,
        "note": (
            "known pre-existing lint debt; regenerate with "
            "repro lint --flow --update-baseline <file> <paths>"
        ),
        "violations": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def apply_baseline(
    violations: Sequence[LintViolation], baseline: Counter
) -> List[LintViolation]:
    """Subtract baselined fingerprints; return only the *new* violations.

    Matching is per-occurrence: if the baseline records a fingerprint
    twice and a run finds it three times, one violation survives.
    """
    remaining = Counter(baseline)
    fresh: List[LintViolation] = []
    for violation in violations:
        key = fingerprint(violation)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(violation)
    return fresh
