"""REP107 — ad-hoc ``heapq`` event loops outside the simulation kernel.

Deterministic time advancement is the job of :mod:`repro.sim`: its
:class:`~repro.sim.EventQueue` is the one sanctioned heap, totally
ordered by ``(time, priority_class, seq)`` with documented tie-break
classes.  A raw ``heapq`` event loop elsewhere re-invents that ordering
without the stability guarantees — equal-time pops then depend on
payload comparability or insertion luck, which is exactly the class of
bug the kernel extraction removed from the online executor.

Audited hot paths keep their raw heaps deliberately — the kernel's own
queue, :mod:`repro.cluster.state` (the running-task heap MCTS clones
thousands of times per decision), the scheduling environment's rollout
loop, and the DAG topological order — and carry an inline
``# repro: noqa[REP107]`` with a justification at the import site, so
the exemption is visible (and reviewable) where the heap lives instead
of in a path list here.  Everything else must schedule through the
kernel.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["AdHocEventLoopRule"]

#: names that, when imported from ``heapq``, indicate heap manipulation.
_HEAP_FUNCTIONS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace", "merge"}
)


@register_rule
class AdHocEventLoopRule(LintRule):
    rule_id = "REP107"
    description = (
        "raw heapq event loop outside repro.sim; schedule through "
        "repro.sim.EventQueue / SimKernel"
    )

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        message = (
            "ad-hoc heapq event structure; use repro.sim.EventQueue (stable "
            "(time, class, seq) ordering) or a SimKernel-scheduled event"
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(alias.name == "heapq" for alias in node.names):
                    violations.append(self.violation(node, path, message))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq" and any(
                    alias.name in _HEAP_FUNCTIONS for alias in node.names
                ):
                    violations.append(self.violation(node, path, message))
        return violations
