"""REP102 — float equality comparisons on time-like values.

Simulated time in this library is integral (slots); *wall-clock* time,
JCTs and latencies are floats.  Comparing either with ``==`` against a
float is a reproducibility hazard: two runs that differ only in
floating-point rounding will disagree.  The rule flags ``==`` / ``!=``
comparisons where

* either operand is a name/attribute known to be float-valued time
  (``wall_time``, ``elapsed``, ``jct``, ``latency``, ...), or
* a time-like name (``*_time``, ``makespan``, ``duration``, ...) is
  compared against a float literal.

Use integer slots, or ``math.isclose`` for genuine float comparisons.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, List, Optional

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["FloatTimeEqualityRule"]

#: names that are float-typed time quantities anywhere in this repo.
_FLOAT_TIME_RE = re.compile(r"(?:^|_)(wall_time|elapsed|jct|latency|seconds)$|^(wall_time|elapsed|jct|latency)(?:_|$)")

#: broader "this is a time value" pattern, only flagged vs float literals.
_TIME_NAME_RE = re.compile(
    r"(?:^|_)(time|makespan|jct|elapsed|latency|duration|deadline|interarrival)(?:_|$)"
)


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_float_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register_rule
class FloatTimeEqualityRule(LintRule):
    rule_id = "REP102"
    description = (
        "float equality on a time value; use integer slots or math.isclose"
    )

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                hit = self._time_equality_hit(left, right)
                if hit is not None:
                    violations.append(
                        self.violation(
                            node,
                            path,
                            f"float equality on time value {hit!r}; use "
                            "integer slots or math.isclose",
                        )
                    )
        return violations

    @staticmethod
    def _time_equality_hit(left: ast.expr, right: ast.expr) -> Optional[str]:
        for a, b in ((left, right), (right, left)):
            name = _terminal_name(a)
            if name is None:
                continue
            lowered = name.lower()
            if _FLOAT_TIME_RE.search(lowered):
                return name
            if _TIME_NAME_RE.search(lowered) and _is_float_literal(b):
                return name
        return None
