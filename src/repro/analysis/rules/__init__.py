"""Built-in lint rules.

Importing this package registers every built-in rule with the engine in
:mod:`repro.analysis.linter`.  Each module holds one rule; third-party
rules can join the registry the same way::

    from repro.analysis import LintRule, register_rule

    @register_rule
    class MyRule(LintRule):
        rule_id = "X001"
        ...
"""

from .bare_except import BareExceptRule
from .event_loops import AdHocEventLoopRule
from .float_equality import FloatTimeEqualityRule
from .exports import MissingAllRule
from .mutable_defaults import MutableDefaultRule
from .printing import NoPrintRule
from .seeding import UnseededRngRule

__all__ = [
    "UnseededRngRule",
    "FloatTimeEqualityRule",
    "MutableDefaultRule",
    "BareExceptRule",
    "MissingAllRule",
    "NoPrintRule",
    "AdHocEventLoopRule",
]
