"""REP101 — unseeded global random-number-generator calls.

Every stochastic component in this library takes a seed or a
:class:`numpy.random.Generator` and routes it through
:mod:`repro.utils.rng`; calling the *global* ``random`` /
``numpy.random`` state instead silently breaks bit-for-bit
reproducibility of training runs and experiments.  This rule flags:

* any call through the stdlib ``random`` module (``random.shuffle(...)``,
  or names pulled in with ``from random import ...``) — except
  constructing an explicitly seeded ``random.Random(seed)``;
* module-level ``numpy.random`` calls (``np.random.rand(...)``) — except
  ``default_rng`` *with* a seed argument and explicit bit-generator
  construction (``Generator``, ``SeedSequence``, ``PCG64``, ...).

Files named ``rng.py`` are exempt: that is where the plumbing lives.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Set

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["UnseededRngRule"]

_SEEDED_NP_CONSTRUCTORS = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register_rule
class UnseededRngRule(LintRule):
    rule_id = "REP101"
    description = (
        "unseeded random/np.random module-level call; route randomness "
        "through repro.utils.rng"
    )

    #: file basenames allowed to touch the global generators.
    exempt_files = ("rng.py",)

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        if path.name in self.exempt_files:
            return []
        random_aliases: Set[str] = set()  # import random [as r]
        numpy_aliases: Set[str] = set()  # import numpy [as np]
        np_random_aliases: Set[str] = set()  # from numpy import random [as nr]
        from_random_names: Set[str] = set()  # from random import shuffle
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name in ("numpy", "numpy.random"):
                        numpy_aliases.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    from_random_names.update(a.asname or a.name for a in node.names)
                elif node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            np_random_aliases.add(alias.asname or "random")

        violations: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in from_random_names:
                violations.append(
                    self.violation(
                        node, path, f"call to unseeded random.{func.id}()"
                    )
                )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if isinstance(base, ast.Name) and base.id in random_aliases:
                    if func.attr == "Random" and (node.args or node.keywords):
                        continue  # random.Random(seed) is explicitly seeded
                    violations.append(
                        self.violation(
                            node, path, f"call to unseeded random.{func.attr}()"
                        )
                    )
                elif self._is_np_random(base, numpy_aliases, np_random_aliases):
                    if func.attr == "default_rng" and (node.args or node.keywords):
                        continue  # seeded generator construction is the idiom
                    if func.attr in _SEEDED_NP_CONSTRUCTORS:
                        continue
                    violations.append(
                        self.violation(
                            node,
                            path,
                            f"call to global np.random.{func.attr}()",
                        )
                    )
        return violations

    @staticmethod
    def _is_np_random(
        base: ast.expr, numpy_aliases: Set[str], np_random_aliases: Set[str]
    ) -> bool:
        if isinstance(base, ast.Name) and base.id in np_random_aliases:
            return True
        return (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in numpy_aliases
        )
