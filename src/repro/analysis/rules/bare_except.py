"""REP104 — bare ``except:`` clauses.

A bare except swallows ``KeyboardInterrupt`` and ``SystemExit`` and
hides genuine invariant failures (every library error derives from
:class:`repro.errors.ReproError` precisely so callers can be
selective).  Catch ``Exception`` — or better, a specific subclass.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["BareExceptRule"]


@register_rule
class BareExceptRule(LintRule):
    rule_id = "REP104"
    description = "bare except; catch Exception or a repro.errors subclass"

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                violations.append(
                    self.violation(
                        node,
                        path,
                        "bare except hides invariant failures; name the "
                        "exception type",
                    )
                )
        return violations
