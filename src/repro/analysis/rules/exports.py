"""REP105 — public modules must declare ``__all__``.

Every module in this library states its public surface explicitly; a
missing ``__all__`` makes ``from module import *`` and API-diff tooling
unreliable.  The rule flags modules that define public top-level names
(functions, classes, or UPPER/lower assignments without a leading
underscore) but no ``__all__``.  Entry-point shims (``__main__.py``),
``conftest.py``, ``setup.py`` and test modules are exempt.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["MissingAllRule"]

_EXEMPT_FILENAMES = {"__main__.py", "conftest.py", "setup.py"}


def _assigned_names(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Assign):
        return [t.id for t in node.targets if isinstance(t, ast.Name)]
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return [node.target.id]
    return []


@register_rule
class MissingAllRule(LintRule):
    rule_id = "REP105"
    description = "public module without __all__"

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        if path.name in _EXEMPT_FILENAMES or path.name.startswith("test_"):
            return []
        public: List[str] = []
        has_all = False
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_"):
                    public.append(node.name)
            else:
                for name in _assigned_names(node):
                    if name == "__all__":
                        has_all = True
                    elif not name.startswith("_"):
                        public.append(name)
        if public and not has_all:
            return [
                LintViolation(
                    rule_id=self.rule_id,
                    path=str(path),
                    line=1,
                    col=0,
                    message=(
                        f"module defines public names {public[:4]} but no "
                        "__all__"
                    ),
                )
            ]
        return []
