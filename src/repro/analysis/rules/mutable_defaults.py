"""REP103 — mutable default arguments.

A ``def f(x=[])`` default is evaluated once at definition time and
shared across calls; state leaks between invocations and — worse for a
reproduction — between *episodes* of an experiment, corrupting results
in ways that depend on call order.  The rule flags list/dict/set
displays and ``list()`` / ``dict()`` / ``set()`` calls used as defaults
in any function, method or lambda.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["MutableDefaultRule"]

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set"}


@register_rule
class MutableDefaultRule(LintRule):
    rule_id = "REP103"
    description = "mutable default argument; use None and fill in the body"

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        violations: List[LintViolation] = []
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = (
                        node.name
                        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        else "<lambda>"
                    )
                    violations.append(
                        self.violation(
                            default,
                            path,
                            f"mutable default argument in {label}()",
                        )
                    )
        return violations

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CONSTRUCTORS
        )
