"""REP106 — ``print()`` in library code.

Library modules must not write to stdout: experiment reports are
composed by the CLI layer, and progress/diagnostic output belongs to
:mod:`repro.telemetry` (a structured log event when a pipeline is
active, :func:`repro.telemetry.sinks.stderr_line` otherwise).  A stray
``print`` corrupts machine-readable stdout (``repro lint --format
json``, ``repro bench --json``) and bypasses the sink model entirely.

Only the CLI entry points are exempt: ``cli.py`` and ``__main__.py``
are *defined* as the stdout-rendering layer.  Passing ``print`` as a
callback (``progress=print``) is fine — the rule flags calls, not
references, so the decision to print stays with the caller.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List

from ..linter import LintRule, LintViolation, register_rule

__all__ = ["NoPrintRule"]


@register_rule
class NoPrintRule(LintRule):
    rule_id = "REP106"
    description = (
        "print() in library code; emit a telemetry event or use "
        "repro.telemetry.sinks.stderr_line"
    )

    #: file basenames that form the stdout-rendering layer.
    exempt_files = ("cli.py", "__main__.py")

    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        if path.name in self.exempt_files:
            return []
        violations: List[LintViolation] = []
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                violations.append(
                    self.violation(
                        node,
                        path,
                        "library code must not print(); emit a telemetry "
                        "event or write via stderr_line",
                    )
                )
        return violations
