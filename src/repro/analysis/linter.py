"""AST-based lint engine with a pluggable rule registry.

A :class:`LintRule` inspects one parsed module and yields
:class:`LintViolation` records.  Rules register themselves with
:func:`register_rule` (the built-ins live in
:mod:`repro.analysis.rules`); ``repro lint`` runs every registered rule
over the given paths and renders text or JSON output.

The rules are deliberately repo-specific: they encode the
reproducibility discipline this library depends on (all randomness
flows through :mod:`repro.utils.rng`, times are integer slots, ...)
rather than generic style.
"""

from __future__ import annotations

import abc
import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Type, Union

from ..errors import ConfigError, ReproError

__all__ = [
    "LintViolation",
    "LintRule",
    "LintInternalError",
    "register_rule",
    "available_rules",
    "all_rule_ids",
    "lint_source",
    "lint_paths",
    "validate_rule_ids",
    "collect_suppressions",
    "filter_suppressed",
    "format_text",
    "format_json",
]

#: rule id used for files that fail to parse at all.
PARSE_ERROR_RULE = "REP000"


class LintInternalError(ReproError):
    """The analyzer itself failed (rule crash, unreadable input).

    Distinct from "violations were found": ``repro lint`` exits 2 on
    this, 1 on violations, so CI can tell a broken gate from a failing
    one.
    """


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-compatible representation for ``repro lint --format json``."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class LintRule(abc.ABC):
    """One lint check over a parsed module.

    Subclasses set ``rule_id`` (stable, ``REPnnn``) and ``description``,
    and implement :meth:`check`.  Register with :func:`register_rule`.
    """

    rule_id: str = "REP???"
    description: str = ""

    @abc.abstractmethod
    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        """Yield every violation of this rule in ``tree``."""

    def violation(self, node: ast.AST, path: Path, message: str) -> LintViolation:
        """Convenience constructor anchored at ``node``'s location."""
        return LintViolation(
            rule_id=self.rule_id,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding ``cls`` to the global rule registry.

    Raises:
        ConfigError: on a duplicate ``rule_id`` (ids are stable API).
    """
    if cls.rule_id in _REGISTRY:
        raise ConfigError(f"lint rule {cls.rule_id!r} already registered")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_builtin_rules() -> None:
    from . import rules  # noqa: F401  (importing registers the built-ins)


def available_rules() -> Dict[str, str]:
    """Mapping ``rule_id -> description`` of every registered rule.

    Covers both families: the per-module AST rules and the whole-program
    flow rules (``REP2xx``, run by ``repro lint --flow``).
    """
    _ensure_builtin_rules()
    from .flow.engine import available_flow_rules  # local: one-way cycle

    merged = {rid: _REGISTRY[rid].description for rid in _REGISTRY}
    merged.update(available_flow_rules())
    return {rid: merged[rid] for rid in sorted(merged)}


def all_rule_ids() -> FrozenSet[str]:
    """Every valid rule id: AST rules, flow rules, and ``REP000``."""
    return frozenset(available_rules()) | {PARSE_ERROR_RULE}


def validate_rule_ids(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> None:
    """Reject unknown ids in ``select``/``ignore``.

    A typo like ``REP20`` used to silently select or ignore nothing;
    both directions now fail fast with the known ids listed.

    Raises:
        ConfigError: on any id that is neither an AST nor a flow rule.
    """
    known = all_rule_ids()
    for label, ids in (("--select", select), ("--ignore", ignore)):
        unknown = sorted(set(ids or ()) - known)
        if unknown:
            raise ConfigError(
                f"unknown lint rules {unknown} in {label}; "
                f"available: {sorted(known)}"
            )


def _resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintRule]:
    _ensure_builtin_rules()
    validate_rule_ids(select, ignore)
    chosen = set(select) if select else set(_REGISTRY)
    chosen &= set(_REGISTRY)  # flow ids are valid but run elsewhere
    if ignore:
        chosen -= set(ignore)
    return [_REGISTRY[rid]() for rid in sorted(chosen)]


# ---------------------------------------------------------------------- #
# inline suppressions
# ---------------------------------------------------------------------- #

#: matches ``# repro: noqa`` and ``# repro: noqa[REP101,REP202]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s]+)\])?"
)

#: sentinel for a bare ``# repro: noqa`` (suppresses every rule on the line).
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line inline suppressions declared in ``source``.

    Returns ``{line_number: rule_ids}`` (1-based); the special set
    :data:`ALL_RULES` marks a bare ``# repro: noqa``.  The scan is
    line-based, so suppressions survive even in files the AST rules
    cannot fully parse.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressions[lineno] = ALL_RULES
        else:
            suppressions[lineno] = frozenset(
                part.strip() for part in ids.split(",") if part.strip()
            )
    return suppressions


def filter_suppressed(
    violations: Iterable[LintViolation],
    suppressions: Mapping[int, FrozenSet[str]],
) -> List[LintViolation]:
    """Drop violations whose line carries a matching ``# repro: noqa``."""
    kept: List[LintViolation] = []
    for violation in violations:
        ids = suppressions.get(violation.line)
        if ids is not None and (ids == ALL_RULES or violation.rule_id in ids):
            continue
        kept.append(violation)
    return kept


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint one module's source text; returns violations sorted by location.

    A syntactically invalid module yields a single ``REP000`` violation
    rather than raising, so one broken file cannot abort a tree-wide run.
    """
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule_id=PARSE_ERROR_RULE,
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    violations: List[LintViolation] = []
    for rule in _resolve_rules(select, ignore):
        try:
            violations.extend(rule.check(tree, source, path))
        except Exception as exc:  # noqa: BLE001 - surfaced as exit-code-2 error
            raise LintInternalError(
                f"rule {rule.rule_id} crashed on {path}: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
    violations = filter_suppressed(violations, collect_suppressions(source))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Raises:
        ConfigError: if a path does not exist.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigError(f"lint path {str(path)!r} does not exist")
    unique: List[Path] = []
    seen: set[Path] = set()
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    flow: bool = False,
) -> List[LintViolation]:
    """Lint every ``.py`` file under ``paths`` with the chosen rules.

    With ``flow=True`` — or when ``select`` names a flow rule — the
    whole-program flow analysis (:mod:`repro.analysis.flow`, REP2xx)
    runs over the same paths and its violations are merged in.

    Raises:
        ConfigError: on a missing path or unknown rule id.
        LintInternalError: on an unreadable file or a crashing rule.
    """
    validate_rule_ids(select, ignore)
    violations: List[LintViolation] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise LintInternalError(f"cannot read {file}: {exc}") from exc
        violations.extend(lint_source(source, file, select=select, ignore=ignore))
    from .flow.engine import analyze_project, flow_rule_ids  # one-way cycle

    if flow or (select and set(select) & set(flow_rule_ids())):
        violations.extend(analyze_project(paths, select=select, ignore=ignore))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def format_text(violations: Sequence[LintViolation]) -> str:
    """Human-readable report: one line per violation plus a total."""
    if not violations:
        return "repro lint: clean"
    lines = [v.format() for v in violations]
    lines.append(f"repro lint: {len(violations)} violation(s)")
    return "\n".join(lines)


def format_json(violations: Sequence[LintViolation]) -> str:
    """Machine-readable report (a JSON object with a ``violations`` list)."""
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
    )
