"""AST-based lint engine with a pluggable rule registry.

A :class:`LintRule` inspects one parsed module and yields
:class:`LintViolation` records.  Rules register themselves with
:func:`register_rule` (the built-ins live in
:mod:`repro.analysis.rules`); ``repro lint`` runs every registered rule
over the given paths and renders text or JSON output.

The rules are deliberately repo-specific: they encode the
reproducibility discipline this library depends on (all randomness
flows through :mod:`repro.utils.rng`, times are integer slots, ...)
rather than generic style.
"""

from __future__ import annotations

import abc
import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type, Union

from ..errors import ConfigError

__all__ = [
    "LintViolation",
    "LintRule",
    "register_rule",
    "available_rules",
    "lint_source",
    "lint_paths",
    "format_text",
    "format_json",
]

#: rule id used for files that fail to parse at all.
PARSE_ERROR_RULE = "REP000"


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def format(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-compatible representation for ``repro lint --format json``."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }


class LintRule(abc.ABC):
    """One lint check over a parsed module.

    Subclasses set ``rule_id`` (stable, ``REPnnn``) and ``description``,
    and implement :meth:`check`.  Register with :func:`register_rule`.
    """

    rule_id: str = "REP???"
    description: str = ""

    @abc.abstractmethod
    def check(
        self, tree: ast.Module, source: str, path: Path
    ) -> Iterable[LintViolation]:
        """Yield every violation of this rule in ``tree``."""

    def violation(self, node: ast.AST, path: Path, message: str) -> LintViolation:
        """Convenience constructor anchored at ``node``'s location."""
        return LintViolation(
            rule_id=self.rule_id,
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding ``cls`` to the global rule registry.

    Raises:
        ConfigError: on a duplicate ``rule_id`` (ids are stable API).
    """
    if cls.rule_id in _REGISTRY:
        raise ConfigError(f"lint rule {cls.rule_id!r} already registered")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_builtin_rules() -> None:
    from . import rules  # noqa: F401  (importing registers the built-ins)


def available_rules() -> Dict[str, str]:
    """Mapping ``rule_id -> description`` of every registered rule."""
    _ensure_builtin_rules()
    return {rid: _REGISTRY[rid].description for rid in sorted(_REGISTRY)}


def _resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintRule]:
    _ensure_builtin_rules()
    chosen = set(select) if select else set(_REGISTRY)
    unknown = chosen - set(_REGISTRY)
    if unknown:
        raise ConfigError(
            f"unknown lint rules {sorted(unknown)}; available: {sorted(_REGISTRY)}"
        )
    if ignore:
        chosen -= set(ignore)
    return [_REGISTRY[rid]() for rid in sorted(chosen)]


def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint one module's source text; returns violations sorted by location.

    A syntactically invalid module yields a single ``REP000`` violation
    rather than raising, so one broken file cannot abort a tree-wide run.
    """
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(
                rule_id=PARSE_ERROR_RULE,
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    violations: List[LintViolation] = []
    for rule in _resolve_rules(select, ignore):
        violations.extend(rule.check(tree, source, path))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Raises:
        ConfigError: if a path does not exist.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise ConfigError(f"lint path {str(path)!r} does not exist")
    unique: List[Path] = []
    seen: set[Path] = set()
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint every ``.py`` file under ``paths`` with the chosen rules."""
    violations: List[LintViolation] = []
    for file in iter_python_files(paths):
        violations.extend(
            lint_source(
                file.read_text(encoding="utf-8"), file, select=select, ignore=ignore
            )
        )
    return violations


def format_text(violations: Sequence[LintViolation]) -> str:
    """Human-readable report: one line per violation plus a total."""
    if not violations:
        return "repro lint: clean"
    lines = [v.format() for v in violations]
    lines.append(f"repro lint: {len(violations)} violation(s)")
    return "\n".join(lines)


def format_json(violations: Sequence[LintViolation]) -> str:
    """Machine-readable report (a JSON object with a ``violations`` list)."""
    return json.dumps(
        {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
    )
