"""Structured violation records shared by the schedule verifier.

A :class:`Violation` names the invariant that failed (``rule_id``), the
tasks involved, and — where meaningful — the time slot and resource
dimension, so callers can render, filter, or aggregate findings instead
of parsing exception strings.  A :class:`VerificationReport` bundles the
violations found in one pass together with the rules that were checked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import ScheduleError

__all__ = ["Severity", "Violation", "VerificationReport"]


class Severity(enum.Enum):
    """How bad a violation is: errors invalidate the schedule outright."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    Attributes:
        rule_id: stable identifier of the invariant (e.g. ``"capacity"``).
        message: human-readable description of the failure.
        severity: :class:`Severity`; every built-in schedule rule is ERROR.
        task_ids: tasks implicated in the violation (possibly empty).
        time: the slot at which the violation occurs, if localized.
        resource: the resource dimension involved, for capacity rules.
    """

    rule_id: str
    message: str
    severity: Severity = Severity.ERROR
    task_ids: Tuple[int, ...] = ()
    time: Optional[int] = None
    resource: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation (used by ``repro verify --json``)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "task_ids": list(self.task_ids),
            "time": self.time,
            "resource": self.resource,
        }

    def __str__(self) -> str:
        return f"[{self.rule_id}] {self.message}"


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one schedule against one graph.

    Attributes:
        violations: every broken invariant, ordered by rule priority
            (completeness first, capacity last) then by time/task.
        rules_checked: ids of all invariants that were evaluated, whether
            or not they fired.
        num_tasks: size of the graph the schedule was checked against.
    """

    violations: Tuple[Violation, ...] = ()
    rules_checked: Tuple[str, ...] = ()
    num_tasks: int = 0

    @property
    def ok(self) -> bool:
        """True iff no ERROR-severity violation was found."""
        return not any(v.severity is Severity.ERROR for v in self.violations)

    def by_rule(self, rule_id: str) -> Tuple[Violation, ...]:
        """All violations of one invariant."""
        return tuple(v for v in self.violations if v.rule_id == rule_id)

    def summary(self) -> str:
        """One line per violation; ``"ok"`` for a clean report."""
        if not self.violations:
            return f"ok: {self.num_tasks} tasks, {len(self.rules_checked)} invariants checked"
        return "\n".join(str(v) for v in self.violations)

    def raise_if_violations(self) -> None:
        """Raise :class:`repro.errors.ScheduleError` unless the report is clean.

        The exception message leads with the first violation (so existing
        ``match=``-style assertions on the invariant name keep working)
        and appends the total count when there are several.
        """
        if self.ok:
            return
        first = self.violations[0]
        suffix = (
            f" (+{len(self.violations) - 1} more violations)"
            if len(self.violations) > 1
            else ""
        )
        raise ScheduleError(f"{first.message}{suffix}")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation of the whole report."""
        return {
            "ok": self.ok,
            "num_tasks": self.num_tasks,
            "rules_checked": list(self.rules_checked),
            "violations": [v.as_dict() for v in self.violations],
        }
