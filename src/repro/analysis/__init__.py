"""Static analysis for the reproduction: schedule verification + linting.

Two independent halves share this package:

* :mod:`repro.analysis.verifier` — a *semantic* checker that proves an
  emitted :class:`repro.metrics.Schedule` respects every feasibility
  invariant of its :class:`repro.dag.TaskGraph` and cluster capacity,
  returning structured :class:`Violation` records instead of booleans.
* :mod:`repro.analysis.linter` — a *syntactic* AST rule engine encoding
  repo-specific reproducibility rules (unseeded RNG calls, float
  equality on time values, mutable default arguments, ...), runnable as
  ``repro lint``.  On top of it, :mod:`repro.analysis.flow` adds
  *whole-program* dataflow rules (REP201–REP205) that trace contracts
  through helpers and across modules — ``repro lint --flow``.

Both are wired into the CLI (``repro verify`` / ``repro lint``), the
scheduler registry (``make_scheduler(name, validate=True)``) and the
environment's terminal states (``EnvConfig(verify_terminal=True)``).
Supporting toolchain pieces: :mod:`repro.analysis.baseline` (committed
violation baselines for incremental adoption) and
:mod:`repro.analysis.sarif` (SARIF 2.1.0 export for CI annotation).
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .flow import analyze_project, available_flow_rules, flow_rule_ids
from .linter import (
    LintInternalError,
    LintRule,
    LintViolation,
    all_rule_ids,
    available_rules,
    collect_suppressions,
    filter_suppressed,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    register_rule,
    validate_rule_ids,
)
from .sarif import format_sarif
from .verifier import (
    SCHEDULE_INVARIANTS,
    verify_payload,
    verify_placements,
    verify_schedule,
)
from .violations import Severity, VerificationReport, Violation

__all__ = [
    "Severity",
    "Violation",
    "VerificationReport",
    "SCHEDULE_INVARIANTS",
    "verify_schedule",
    "verify_placements",
    "verify_payload",
    "LintRule",
    "LintViolation",
    "LintInternalError",
    "register_rule",
    "available_rules",
    "all_rule_ids",
    "validate_rule_ids",
    "collect_suppressions",
    "filter_suppressed",
    "lint_source",
    "lint_paths",
    "format_text",
    "format_json",
    "format_sarif",
    "analyze_project",
    "available_flow_rules",
    "flow_rule_ids",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]
