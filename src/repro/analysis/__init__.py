"""Static analysis for the reproduction: schedule verification + linting.

Two independent halves share this package:

* :mod:`repro.analysis.verifier` — a *semantic* checker that proves an
  emitted :class:`repro.metrics.Schedule` respects every feasibility
  invariant of its :class:`repro.dag.TaskGraph` and cluster capacity,
  returning structured :class:`Violation` records instead of booleans.
* :mod:`repro.analysis.linter` — a *syntactic* AST rule engine encoding
  repo-specific reproducibility rules (unseeded RNG calls, float
  equality on time values, mutable default arguments, ...), runnable as
  ``repro lint``.

Both are wired into the CLI (``repro verify`` / ``repro lint``), the
scheduler registry (``make_scheduler(name, validate=True)``) and the
environment's terminal states (``EnvConfig(verify_terminal=True)``).
"""

from .linter import (
    LintRule,
    LintViolation,
    available_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    register_rule,
)
from .verifier import (
    SCHEDULE_INVARIANTS,
    verify_payload,
    verify_placements,
    verify_schedule,
)
from .violations import Severity, VerificationReport, Violation

__all__ = [
    "Severity",
    "Violation",
    "VerificationReport",
    "SCHEDULE_INVARIANTS",
    "verify_schedule",
    "verify_placements",
    "verify_payload",
    "LintRule",
    "LintViolation",
    "register_rule",
    "available_rules",
    "lint_source",
    "lint_paths",
    "format_text",
    "format_json",
]
