"""Semantic schedule verification.

:func:`verify_schedule` statically checks a :class:`repro.metrics.Schedule`
against its :class:`repro.dag.TaskGraph` and the cluster capacities, and
returns a :class:`VerificationReport` listing *every* broken invariant
(it never stops at the first).  The invariants, in priority order:

``completeness``
    every task in the graph is placed; no unknown task ids appear.
``duplicate``
    no task is placed more than once.
``time-domain``
    starts and finishes are non-negative integers with ``finish > start``.
``duration``
    each placement occupies exactly ``task.runtime`` slots.
``dependency``
    no task starts before all of its parents have finished.
``dimension``
    the capacity vector matches the graph's resource dimensionality.
``capacity``
    at every event point, summed demands of running tasks fit within
    capacity in every resource dimension.

:func:`verify_placements` is the engine: it accepts raw
``(task_id, start, finish)`` triples, so schedules too malformed to pass
:class:`repro.metrics.ScheduledTask` construction (negative or fractional
times from an external JSON file, say) still yield structured violations
instead of exceptions.  :func:`verify_payload` adapts the JSON schema of
:mod:`repro.metrics.export` onto that engine for ``repro verify``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..dag.graph import TaskGraph
from ..errors import ScheduleError
from ..metrics.schedule import Schedule
from .violations import VerificationReport, Violation

__all__ = [
    "SCHEDULE_INVARIANTS",
    "verify_schedule",
    "verify_placements",
    "verify_payload",
]

#: rule id -> one-line description, in check-priority order.
SCHEDULE_INVARIANTS: Dict[str, str] = {
    "completeness": "every task in the graph is placed; no unknown ids",
    "duplicate": "no task is placed more than once",
    "time-domain": "starts/finishes are non-negative integers, finish > start",
    "duration": "each placement spans exactly the task's runtime",
    "dependency": "no task starts before all of its parents finish",
    "dimension": "capacity vector matches the graph's resource count",
    "capacity": "concurrent demands fit within capacity at every event point",
}

RawPlacement = Tuple[int, Any, Any]


def _is_integral(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    return isinstance(value, float) and value.is_integer()


def verify_placements(
    placements: Iterable[RawPlacement],
    graph: TaskGraph,
    capacities: Sequence[int],
) -> VerificationReport:
    """Check raw ``(task_id, start, finish)`` triples against ``graph``.

    Returns a report listing every violation found; invariants that
    depend on broken prerequisites are skipped per-task rather than
    aborting the whole pass (a missing task suppresses only the
    dependency checks on its own edges, for example).
    """

    triples = [(tid, start, finish) for tid, start, finish in placements]
    violations: List[Violation] = []

    # -- completeness & duplicates ----------------------------------- #
    counts: Dict[int, int] = {}
    for tid, _, _ in triples:
        counts[tid] = counts.get(tid, 0) + 1
    expected = set(graph.task_ids)
    missing = sorted(expected - counts.keys())
    extra = sorted(counts.keys() - expected)
    if missing or extra:
        violations.append(
            Violation(
                "completeness",
                f"completeness violated: missing={missing[:5]} extra={extra[:5]}",
                task_ids=tuple(missing + extra),
            )
        )
    for tid in sorted(counts):
        if counts[tid] > 1:
            violations.append(
                Violation(
                    "duplicate",
                    f"task {tid} appears {counts[tid]} times in the schedule",
                    task_ids=(tid,),
                )
            )

    # -- time domain -------------------------------------------------- #
    sane: List[Tuple[int, int, int]] = []  # integral, ordered, known tasks
    seen: set[int] = set()
    for tid, start, finish in sorted(triples, key=lambda t: t[0]):
        bad = False
        if not _is_integral(start) or not _is_integral(finish):
            violations.append(
                Violation(
                    "time-domain",
                    f"task {tid}: non-integral times start={start!r} "
                    f"finish={finish!r}",
                    task_ids=(tid,),
                )
            )
            bad = True
        else:
            start, finish = int(start), int(finish)
            if start < 0:
                violations.append(
                    Violation(
                        "time-domain",
                        f"task {tid}: negative start {start}",
                        task_ids=(tid,),
                        time=start,
                    )
                )
                bad = True
            if finish <= start:
                violations.append(
                    Violation(
                        "time-domain",
                        f"task {tid}: finish {finish} <= start {start}",
                        task_ids=(tid,),
                        time=finish,
                    )
                )
                bad = True
        # Duplicates keep only their first sane occurrence downstream.
        if not bad and tid in expected and tid not in seen:
            seen.add(tid)
            sane.append((tid, start, finish))

    # -- durations ----------------------------------------------------- #
    for tid, start, finish in sane:
        runtime = graph.task(tid).runtime
        if finish - start != runtime:
            violations.append(
                Violation(
                    "duration",
                    f"task {tid}: schedule duration {finish - start} != "
                    f"task runtime {runtime}",
                    task_ids=(tid,),
                    time=start,
                )
            )

    # -- dependencies --------------------------------------------------- #
    by_id = {tid: (start, finish) for tid, start, finish in sane}
    for up, down in graph.edges():
        if up not in by_id or down not in by_id:
            continue  # completeness/time-domain already flagged these
        if by_id[down][0] < by_id[up][1]:
            violations.append(
                Violation(
                    "dependency",
                    f"dependency violated: task {down} starts at "
                    f"{by_id[down][0]} before parent {up} finishes at "
                    f"{by_id[up][1]}",
                    task_ids=(up, down),
                    time=by_id[down][0],
                )
            )

    # -- capacity -------------------------------------------------------- #
    if len(capacities) != graph.num_resources:
        violations.append(
            Violation(
                "dimension",
                f"capacities have {len(capacities)} dims, graph has "
                f"{graph.num_resources}",
            )
        )
    else:
        events: List[Tuple[int, int, int, Tuple[int, ...]]] = []
        for tid, start, finish in sane:
            demands = graph.task(tid).demands
            events.append((start, 1, tid, demands))
            events.append((finish, -1, tid, demands))
        events.sort(key=lambda e: (e[0], e[1]))  # releases before grabs
        usage = [0] * len(capacities)
        flagged: set[Tuple[int, int]] = set()  # (resource, t) pairs reported
        for t, kind, tid, demands in events:
            for r, demand in enumerate(demands):
                usage[r] += kind * demand
                if usage[r] > capacities[r] and (r, t) not in flagged:
                    flagged.add((r, t))
                    violations.append(
                        Violation(
                            "capacity",
                            f"capacity violated: resource {r} usage "
                            f"{usage[r]} > {capacities[r]} at t={t}",
                            task_ids=(tid,),
                            time=t,
                            resource=r,
                        )
                    )

    return VerificationReport(
        violations=tuple(violations),
        rules_checked=tuple(SCHEDULE_INVARIANTS),
        num_tasks=graph.num_tasks,
    )


def verify_schedule(
    schedule: Schedule,
    graph: TaskGraph,
    capacities: Sequence[int],
) -> VerificationReport:
    """Verify a constructed :class:`Schedule` object (see module docs)."""

    return verify_placements(
        ((p.task_id, p.start, p.finish) for p in schedule.placements),
        graph,
        capacities,
    )


def verify_payload(
    payload: Dict[str, Any],
    graph: TaskGraph,
    capacities: Sequence[int],
) -> VerificationReport:
    """Verify the JSON form of a schedule (``repro.metrics.export`` schema).

    Unlike :func:`repro.metrics.schedule_from_dict` this never coerces or
    rejects bad times up front — negative or fractional values flow into
    the engine and come back as ``time-domain`` violations.

    Raises:
        ScheduleError: only for payloads too malformed to interpret at
            all (wrong type, missing keys).
    """

    if not isinstance(payload, dict):
        raise ScheduleError("schedule payload must be a dict")
    entries = payload.get("placements")
    if not isinstance(entries, list):
        raise ScheduleError("schedule payload has no 'placements' list")
    triples: List[RawPlacement] = []
    for entry in entries:
        try:
            triples.append((int(entry["task_id"]), entry["start"], entry["finish"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise ScheduleError(f"malformed placement entry {entry!r}: {exc}") from exc
    return verify_placements(triples, graph, capacities)
