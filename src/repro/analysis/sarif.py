"""SARIF 2.1.0 export of lint violations.

SARIF (Static Analysis Results Interchange Format) is what code-review
UIs and CI annotation layers ingest; ``repro lint --format sarif``
emits one run with every fired rule declared in the tool's rule table
and one result per violation.  Only the small stable core of the spec
is produced — ruleId, message, physical location, level — which is all
consumers need to render inline annotations.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .linter import LintViolation, available_rules

__all__ = ["format_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def format_sarif(violations: Sequence[LintViolation]) -> str:
    """Render violations as a SARIF 2.1.0 log (one run)."""
    descriptions = available_rules()
    fired = sorted({v.rule_id for v in violations})
    rules: List[Dict[str, object]] = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": descriptions.get(rule_id, "parse failure")
            },
        }
        for rule_id in fired
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results: List[Dict[str, object]] = [
        {
            "ruleId": v.rule_id,
            "ruleIndex": rule_index[v.rule_id],
            "level": _LEVELS.get(v.severity, "error"),
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path.replace("\\", "/")},
                        "region": {
                            "startLine": v.line,
                            "startColumn": max(v.col + 1, 1),
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    log = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
