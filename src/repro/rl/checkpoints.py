"""Checkpointing trained networks to ``.npz`` files.

The checkpoint records the weights plus the metadata needed to rebuild an
identical network (input size, hidden sizes, action count), so loading
never silently mismatches an observation layout.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from ..config import NetworkConfig
from ..errors import CheckpointError
from .network import PolicyNetwork

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_value_checkpoint",
    "load_value_checkpoint",
]

_FORMAT_VERSION = 1
_VALUE_FORMAT_VERSION = 1


def save_checkpoint(network: PolicyNetwork, path: Union[str, Path]) -> None:
    """Write ``network`` (weights + architecture metadata) to ``path``."""

    payload = {f"param_{k}": v for k, v in network.params.items()}
    payload["meta_version"] = np.asarray([_FORMAT_VERSION])
    payload["meta_input_size"] = np.asarray([network.input_size])
    payload["meta_hidden_sizes"] = np.asarray(network.config.hidden_sizes)
    payload["meta_max_ready"] = np.asarray([network.config.max_ready])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_checkpoint(path: Union[str, Path]) -> PolicyNetwork:
    """Rebuild the exact network stored at ``path``.

    Raises:
        CheckpointError: on missing files, wrong format versions or
            corrupted payloads.
    """

    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as data:
            version = int(data["meta_version"][0])
            if version != _FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version}"
                )
            input_size = int(data["meta_input_size"][0])
            hidden_sizes = tuple(int(h) for h in data["meta_hidden_sizes"])
            max_ready = int(data["meta_max_ready"][0])
            config = NetworkConfig(hidden_sizes=hidden_sizes, max_ready=max_ready)
            network = PolicyNetwork(input_size, config, seed=0)
            params = {
                key[len("param_") :]: data[key]
                for key in data.files
                if key.startswith("param_")
            }
            network.set_params(params)
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    return network


def save_value_checkpoint(network, path: Union[str, Path]) -> None:
    """Write a :class:`repro.rl.value_network.ValueNetwork` to ``path``."""

    payload = {f"param_{k}": v for k, v in network.params.items()}
    payload["meta_value_version"] = np.asarray([_VALUE_FORMAT_VERSION])
    payload["meta_input_size"] = np.asarray([network.input_size])
    payload["meta_hidden_sizes"] = np.asarray(network.hidden_sizes)
    payload["meta_target_stats"] = np.asarray(
        [network._target_mean, network._target_std, float(network._fitted)]
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_value_checkpoint(path: Union[str, Path]):
    """Rebuild the value network stored at ``path``.

    Raises:
        CheckpointError: on missing files or corrupted payloads.
    """

    from .value_network import ValueNetwork

    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as data:
            version = int(data["meta_value_version"][0])
            if version != _VALUE_FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported value-checkpoint version {version}"
                )
            input_size = int(data["meta_input_size"][0])
            hidden_sizes = tuple(int(h) for h in data["meta_hidden_sizes"])
            network = ValueNetwork(input_size, hidden_sizes, seed=0)
            for key in data.files:
                if key.startswith("param_"):
                    name = key[len("param_") :]
                    if name not in network.params:
                        raise CheckpointError(f"unexpected parameter {name}")
                    if network.params[name].shape != data[key].shape:
                        raise CheckpointError(f"shape mismatch for {name}")
                    network.params[name] = data[key].copy()
            mean, std, fitted = data["meta_target_stats"]
            network._target_mean = float(mean)
            network._target_std = float(std)
            network._fitted = bool(fitted)
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"corrupt value checkpoint {path}: {exc}") from exc
    return network
