"""Checkpointing trained networks to ``.npz`` files.

The checkpoint records the weights plus the metadata needed to rebuild an
identical network (input size, hidden sizes, action count), so loading
never silently mismatches an observation layout.

Schema v2 adds a ``meta_kind`` discriminator (``policy_mlp`` /
``policy_gnn`` / ``value``) so one loader can route any policy
checkpoint to the right model class and mismatches fail with a clear
:class:`~repro.errors.CheckpointError` instead of a shape error deep in
``set_params``.  v1 files (no ``meta_kind``) are still read and treated
as ``policy_mlp`` — that is the only model the v1 writer ever existed
for.
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from ..config import GnnConfig, NetworkConfig
from ..errors import CheckpointError
from .gnn import GraphPolicyNetwork
from .network import PolicyNetwork

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "load_policy_checkpoint",
    "save_value_checkpoint",
    "load_value_checkpoint",
]

_FORMAT_VERSION = 2
_VALUE_FORMAT_VERSION = 1

#: Model kinds the policy writer knows how to serialize.
_POLICY_KINDS = ("policy_mlp", "policy_gnn")


def save_checkpoint(
    network: Union[PolicyNetwork, GraphPolicyNetwork], path: Union[str, Path]
) -> None:
    """Write ``network`` (weights + architecture metadata) to ``path``.

    Accepts either policy model; the file records its ``kind`` so the
    loaders can verify they are rebuilding what was saved.
    """

    kind = getattr(network, "kind", None)
    if kind not in _POLICY_KINDS:
        raise CheckpointError(
            f"cannot checkpoint model kind {kind!r}; expected one of "
            f"{_POLICY_KINDS}"
        )
    payload = {f"param_{k}": v for k, v in network.params.items()}
    payload["meta_version"] = np.asarray([_FORMAT_VERSION])
    payload["meta_kind"] = np.asarray([kind])
    if kind == "policy_mlp":
        payload["meta_input_size"] = np.asarray([network.input_size])
        payload["meta_hidden_sizes"] = np.asarray(network.config.hidden_sizes)
        payload["meta_max_ready"] = np.asarray([network.config.max_ready])
    else:
        payload["meta_num_resources"] = np.asarray([network.num_resources])
        cfg = network.config
        payload["meta_gnn"] = np.asarray(
            [cfg.hidden_size, cfg.rounds, cfg.head_hidden, cfg.global_hidden]
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def _read_kind(data) -> str:
    """The stored model kind; v1 files predate ``meta_kind``."""
    version = int(data["meta_version"][0])
    if version > _FORMAT_VERSION or version < 1:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    if version == 1:
        return "policy_mlp"
    return str(data["meta_kind"][0])


def _load_params(network, data) -> None:
    network.set_params(
        {
            key[len("param_") :]: data[key]
            for key in data.files
            if key.startswith("param_")
        }
    )


def _rebuild_mlp(data) -> PolicyNetwork:
    input_size = int(data["meta_input_size"][0])
    hidden_sizes = tuple(int(h) for h in data["meta_hidden_sizes"])
    max_ready = int(data["meta_max_ready"][0])
    config = NetworkConfig(hidden_sizes=hidden_sizes, max_ready=max_ready)
    network = PolicyNetwork(input_size, config, seed=0)
    _load_params(network, data)
    return network


def _rebuild_gnn(data) -> GraphPolicyNetwork:
    num_resources = int(data["meta_num_resources"][0])
    hidden_size, rounds, head_hidden, global_hidden = (
        int(v) for v in data["meta_gnn"]
    )
    config = GnnConfig(
        hidden_size=hidden_size,
        rounds=rounds,
        head_hidden=head_hidden,
        global_hidden=global_hidden,
    )
    network = GraphPolicyNetwork(num_resources, config, seed=0)
    _load_params(network, data)
    return network


def load_policy_checkpoint(
    path: Union[str, Path],
) -> Union[PolicyNetwork, GraphPolicyNetwork]:
    """Rebuild whichever policy model is stored at ``path``.

    Dispatches on the stored ``meta_kind`` (v1 files are ``policy_mlp``
    by definition), so callers that accept any policy — the scheduler
    registry, the CLI — need no model-specific branches.

    Raises:
        CheckpointError: on missing files, unknown kinds/versions or
            corrupted payloads.
    """

    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as data:
            kind = _read_kind(data)
            if kind == "policy_mlp":
                return _rebuild_mlp(data)
            if kind == "policy_gnn":
                return _rebuild_gnn(data)
            raise CheckpointError(
                f"checkpoint {path} holds unknown model kind {kind!r}"
            )
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc


def load_checkpoint(path: Union[str, Path]) -> PolicyNetwork:
    """Rebuild the MLP policy network stored at ``path``.

    The historical single-model loader: a checkpoint holding any other
    model kind raises a clear error pointing at
    :func:`load_policy_checkpoint`.

    Raises:
        CheckpointError: on missing files, wrong model kinds, wrong
            format versions or corrupted payloads.
    """

    network = load_policy_checkpoint(path)
    if network.kind != "policy_mlp":
        raise CheckpointError(
            f"checkpoint {path} holds model kind {network.kind!r}, expected "
            f"'policy_mlp'; use load_policy_checkpoint() for other models"
        )
    return network


def save_value_checkpoint(network, path: Union[str, Path]) -> None:
    """Write a :class:`repro.rl.value_network.ValueNetwork` to ``path``."""

    payload = {f"param_{k}": v for k, v in network.params.items()}
    payload["meta_value_version"] = np.asarray([_VALUE_FORMAT_VERSION])
    payload["meta_input_size"] = np.asarray([network.input_size])
    payload["meta_hidden_sizes"] = np.asarray(network.hidden_sizes)
    payload["meta_target_stats"] = np.asarray(
        [network._target_mean, network._target_std, float(network._fitted)]
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_value_checkpoint(path: Union[str, Path]):
    """Rebuild the value network stored at ``path``.

    Raises:
        CheckpointError: on missing files or corrupted payloads.
    """

    from .value_network import ValueNetwork

    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path) as data:
            version = int(data["meta_value_version"][0])
            if version != _VALUE_FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported value-checkpoint version {version}"
                )
            input_size = int(data["meta_input_size"][0])
            hidden_sizes = tuple(int(h) for h in data["meta_hidden_sizes"])
            network = ValueNetwork(input_size, hidden_sizes, seed=0)
            for key in data.files:
                if key.startswith("param_"):
                    name = key[len("param_") :]
                    if name not in network.params:
                        raise CheckpointError(f"unexpected parameter {name}")
                    if network.params[name].shape != data[key].shape:
                        raise CheckpointError(f"shape mismatch for {name}")
                    network.params[name] = data[key].copy()
            mean, std, fitted = data["meta_target_stats"]
            network._target_mean = float(mean)
            network._target_std = float(std)
            network._fitted = bool(fitted)
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise CheckpointError(f"corrupt value checkpoint {path}: {exc}") from exc
    return network
