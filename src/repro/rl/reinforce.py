"""REINFORCE with a rollout-average baseline (Sec. II-B, IV, Fig. 8(b)).

Per epoch, for every training example (a DAG), the trainer samples
``rollouts_per_example`` trajectories (paper: 20) and uses the *per-step
mean return across those rollouts* as the baseline — "we simulate 20 times
and average the trajectories to obtain the baseline".  The advantage of a
step is its reward-to-go minus the baseline at the same step index, and
the policy-gradient update of Eq. (3) is applied with rmsprop.

The collection/epoch machinery lives in :class:`repro.rl.trainer.Trainer`;
this subclass is just the REINFORCE loss: one weighted-NLL gradient step
per graph-batch, with an optional entropy bonus.

The learning-curve experiment (Fig. 8(b)) is a thin wrapper over
:meth:`ReinforceTrainer.train`: it records the mean makespan over all
trajectories per epoch, which "steadily decreases with the number of
iterations" and eventually beats Tetris and SJF.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..telemetry.config import TelemetryConfig
from ..utils.rng import SeedLike
from .network import PolicyNetwork
from .trainer import EpochStats, Trainer
from .trajectories import Trajectory

__all__ = ["ReinforceTrainer", "EpochStats"]


class ReinforceTrainer(Trainer):
    """Policy-gradient training over a fixed set of example DAGs.

    Args:
        network: policy network (typically pre-trained by imitation);
            either the MLP :class:`PolicyNetwork` or a
            :class:`repro.rl.gnn.GraphPolicyNetwork`.
        graphs: the training examples (paper: 144 random 25-task DAGs).
        env_config: environment shape used for every episode.
        training: hyper-parameters (learning rate, rollouts, batch size).
        seed: master seed for sampling.
        telemetry: where the per-epoch training curves report.  ``None``
            (the default) defers to the globally active pipeline; an
            enabled config binds this trainer to a dedicated pipeline.
            Each epoch streams the ``reinforce.loss`` /
            ``reinforce.entropy`` / ``reinforce.return`` /
            ``reinforce.baseline`` series.
    """

    algo = "reinforce"

    def __init__(
        self,
        network: PolicyNetwork,
        graphs: Sequence[TaskGraph],
        env_config: EnvConfig | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        super().__init__(network, graphs, env_config, training, seed, telemetry)

    # ------------------------------------------------------------------ #

    def _update_batch(
        self,
        trajectories: Sequence[Trajectory],
        advantage_arrays: Sequence[np.ndarray],
    ) -> Tuple[float, float]:
        """One policy-gradient step over all steps of all trajectories;
        returns (mean policy entropy, weighted NLL surrogate loss)."""
        steps, actions = self.flatten_steps(trajectories)
        weights = np.concatenate(advantage_arrays)
        grads, nll = self.network.policy_gradient_steps(steps, actions, weights)
        if self.training.entropy_bonus > 0.0:
            entropy_grads = self.network.entropy_gradient_steps(steps)
            for key in grads:
                grads[key] -= self.training.entropy_bonus * entropy_grads[key]
        self.apply_gradients(grads)
        return self.mean_entropy(steps), float(nll)

    # Backwards-compatible alias for the historical private name.
    _apply_update = _update_batch
