"""REINFORCE with a rollout-average baseline (Sec. II-B, IV, Fig. 8(b)).

Per epoch, for every training example (a DAG), the trainer samples
``rollouts_per_example`` trajectories (paper: 20) and uses the *per-step
mean return across those rollouts* as the baseline — "we simulate 20 times
and average the trajectories to obtain the baseline".  The advantage of a
step is its reward-to-go minus the baseline at the same step index, and
the policy-gradient update of Eq. (3) is applied with rmsprop.

The learning-curve experiment (Fig. 8(b)) is a thin wrapper over
:meth:`ReinforceTrainer.train`: it records the mean makespan over all
trajectories per epoch, which "steadily decreases with the number of
iterations" and eventually beats Tetris and SJF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..envarr.backend import make_env
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from ..telemetry.sinks import stderr_line
from ..utils.rng import SeedLike, as_generator, spawn
from .agent import NetworkPolicy
from .network import PolicyNetwork
from .optimizers import RmsProp
from .trajectories import Trajectory, returns_to_go, rollout_trajectory

__all__ = ["ReinforceTrainer", "EpochStats"]


@dataclass(frozen=True)
class EpochStats:
    """Telemetry of one REINFORCE epoch."""

    epoch: int
    mean_makespan: float
    best_makespan: int
    worst_makespan: int
    mean_entropy: float
    num_trajectories: int
    mean_loss: float = 0.0


class ReinforceTrainer:
    """Policy-gradient training over a fixed set of example DAGs.

    Args:
        network: policy network (typically pre-trained by imitation).
        graphs: the training examples (paper: 144 random 25-task DAGs).
        env_config: environment shape used for every episode.
        training: hyper-parameters (learning rate, rollouts, batch size).
        seed: master seed for sampling.
        telemetry: where the per-epoch training curves report.  ``None``
            (the default) defers to the globally active pipeline; an
            enabled config binds this trainer to a dedicated pipeline.
            Each epoch streams the ``reinforce.loss`` /
            ``reinforce.entropy`` / ``reinforce.return`` /
            ``reinforce.baseline`` series.
    """

    def __init__(
        self,
        network: PolicyNetwork,
        graphs: Sequence[TaskGraph],
        env_config: EnvConfig | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if not graphs:
            raise ValueError("need at least one training graph")
        self.network = network
        self.graphs = list(graphs)
        self.env_config = env_config if env_config is not None else EnvConfig()
        self.training = training if training is not None else TrainingConfig()
        self.optimizer = RmsProp(
            self.training.learning_rate, self.training.rho, self.training.eps
        )
        self._rng = as_generator(seed)
        self.telemetry = telemetry
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #

    def sample_trajectories(self, graph: TaskGraph) -> List[Trajectory]:
        """``rollouts_per_example`` sampled episodes on one graph."""
        children = spawn(self._rng, self.training.rollouts_per_example)
        trajectories = []
        for child in children:
            env = make_env(graph, self.env_config)
            policy = NetworkPolicy(self.network, mode="sample", seed=child)
            trajectories.append(
                rollout_trajectory(env, policy, self.training.max_episode_steps)
            )
        return trajectories

    @staticmethod
    def advantages(trajectories: Sequence[Trajectory]) -> List[np.ndarray]:
        """Per-step advantages with the cross-rollout mean-return baseline.

        Returns are aligned by step index; the baseline at index ``t`` is
        the mean of ``G_t`` over every rollout long enough to have a step
        ``t`` (the DeepRM/Spear convention for unequal-length episodes).
        """
        all_returns = [returns_to_go(t) for t in trajectories]
        max_len = max(len(r) for r in all_returns)
        sums = np.zeros(max_len)
        counts = np.zeros(max_len)
        for returns in all_returns:
            sums[: len(returns)] += returns
            counts[: len(returns)] += 1
        baseline = sums / np.maximum(counts, 1)
        return [returns - baseline[: len(returns)] for returns in all_returns]

    def _apply_update(
        self,
        trajectories: Sequence[Trajectory],
        advantage_arrays: Sequence[np.ndarray],
    ) -> tuple[float, float]:
        """One policy-gradient step over all steps of all trajectories;
        returns (mean policy entropy, weighted NLL surrogate loss)."""
        states = np.concatenate(
            [[step.observation for step in t.steps] for t in trajectories]
        )
        masks = np.concatenate(
            [[step.mask for step in t.steps] for t in trajectories]
        )
        actions = np.concatenate(
            [[step.action_index for step in t.steps] for t in trajectories]
        )
        weights = np.concatenate(advantage_arrays)
        grads, nll = self.network.policy_gradient(states, masks, actions, weights)
        if self.training.entropy_bonus > 0.0:
            entropy_grads = self._entropy_gradients(states, masks)
            for key in grads:
                grads[key] -= self.training.entropy_bonus * entropy_grads[key]
        self.optimizer.step(self.network.params, grads)
        probs = self.network.probabilities(states, masks)
        with np.errstate(divide="ignore", invalid="ignore"):
            plogp = np.where(probs > 0, probs * np.log(probs), 0.0)
        return float(-plogp.sum(axis=1).mean()), float(nll)

    def _entropy_gradients(
        self, states: np.ndarray, masks: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Gradients of mean policy entropy w.r.t. parameters."""
        probs = self.network.probabilities(states, masks, keep_cache=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            logp = np.where(probs > 0, np.log(probs), 0.0)
        inner = -(logp + 1.0)
        expected = (probs * inner).sum(axis=1, keepdims=True)
        dlogits = probs * (inner - expected) / probs.shape[0]
        return self.network.backward_from_dlogits(dlogits)

    def train_epoch(self, epoch: int) -> EpochStats:
        """One epoch: sample, baseline, update — batched over examples.

        With telemetry active the epoch lands as one point on each of
        the training-curve series: ``reinforce.loss`` (weighted NLL
        surrogate), ``reinforce.entropy``, ``reinforce.return`` (best
        return achieved, i.e. negated best makespan) and
        ``reinforce.baseline`` (the trajectory-average return the
        advantage is centered on, i.e. negated mean makespan).
        """
        makespans: List[int] = []
        entropies: List[float] = []
        losses: List[float] = []
        batch_size = self.training.batch_size
        for start in range(0, len(self.graphs), batch_size):
            batch_graphs = self.graphs[start : start + batch_size]
            batch_trajectories: List[Trajectory] = []
            batch_advantages: List[np.ndarray] = []
            for graph in batch_graphs:
                trajectories = self.sample_trajectories(graph)
                batch_trajectories.extend(trajectories)
                batch_advantages.extend(self.advantages(trajectories))
                makespans.extend(t.makespan for t in trajectories)
            entropy, loss = self._apply_update(
                batch_trajectories, batch_advantages
            )
            entropies.append(entropy)
            losses.append(loss)
        stats = EpochStats(
            epoch=epoch,
            mean_makespan=float(np.mean(makespans)),
            best_makespan=int(np.min(makespans)),
            worst_makespan=int(np.max(makespans)),
            mean_entropy=float(np.mean(entropies)),
            num_trajectories=len(makespans),
            mean_loss=float(np.mean(losses)),
        )
        self.history.append(stats)
        tm = _telemetry.for_config(self.telemetry)
        if tm.enabled:
            tm.record("reinforce.loss", epoch, stats.mean_loss)
            tm.record("reinforce.entropy", epoch, stats.mean_entropy)
            tm.record("reinforce.return", epoch, -float(stats.best_makespan))
            tm.record("reinforce.baseline", epoch, -stats.mean_makespan)
            tm.inc("reinforce.trajectories", stats.num_trajectories)
        return stats

    def train(
        self,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> List[EpochStats]:
        """Run ``epochs`` epochs (default from config); returns the curve.

        ``log_every=k`` reports every k-th epoch: as a structured
        ``reinforce.epoch`` log event when telemetry is active (the
        stderr-summary sink echoes it live), else as a plain stderr
        line — progress logging never lands on stdout.
        """
        total = epochs if epochs is not None else self.training.epochs
        tm = _telemetry.for_config(self.telemetry)
        with tm.span("reinforce.train", epochs=total, graphs=len(self.graphs)):
            for epoch in range(total):
                stats = self.train_epoch(epoch)
                if log_every and epoch % log_every == 0:
                    message = (
                        f"epoch {stats.epoch}: mean makespan "
                        f"{stats.mean_makespan:.1f} entropy "
                        f"{stats.mean_entropy:.3f}"
                    )
                    if tm.enabled:
                        tm.log(
                            "reinforce.epoch",
                            message=message,
                            epoch=stats.epoch,
                            mean_makespan=stats.mean_makespan,
                            mean_entropy=stats.mean_entropy,
                        )
                    else:
                        stderr_line(message)
        return self.history

    def evaluate(self, graphs: Sequence[TaskGraph], greedy: bool = True) -> List[int]:
        """Makespan of the current policy on each graph (greedy by default)."""
        results = []
        for graph in graphs:
            env = make_env(graph, self.env_config)
            mode = "greedy" if greedy else "sample"
            policy = NetworkPolicy(self.network, mode=mode, seed=self._rng)
            trajectory = rollout_trajectory(
                env, policy, self.training.max_episode_steps
            )
            results.append(trajectory.makespan)
        return results
