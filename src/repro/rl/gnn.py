"""A graph-structured policy: per-node message passing, no ready window.

The paper's MLP policy (Sec. IV) featurizes at most ``max_ready`` ready
slots into a fixed-width vector, so its parameters are welded to one
window size and carry no structural information about the DAG.  Decima
and *Learning to Schedule DAG Tasks* (PAPERS.md) show the fix: embed
every node by passing messages along the precedence edges and score the
ready tasks with a *shared* per-node head, which makes the parameter
count independent of both the DAG size and the window — the same
network evaluates a 10-task and a 250-task job.

Architecture (DESIGN.md Sec. 16):

1. **Encoder** — static per-task features (the same demand/runtime/
   b-level/children/b-load table the window builder uses) concatenated
   with 5 dynamic state channels (visible-ready, ready, running,
   finished, remaining-runtime), through linear+ReLU to ``hidden_size``.
2. **K message-passing rounds** — ``h' = relu(h W_s + C(h) W_c +
   P(h) W_p + b)`` where ``C``/``P`` sum child/parent embeddings over
   the CSR adjacency of :mod:`repro.envarr.graphdata`.  ``C`` and ``P``
   are adjoint, so backprop reuses the same scatter kernels with the
   directions swapped.
3. **Global readout** — mean-pooled node embeddings joined with cluster
   features (free capacity, progress, backlog, clock) through
   linear+ReLU.
4. **Score heads** — a shared per-node head (node embedding + global
   context -> scalar score) evaluated at each visible ready task, plus
   a separate head scoring the PROCESS action from the global context.
   The masked softmax runs over ``[ready..., PROCESS]`` — variable
   width per state, padded only transiently inside a batch.

Everything is pure NumPy with hand-derived gradients, matching the rest
of :mod:`repro.rl.modules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EnvConfig, GnnConfig
from ..env.actions import PROCESS, Action
from ..envarr.graphdata import GraphArrays, graph_arrays
from ..envarr.observation import (
    GLOBAL_EXTRA_CHANNELS,
    NODE_STATE_CHANNELS,
    task_feature_table,
)
from ..errors import ConfigError, EnvironmentStateError
from ..schedulers.base import Policy
from ..utils.rng import SeedLike, as_generator
from .modules import EdgeList, entropy_dlogits, init_linear, masked_softmax

__all__ = [
    "GraphPolicyNetwork",
    "GraphObservation",
    "GraphObservationBuilder",
    "GraphNetworkPolicy",
    "build_graph_action_mask",
]


@dataclass(frozen=True)
class GraphObservation:
    """One state, featurized for the graph policy.

    ``static_table`` is shared per episode (one reference per builder);
    ``ready`` lists the visible ready window as *dense* task indices in
    slot order — the action layout is ``[ready..., PROCESS]``.
    """

    arrays: GraphArrays
    static_table: np.ndarray
    node_state: np.ndarray
    globals_vec: np.ndarray
    ready: Tuple[int, ...]


def build_graph_action_mask(env, work_conserving: bool = True) -> np.ndarray:
    """Legality mask over ``[ready slots..., PROCESS]`` for one state."""
    num_visible = len(env.visible_ready())
    mask = np.zeros(num_visible + 1, dtype=bool)
    actions = (
        env.expansion_actions(work_conserving=True)
        if work_conserving
        else env.legal_actions()
    )
    for action in actions:
        if action == PROCESS:
            mask[num_visible] = True
        else:
            mask[action] = True
    return mask


class GraphObservationBuilder:
    """Featurize environment states (either backend) for the graph policy.

    Args:
        graph_or_arrays: the job (or its compiled arrays).
        config: environment configuration (cluster shape, feature flags).
    """

    def __init__(self, graph_or_arrays, config: EnvConfig) -> None:
        arrays = (
            graph_or_arrays
            if isinstance(graph_or_arrays, GraphArrays)
            else graph_arrays(graph_or_arrays)
        )
        self.arrays = arrays
        self.graph = arrays.graph
        self.config = config
        self.static_table = task_feature_table(arrays, config)
        self._capacities = np.asarray(
            config.cluster.capacities, dtype=np.float64
        )
        self._max_runtime = max(1, int(arrays.durations.max()))
        self._critical_path = max(1, arrays.critical_path)

    def build(self, env) -> GraphObservation:
        """Render one state; works on the object and array backends."""
        arrays = self.arrays
        index_of = arrays.index_of
        n = arrays.num_tasks
        resources = arrays.num_resources
        node_state = np.zeros((n, NODE_STATE_CHANNELS), dtype=np.float64)
        visible = [index_of[tid] for tid in env.visible_ready()]
        if visible:
            node_state[visible, 0] = 1.0
        ready_all = [index_of[tid] for tid in env.all_ready()]
        if ready_all:
            node_state[ready_all, 1] = 1.0
        now = env.now
        for entry in env.cluster.running_tasks():
            index = index_of[entry.task_id]
            node_state[index, 2] = 1.0
            node_state[index, 4] = (entry.finish_time - now) / self._max_runtime
        finished = [index_of[tid] for tid in env.finished_ids()]
        if finished:
            node_state[finished, 3] = 1.0
        globals_vec = np.empty(
            resources + GLOBAL_EXTRA_CHANNELS, dtype=np.float64
        )
        free = np.asarray(env.cluster.available, dtype=np.float64)
        globals_vec[:resources] = free / self._capacities
        globals_vec[resources] = env.num_finished / n
        globals_vec[resources + 1] = env.backlog_size / max(1, n)
        globals_vec[resources + 2] = now / self._critical_path
        return GraphObservation(
            arrays, self.static_table, node_state, globals_vec, tuple(visible)
        )


class GraphPolicyNetwork:
    """Scale-invariant DAG policy (see module docstring).

    Args:
        num_resources: cluster resource dimensionality (fixes the
            feature widths; the DAG size does not).
        config: architecture hyper-parameters.
        seed: weight-initialization seed.
    """

    kind = "policy_gnn"

    def __init__(
        self,
        num_resources: int,
        config: GnnConfig | None = None,
        seed: SeedLike = None,
    ) -> None:
        if num_resources < 1:
            raise ConfigError("num_resources must be >= 1")
        self.num_resources = num_resources
        self.config = config if config is not None else GnnConfig()
        per_task = num_resources * 2 + 3
        self.node_features = per_task + NODE_STATE_CHANNELS
        self.global_features = num_resources + GLOBAL_EXTRA_CHANNELS
        cfg = self.config
        rng = as_generator(seed)
        params: Dict[str, np.ndarray] = {}
        init_linear(
            params, "enc.W", "enc.b", self.node_features, cfg.hidden_size, rng
        )
        # Three matmuls sum into one pre-activation, so each is drawn at
        # a third of the He variance to keep the sum's scale.
        mp_scale = float(np.sqrt(2.0 / (3 * cfg.hidden_size)))
        for k in range(cfg.rounds):
            for name in ("Ws", "Wc", "Wp"):
                params[f"mp{k}.{name}"] = rng.normal(
                    0.0, mp_scale, size=(cfg.hidden_size, cfg.hidden_size)
                )
            params[f"mp{k}.b"] = np.zeros(cfg.hidden_size)
        init_linear(
            params,
            "glob.W",
            "glob.b",
            cfg.hidden_size + self.global_features,
            cfg.global_hidden,
            rng,
        )
        init_linear(
            params, "head.Wn", "head.b", cfg.hidden_size, cfg.head_hidden, rng
        )
        params["head.Wg"] = rng.normal(
            0.0,
            float(np.sqrt(2.0 / cfg.global_hidden)),
            size=(cfg.global_hidden, cfg.head_hidden),
        )
        params["head.w"] = rng.normal(
            0.0, float(np.sqrt(1.0 / cfg.head_hidden)), size=(cfg.head_hidden, 1)
        )
        params["head.c"] = np.zeros(1)
        init_linear(
            params, "proc.W", "proc.b", cfg.global_hidden, cfg.head_hidden, rng
        )
        params["proc.w"] = rng.normal(
            0.0, float(np.sqrt(1.0 / cfg.head_hidden)), size=(cfg.head_hidden, 1)
        )
        params["proc.c"] = np.zeros(1)
        #: Shared live parameter dict (the optimizer mutates it in place).
        self.params = params
        self._edge_cache: Dict[int, Tuple[GraphArrays, EdgeList]] = {}
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------ #
    # forward / backward over one graph group
    # ------------------------------------------------------------------ #

    def _edges(self, arrays: GraphArrays) -> EdgeList:
        key = id(arrays)
        cached = self._edge_cache.get(key)
        if cached is not None and cached[0] is arrays:
            return cached[1]
        edges = EdgeList.from_graph_arrays(arrays)
        if len(self._edge_cache) >= 16:
            self._edge_cache.pop(next(iter(self._edge_cache)))
        self._edge_cache[key] = (arrays, edges)
        return edges

    def forward_group(
        self,
        arrays: GraphArrays,
        static_table: np.ndarray,
        node_states: np.ndarray,
        globals_vec: np.ndarray,
        ready_lists: Sequence[Sequence[int]],
        keep_cache: bool = False,
    ) -> np.ndarray:
        """Padded logits ``(B, max_ready_count + 1)`` for ``B`` states of
        one graph.  Column ``len(ready_lists[b])`` is PROCESS; columns
        beyond it are padding (mask them out)."""
        if static_table.shape[1] + NODE_STATE_CHANNELS != self.node_features:
            raise ConfigError(
                f"node features {static_table.shape[1] + NODE_STATE_CHANNELS}"
                f" do not match network width {self.node_features}"
            )
        p = self.params
        cfg = self.config
        batch, n, _ = node_states.shape
        edges = self._edges(arrays)
        static = np.broadcast_to(
            static_table, (batch, n, static_table.shape[1])
        )
        x = np.concatenate([static, node_states], axis=2)
        enc_pre = x @ p["enc.W"] + p["enc.b"]
        h = np.maximum(enc_pre, 0.0)
        round_cache: List[Tuple[np.ndarray, ...]] = []
        for k in range(cfg.rounds):
            children = edges.aggregate_children(h)
            parents = edges.aggregate_parents(h)
            z = (
                h @ p[f"mp{k}.Ws"]
                + children @ p[f"mp{k}.Wc"]
                + parents @ p[f"mp{k}.Wp"]
                + p[f"mp{k}.b"]
            )
            round_cache.append((h, children, parents, z))
            h = np.maximum(z, 0.0)
        pooled = h.mean(axis=1)
        g_in = np.concatenate([pooled, globals_vec], axis=1)
        g_pre = g_in @ p["glob.W"] + p["glob.b"]
        g = np.maximum(g_pre, 0.0)
        q_pre = h @ p["head.Wn"] + (g @ p["head.Wg"])[:, None, :] + p["head.b"]
        q = np.maximum(q_pre, 0.0)
        scores = (q @ p["head.w"])[:, :, 0] + p["head.c"][0]
        proc_pre = g @ p["proc.W"] + p["proc.b"]
        proc = np.maximum(proc_pre, 0.0)
        pscores = (proc @ p["proc.w"])[:, 0] + p["proc.c"][0]
        width = max(len(r) for r in ready_lists) + 1
        logits = np.zeros((batch, width), dtype=np.float64)
        for b, ready in enumerate(ready_lists):
            if ready:
                logits[b, : len(ready)] = scores[b, list(ready)]
            logits[b, len(ready)] = pscores[b]
        if keep_cache:
            self._cache = {
                "edges": edges,
                "x": x,
                "enc_pre": enc_pre,
                "rounds": round_cache,
                "h": h,
                "g_in": g_in,
                "g_pre": g_pre,
                "g": g,
                "q_pre": q_pre,
                "q": q,
                "proc_pre": proc_pre,
                "proc": proc,
                "ready_lists": [list(r) for r in ready_lists],
                "n": n,
            }
        return logits

    def backward_group(self, dlogits: np.ndarray) -> Dict[str, np.ndarray]:
        """Backprop padded ``dLoss/dlogits`` through the cached forward.

        Padded columns must carry zero gradient (masked-softmax losses
        guarantee this).  The cache is consumed.
        """
        if self._cache is None:
            raise ConfigError(
                "no cached forward pass; call forward_group(keep_cache=True)"
            )
        c, self._cache = self._cache, None
        p = self.params
        cfg = self.config
        ready_lists = c["ready_lists"]
        batch = dlogits.shape[0]
        n = c["n"]
        hidden = cfg.hidden_size
        dscores = np.zeros((batch, n), dtype=np.float64)
        dpscores = np.empty(batch, dtype=np.float64)
        for b, ready in enumerate(ready_lists):
            if ready:
                dscores[b, ready] = dlogits[b, : len(ready)]
            dpscores[b] = dlogits[b, len(ready)]
        grads: Dict[str, np.ndarray] = {}
        # PROCESS head.
        proc, proc_pre, g = c["proc"], c["proc_pre"], c["g"]
        grads["proc.w"] = (proc * dpscores[:, None]).sum(axis=0)[:, None]
        grads["proc.c"] = np.asarray([dpscores.sum()])
        dproc = dpscores[:, None] * p["proc.w"][:, 0][None, :]
        dproc_pre = dproc * (proc_pre > 0)
        grads["proc.W"] = g.T @ dproc_pre
        grads["proc.b"] = dproc_pre.sum(axis=0)
        dg = dproc_pre @ p["proc.W"].T
        # Per-node score head (shared weights over every scored node).
        q, q_pre, h = c["q"], c["q_pre"], c["h"]
        grads["head.w"] = (q * dscores[:, :, None]).sum(axis=(0, 1))[:, None]
        grads["head.c"] = np.asarray([dscores.sum()])
        dq = dscores[:, :, None] * p["head.w"][:, 0][None, None, :]
        dq_pre = dq * (q_pre > 0)
        flat_h = h.reshape(batch * n, hidden)
        flat_dq = dq_pre.reshape(batch * n, -1)
        grads["head.Wn"] = flat_h.T @ flat_dq
        grads["head.b"] = flat_dq.sum(axis=0)
        dq_glob = dq_pre.sum(axis=1)
        grads["head.Wg"] = g.T @ dq_glob
        dg += dq_glob @ p["head.Wg"].T
        dh = dq_pre @ p["head.Wn"].T
        # Global readout.
        g_pre, g_in = c["g_pre"], c["g_in"]
        dg_pre = dg * (g_pre > 0)
        grads["glob.W"] = g_in.T @ dg_pre
        grads["glob.b"] = dg_pre.sum(axis=0)
        dg_in = dg_pre @ p["glob.W"].T
        dh += dg_in[:, None, :hidden] / n
        # Message-passing rounds, reversed (C and P are adjoint).
        edges = c["edges"]
        for k in reversed(range(cfg.rounds)):
            h_prev, children, parents, z = c["rounds"][k]
            dz = dh * (z > 0)
            flat_dz = dz.reshape(batch * n, hidden)
            grads[f"mp{k}.Ws"] = h_prev.reshape(batch * n, hidden).T @ flat_dz
            grads[f"mp{k}.Wc"] = children.reshape(batch * n, hidden).T @ flat_dz
            grads[f"mp{k}.Wp"] = parents.reshape(batch * n, hidden).T @ flat_dz
            grads[f"mp{k}.b"] = flat_dz.sum(axis=0)
            dh = (
                dz @ p[f"mp{k}.Ws"].T
                + edges.aggregate_parents(dz @ p[f"mp{k}.Wc"].T)
                + edges.aggregate_children(dz @ p[f"mp{k}.Wp"].T)
            )
        # Encoder.
        enc_pre, x = c["enc_pre"], c["x"]
        denc_pre = (dh * (enc_pre > 0)).reshape(batch * n, hidden)
        grads["enc.W"] = x.reshape(batch * n, -1).T @ denc_pre
        grads["enc.b"] = denc_pre.sum(axis=0)
        return grads

    # ------------------------------------------------------------------ #
    # step-batch interface (what the trainers consume)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _group_positions(steps: Sequence) -> List[List[int]]:
        """Step positions grouped by graph (stacking needs a common N)."""
        groups: Dict[int, List[int]] = {}
        for position, step in enumerate(steps):
            groups.setdefault(id(step.observation.arrays), []).append(position)
        return list(groups.values())

    def _group_probabilities(
        self, steps: Sequence, keep_cache: bool = False
    ) -> np.ndarray:
        """Masked probabilities ``(B, width)`` for same-graph steps."""
        first = steps[0].observation
        node_states = np.stack([s.observation.node_state for s in steps])
        globals_vec = np.stack([s.observation.globals_vec for s in steps])
        ready_lists = [list(s.observation.ready) for s in steps]
        logits = self.forward_group(
            first.arrays,
            first.static_table,
            node_states,
            globals_vec,
            ready_lists,
            keep_cache=keep_cache,
        )
        masks = np.zeros(logits.shape, dtype=bool)
        for b, step in enumerate(steps):
            masks[b, : len(step.mask)] = step.mask
        return masked_softmax(logits, masks)

    def policy_gradient_steps(
        self,
        steps: Sequence,
        actions: Sequence[int],
        weights: Sequence[float],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """Gradients of ``-sum_i weights_i * log pi(actions_i | states_i)``,
        averaged over the whole step batch (groups sum into one update)."""
        total = len(steps)
        if total == 0:
            raise ConfigError("empty step batch")
        actions_arr = np.asarray(actions, dtype=int)
        weights_arr = np.asarray(weights, dtype=np.float64)
        if actions_arr.shape[0] != total or weights_arr.shape[0] != total:
            raise ConfigError("steps, actions and weights must align")
        grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        nll_sum = 0.0
        for positions in self._group_positions(steps):
            sub = [steps[i] for i in positions]
            probs = self._group_probabilities(sub, keep_cache=True)
            rows = np.arange(len(sub))
            acts = actions_arr[positions]
            chosen = probs[rows, acts]
            if np.any(chosen <= 0.0):
                raise ConfigError(
                    "an illegal (zero-probability) action was taken"
                )
            onehot = np.zeros_like(probs)
            onehot[rows, acts] = 1.0
            dlogits = weights_arr[positions][:, None] * (probs - onehot) / total
            group_grads = self.backward_group(dlogits)
            for key in grads:
                grads[key] += group_grads[key]
            nll_sum += float(-np.log(chosen).sum())
        return grads, nll_sum / total

    def step_probabilities(self, steps: Sequence) -> np.ndarray:
        """``(B, A)`` distributions over recorded steps, zero-padded to
        the widest action space in the batch."""
        width = max(len(step.mask) for step in steps)
        out = np.zeros((len(steps), width), dtype=np.float64)
        for positions in self._group_positions(steps):
            sub = [steps[i] for i in positions]
            probs = self._group_probabilities(sub)
            out[np.asarray(positions), : probs.shape[1]] = probs
        return out

    def entropy_gradient_steps(self, steps: Sequence) -> Dict[str, np.ndarray]:
        """Gradients of mean policy entropy over recorded steps."""
        total = len(steps)
        grads = {key: np.zeros_like(value) for key, value in self.params.items()}
        for positions in self._group_positions(steps):
            sub = [steps[i] for i in positions]
            probs = self._group_probabilities(sub, keep_cache=True)
            # entropy_dlogits averages over the group; rescale to the batch.
            dlogits = entropy_dlogits(probs) * (len(sub) / total)
            group_grads = self.backward_group(dlogits)
            for key in grads:
                grads[key] += group_grads[key]
        return grads

    #: Critic input width (the PPO value head trains on these features).
    @property
    def value_feature_size(self) -> int:
        return self.global_features + NODE_STATE_CHANNELS

    def value_features(self, steps: Sequence) -> np.ndarray:
        """``(B, value_feature_size)`` critic inputs for recorded steps:
        the global cluster features joined with the mean per-node state
        channels (a size-invariant summary of episode progress)."""
        out = np.empty((len(steps), self.value_feature_size), dtype=np.float64)
        for b, step in enumerate(steps):
            obs = step.observation
            out[b, : self.global_features] = obs.globals_vec
            out[b, self.global_features :] = obs.node_state.mean(axis=0)
        return out

    # ------------------------------------------------------------------ #
    # policy construction and parameter plumbing
    # ------------------------------------------------------------------ #

    def make_policy(
        self,
        mode: str = "sample",
        seed: SeedLike = None,
        work_conserving: bool = True,
    ) -> "GraphNetworkPolicy":
        """A :class:`GraphNetworkPolicy` driving this network."""
        return GraphNetworkPolicy(
            self, mode=mode, seed=seed, work_conserving=work_conserving
        )

    def get_params(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays."""
        return {k: v.copy() for k, v in self.params.items()}

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        """Load parameters (shapes must match exactly)."""
        for key, value in self.params.items():
            if key not in params:
                raise ConfigError(f"missing parameter {key}")
            if params[key].shape != value.shape:
                raise ConfigError(
                    f"parameter {key}: shape {params[key].shape} != "
                    f"{value.shape}"
                )
        for key in self.params:
            self.params[key] = np.asarray(params[key], dtype=np.float64).copy()

    def num_parameters(self) -> int:
        """Total scalar parameter count (independent of any DAG's size)."""
        return sum(v.size for v in self.params.values())


class GraphNetworkPolicy(Policy):
    """Drives an environment with a :class:`GraphPolicyNetwork`.

    The mirror of :class:`repro.rl.agent.NetworkPolicy` for the graph
    model: featurize, mask, then sample (or argmax) over
    ``[ready..., PROCESS]``.
    """

    name = "drl-gnn"

    def __init__(
        self,
        network: GraphPolicyNetwork,
        mode: str = "sample",
        seed: SeedLike = None,
        work_conserving: bool = True,
    ) -> None:
        if mode not in ("sample", "greedy"):
            raise ConfigError(f"unknown mode {mode!r}")
        self.network = network
        self.mode = mode
        self.work_conserving = work_conserving
        self._rng = as_generator(seed)
        self._builder: Optional[GraphObservationBuilder] = None

    # ------------------------------------------------------------------ #

    def begin_episode(self, env) -> None:
        builder = GraphObservationBuilder(env.graph, env.config)
        if builder.arrays.num_resources != self.network.num_resources:
            raise ConfigError(
                f"graph has {builder.arrays.num_resources} resources, "
                f"network expects {self.network.num_resources}"
            )
        self._builder = builder

    def _ensure_builder(self, env) -> GraphObservationBuilder:
        if self._builder is None or self._builder.graph is not env.graph:
            self.begin_episode(env)
        assert self._builder is not None
        return self._builder

    def observe(self, env) -> Tuple[GraphObservation, np.ndarray]:
        """(observation, mask) without a network forward."""
        builder = self._ensure_builder(env)
        observation = builder.build(env)
        mask = build_graph_action_mask(env, self.work_conserving)
        return observation, mask

    def distribution(
        self, env
    ) -> Tuple[GraphObservation, np.ndarray, np.ndarray]:
        """(observation, mask, probabilities) for the current state."""
        observation, mask = self.observe(env)
        logits = self.network.forward_group(
            observation.arrays,
            observation.static_table,
            observation.node_state[None, :, :],
            observation.globals_vec[None, :],
            [list(observation.ready)],
        )
        probs = masked_softmax(logits, mask[None, :])[0]
        return observation, mask, probs

    def action_probabilities(self, env) -> Dict[Action, float]:
        """Env-action -> probability map (used by MCTS expansion/rollout)."""
        _, mask, probs = self.distribution(env)
        process_index = len(mask) - 1
        result: Dict[Action, float] = {}
        for index in np.nonzero(mask)[0]:
            action = PROCESS if index == process_index else int(index)
            result[action] = float(probs[index])
        return result

    def _choose(self, probs: np.ndarray) -> int:
        if self.mode == "greedy":
            return int(np.argmax(probs))
        return int(self._rng.choice(len(probs), p=probs))

    def select(self, env) -> Action:
        _, mask, probs = self.distribution(env)
        index = self._choose(probs)
        if not mask[index]:
            raise EnvironmentStateError("network selected a masked action")
        return PROCESS if index == len(mask) - 1 else index

    def select_with_trace(
        self, env
    ) -> Tuple[Action, GraphObservation, np.ndarray, int]:
        """Like :meth:`select` but also returns (observation, mask,
        network-action-index) for trajectory recording."""
        observation, mask, probs = self.distribution(env)
        index = self._choose(probs)
        action = PROCESS if index == len(mask) - 1 else index
        return action, observation, mask, index
