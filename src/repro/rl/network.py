"""The policy network of Sec. IV, in pure NumPy.

Architecture: ``input -> 256 -> 32 -> 32 -> num_actions`` with ReLU hidden
activations and a masked softmax output ("a 3 hidden layer neural network
with widths of 256, 32, and 32 ... at the output layer, a softmax function
will be used").

The network exposes exactly the two primitives both trainers need:

* :meth:`probabilities` — masked action distribution for a batch of
  states;
* :meth:`backward_from_dlogits` — gradients of any loss whose derivative
  w.r.t. the logits the caller supplies.  Both the cross-entropy loss of
  imitation learning and the REINFORCE policy-gradient loss have the form
  ``dlogits = weight * (probs - onehot(action))``, so a single backward
  covers both.

Action masking: illegal logits are driven to ``-inf`` before the softmax,
so illegal actions have exactly zero probability and receive exactly zero
gradient.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import NetworkConfig
from ..errors import ConfigError
from ..utils.rng import SeedLike, as_generator

__all__ = ["PolicyNetwork"]

_NEG_INF = -1e30


class PolicyNetwork:
    """Masked-softmax MLP policy.

    Args:
        input_size: observation dimensionality.
        config: architecture (hidden widths, action count).
        seed: weight-initialization seed (He initialization for ReLU).
    """

    def __init__(
        self,
        input_size: int,
        config: NetworkConfig | None = None,
        seed: SeedLike = None,
    ) -> None:
        if input_size < 1:
            raise ConfigError(f"input_size must be >= 1, got {input_size}")
        self.config = config if config is not None else NetworkConfig()
        self.input_size = input_size
        self.num_actions = self.config.num_actions
        rng = as_generator(seed)

        sizes = [input_size, *self.config.hidden_sizes, self.num_actions]
        self.params: Dict[str, np.ndarray] = {}
        for layer, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            scale = np.sqrt(2.0 / fan_in)
            self.params[f"W{layer}"] = rng.normal(
                0.0, scale, size=(fan_in, fan_out)
            )
            self.params[f"b{layer}"] = np.zeros(fan_out)
        self.num_layers = len(sizes) - 1
        self._cache: Optional[Dict[str, List[np.ndarray]]] = None

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #

    def logits(self, states: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        """Raw (unmasked) logits for a batch of states ``(B, input_size)``.

        With ``keep_cache=True`` the layer activations are retained for a
        subsequent :meth:`backward_from_dlogits`.
        """
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if x.shape[1] != self.input_size:
            raise ConfigError(
                f"state has {x.shape[1]} features, network expects "
                f"{self.input_size}"
            )
        pre_acts: List[np.ndarray] = []
        acts: List[np.ndarray] = [x]
        h = x
        for layer in range(self.num_layers):
            z = h @ self.params[f"W{layer}"] + self.params[f"b{layer}"]
            pre_acts.append(z)
            if layer < self.num_layers - 1:
                h = np.maximum(z, 0.0)  # ReLU
                acts.append(h)
            else:
                h = z
        if keep_cache:
            self._cache = {"pre": pre_acts, "act": acts}
        return h

    @staticmethod
    def masked_softmax(logits: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Row-wise softmax with illegal entries forced to probability 0.

        Args:
            logits: ``(B, A)`` raw scores.
            masks: ``(B, A)`` booleans, True = legal.  Every row must have
                at least one legal action.
        """
        masks = np.asarray(masks, dtype=bool)
        if masks.shape != logits.shape:
            raise ConfigError(
                f"mask shape {masks.shape} != logits shape {logits.shape}"
            )
        if not np.all(masks.any(axis=1)):
            raise ConfigError("a state has no legal action")
        masked = np.where(masks, logits, _NEG_INF)
        shifted = masked - masked.max(axis=1, keepdims=True)
        exp = np.exp(shifted) * masks
        return exp / exp.sum(axis=1, keepdims=True)

    def probabilities(
        self,
        states: np.ndarray,
        masks: np.ndarray,
        keep_cache: bool = False,
    ) -> np.ndarray:
        """Masked action distribution ``(B, A)`` for a batch of states."""
        return self.masked_softmax(self.logits(states, keep_cache), masks)

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #

    def backward_from_dlogits(self, dlogits: np.ndarray) -> Dict[str, np.ndarray]:
        """Backpropagate ``dLoss/dlogits`` through the cached forward pass.

        Returns:
            Gradient arrays keyed like :attr:`params`.  The cache is
            consumed (one backward per forward).

        Raises:
            ConfigError: if no forward pass with ``keep_cache=True``
                preceded this call.
        """
        if self._cache is None:
            raise ConfigError("no cached forward pass; call logits(keep_cache=True)")
        pre, act = self._cache["pre"], self._cache["act"]
        self._cache = None
        grads: Dict[str, np.ndarray] = {}
        delta = np.asarray(dlogits, dtype=np.float64)
        for layer in range(self.num_layers - 1, -1, -1):
            grads[f"W{layer}"] = act[layer].T @ delta
            grads[f"b{layer}"] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self.params[f"W{layer}"].T) * (pre[layer - 1] > 0)
        return grads

    def policy_gradient(
        self,
        states: np.ndarray,
        masks: np.ndarray,
        actions: Sequence[int],
        weights: Sequence[float],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """Gradients of ``-sum_i weights_i * log pi(actions_i | states_i)``.

        With ``weights = advantages`` this is the REINFORCE update of
        Eq. (3); with ``weights = 1`` it is the imitation cross-entropy.

        Returns:
            ``(grads, mean_negative_log_likelihood)``.
        """
        probs = self.probabilities(states, masks, keep_cache=True)
        batch = probs.shape[0]
        actions = np.asarray(actions, dtype=int)
        weights_arr = np.asarray(weights, dtype=np.float64)
        if actions.shape[0] != batch or weights_arr.shape[0] != batch:
            raise ConfigError("states, actions and weights must align")
        onehot = np.zeros_like(probs)
        onehot[np.arange(batch), actions] = 1.0
        if np.any(probs[np.arange(batch), actions] <= 0.0):
            raise ConfigError("an illegal (zero-probability) action was taken")
        # d(-w log pi_a)/dlogits = w * (probs - onehot); average over batch.
        dlogits = weights_arr[:, None] * (probs - onehot) / batch
        grads = self.backward_from_dlogits(dlogits)
        nll = float(
            -np.mean(np.log(probs[np.arange(batch), actions]))
        )
        return grads, nll

    # ------------------------------------------------------------------ #
    # parameter plumbing
    # ------------------------------------------------------------------ #

    def get_params(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays."""
        return {k: v.copy() for k, v in self.params.items()}

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        """Load parameters (shapes must match exactly)."""
        for key, value in self.params.items():
            if key not in params:
                raise ConfigError(f"missing parameter {key}")
            if params[key].shape != value.shape:
                raise ConfigError(
                    f"parameter {key}: shape {params[key].shape} != "
                    f"{value.shape}"
                )
        for key in self.params:
            self.params[key] = np.asarray(params[key], dtype=np.float64).copy()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(v.size for v in self.params.values())
