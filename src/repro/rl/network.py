"""The policy network of Sec. IV, in pure NumPy.

Architecture: ``input -> 256 -> 32 -> 32 -> num_actions`` with ReLU hidden
activations and a masked softmax output ("a 3 hidden layer neural network
with widths of 256, 32, and 32 ... at the output layer, a softmax function
will be used").

The layer math lives in :mod:`repro.rl.modules` (shared with the value
network and the graph policy); this class adds the action-space contract
both trainers need:

* :meth:`probabilities` — masked action distribution for a batch of
  states;
* :meth:`backward_from_dlogits` — gradients of any loss whose derivative
  w.r.t. the logits the caller supplies.  Both the cross-entropy loss of
  imitation learning and the REINFORCE policy-gradient loss have the form
  ``dlogits = weight * (probs - onehot(action))``, so a single backward
  covers both.

Action masking: illegal logits are driven to ``-inf`` before the softmax,
so illegal actions have exactly zero probability and receive exactly zero
gradient.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import NetworkConfig
from ..errors import ConfigError
from ..utils.rng import SeedLike, as_generator
from .modules import MLPStack
from .modules import masked_softmax as _masked_softmax

__all__ = ["PolicyNetwork"]


class PolicyNetwork:
    """Masked-softmax MLP policy.

    Args:
        input_size: observation dimensionality.
        config: architecture (hidden widths, action count).
        seed: weight-initialization seed (He initialization for ReLU).
    """

    #: Checkpoint/model-registry discriminator (see ``rl.checkpoints``).
    kind = "policy_mlp"

    def __init__(
        self,
        input_size: int,
        config: NetworkConfig | None = None,
        seed: SeedLike = None,
    ) -> None:
        if input_size < 1:
            raise ConfigError(f"input_size must be >= 1, got {input_size}")
        self.config = config if config is not None else NetworkConfig()
        self.input_size = input_size
        self.num_actions = self.config.num_actions
        rng = as_generator(seed)

        sizes = [input_size, *self.config.hidden_sizes, self.num_actions]
        self._stack = MLPStack(sizes, rng)
        #: Shared live parameter dict (the optimizer mutates it in place).
        self.params: Dict[str, np.ndarray] = self._stack.params
        self.num_layers = self._stack.num_layers

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #

    def logits(self, states: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        """Raw (unmasked) logits for a batch of states ``(B, input_size)``.

        With ``keep_cache=True`` the layer activations are retained for a
        subsequent :meth:`backward_from_dlogits`.
        """
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if x.shape[1] != self.input_size:
            raise ConfigError(
                f"state has {x.shape[1]} features, network expects "
                f"{self.input_size}"
            )
        return self._stack.forward(x, keep_cache)

    masked_softmax = staticmethod(_masked_softmax)

    def probabilities(
        self,
        states: np.ndarray,
        masks: np.ndarray,
        keep_cache: bool = False,
    ) -> np.ndarray:
        """Masked action distribution ``(B, A)`` for a batch of states."""
        return self.masked_softmax(self.logits(states, keep_cache), masks)

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #

    def backward_from_dlogits(self, dlogits: np.ndarray) -> Dict[str, np.ndarray]:
        """Backpropagate ``dLoss/dlogits`` through the cached forward pass.

        Returns:
            Gradient arrays keyed like :attr:`params`.  The cache is
            consumed (one backward per forward).

        Raises:
            ConfigError: if no forward pass with ``keep_cache=True``
                preceded this call.
        """
        if not self._stack.has_cache:
            raise ConfigError("no cached forward pass; call logits(keep_cache=True)")
        grads = self._stack.backward(np.asarray(dlogits, dtype=np.float64))
        assert isinstance(grads, dict)
        return grads

    def policy_gradient(
        self,
        states: np.ndarray,
        masks: np.ndarray,
        actions: Sequence[int],
        weights: Sequence[float],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """Gradients of ``-sum_i weights_i * log pi(actions_i | states_i)``.

        With ``weights = advantages`` this is the REINFORCE update of
        Eq. (3); with ``weights = 1`` it is the imitation cross-entropy.

        Returns:
            ``(grads, mean_negative_log_likelihood)``.
        """
        probs = self.probabilities(states, masks, keep_cache=True)
        batch = probs.shape[0]
        actions = np.asarray(actions, dtype=int)
        weights_arr = np.asarray(weights, dtype=np.float64)
        if actions.shape[0] != batch or weights_arr.shape[0] != batch:
            raise ConfigError("states, actions and weights must align")
        onehot = np.zeros_like(probs)
        onehot[np.arange(batch), actions] = 1.0
        if np.any(probs[np.arange(batch), actions] <= 0.0):
            raise ConfigError("an illegal (zero-probability) action was taken")
        # d(-w log pi_a)/dlogits = w * (probs - onehot); average over batch.
        dlogits = weights_arr[:, None] * (probs - onehot) / batch
        grads = self.backward_from_dlogits(dlogits)
        nll = float(
            -np.mean(np.log(probs[np.arange(batch), actions]))
        )
        return grads, nll

    # ------------------------------------------------------------------ #
    # trainer-facing batch interface (shared with GraphPolicyNetwork)
    # ------------------------------------------------------------------ #

    def make_policy(
        self,
        mode: str = "sample",
        seed: SeedLike = None,
        work_conserving: bool = True,
    ):
        """A :class:`repro.rl.agent.NetworkPolicy` driving this network."""
        from .agent import NetworkPolicy

        return NetworkPolicy(
            self, mode=mode, seed=seed, work_conserving=work_conserving
        )

    @staticmethod
    def _stack_steps(steps: Sequence) -> Tuple[np.ndarray, np.ndarray]:
        states = np.stack([step.observation for step in steps])
        masks = np.stack([step.mask for step in steps])
        return states, masks

    def policy_gradient_steps(
        self,
        steps: Sequence,
        actions: Sequence[int],
        weights: Sequence[float],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """:meth:`policy_gradient` over recorded trajectory steps."""
        states, masks = self._stack_steps(steps)
        return self.policy_gradient(states, masks, actions, weights)

    def step_probabilities(self, steps: Sequence) -> np.ndarray:
        """``(B, num_actions)`` action distributions for recorded steps."""
        states, masks = self._stack_steps(steps)
        return self.probabilities(states, masks)

    def entropy_gradient_steps(self, steps: Sequence) -> Dict[str, np.ndarray]:
        """Gradients of mean policy entropy over recorded steps."""
        from .modules import entropy_dlogits

        states, masks = self._stack_steps(steps)
        probs = self.probabilities(states, masks, keep_cache=True)
        return self.backward_from_dlogits(entropy_dlogits(probs))

    #: Critic input width (the PPO value head trains on these features).
    @property
    def value_feature_size(self) -> int:
        return self.input_size

    def value_features(self, steps: Sequence) -> np.ndarray:
        """``(B, value_feature_size)`` critic inputs for recorded steps —
        for the window model, the observation itself."""
        return np.stack([step.observation for step in steps])

    # ------------------------------------------------------------------ #
    # parameter plumbing
    # ------------------------------------------------------------------ #

    def get_params(self) -> Dict[str, np.ndarray]:
        """Copies of all parameter arrays."""
        return {k: v.copy() for k, v in self.params.items()}

    def set_params(self, params: Dict[str, np.ndarray]) -> None:
        """Load parameters (shapes must match exactly)."""
        for key, value in self.params.items():
            if key not in params:
                raise ConfigError(f"missing parameter {key}")
            if params[key].shape != value.shape:
                raise ConfigError(
                    f"parameter {key}: shape {params[key].shape} != "
                    f"{value.shape}"
                )
        for key in self.params:
            self.params[key] = np.asarray(params[key], dtype=np.float64).copy()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(v.size for v in self.params.values())
