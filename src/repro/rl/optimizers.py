"""Optimizers.  The paper uses rmsprop with ``alpha=1e-4``, ``rho=0.9``
and ``eps=1e-9`` for both supervised and reinforcement training (Sec. IV).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ConfigError

__all__ = ["RmsProp", "clip_global_norm"]


def clip_global_norm(
    grads: Dict[str, np.ndarray], max_norm: float
) -> float:
    """Scale ``grads`` in place so their global L2 norm is <= ``max_norm``.

    The global norm is taken over the concatenation of every gradient
    array (the standard "clip_by_global_norm" used by PPO
    implementations).  Gradients under the threshold are untouched —
    with clipping disabled (the default everywhere) the update path is
    bit-identical to the pre-clipping code.

    Returns:
        The pre-clip global norm (useful for telemetry).

    Raises:
        ConfigError: if ``max_norm`` is not positive.
    """
    if max_norm <= 0.0:
        raise ConfigError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for grad in grads.values():
        total += float(np.sum(grad * grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        factor = max_norm / norm
        for grad in grads.values():
            grad *= factor
    return norm


class RmsProp:
    """RMSProp with per-parameter moving average of squared gradients.

    Update rule (descent)::

        cache = rho * cache + (1 - rho) * grad^2
        param -= lr * grad / (sqrt(cache) + eps)

    Args:
        learning_rate: step size ``alpha``.
        rho: decay of the squared-gradient average.
        eps: numerical stabilizer.
    """

    def __init__(
        self,
        learning_rate: float = 1e-4,
        rho: float = 0.9,
        eps: float = 1e-9,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0.0 <= rho < 1.0:
            raise ConfigError("rho must lie in [0, 1)")
        if eps <= 0:
            raise ConfigError("eps must be positive")
        self.learning_rate = learning_rate
        self.rho = rho
        self.eps = eps
        self._cache: Dict[str, np.ndarray] = {}

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        """Apply one in-place descent step to ``params``.

        Raises:
            ConfigError: if a gradient is missing or shaped wrong.
        """
        for key, param in params.items():
            if key not in grads:
                raise ConfigError(f"missing gradient for {key}")
            grad = grads[key]
            if grad.shape != param.shape:
                raise ConfigError(
                    f"gradient {key}: shape {grad.shape} != {param.shape}"
                )
            if not np.isfinite(grad).all():
                # A NaN/inf gradient silently poisons every later update
                # through the squared-gradient cache; fail loudly instead.
                raise ConfigError(f"non-finite gradient for {key}")
            cache = self._cache.get(key)
            if cache is None:
                cache = np.zeros_like(param)
                self._cache[key] = cache
            cache *= self.rho
            cache += (1.0 - self.rho) * grad * grad
            param -= self.learning_rate * grad / (np.sqrt(cache) + self.eps)

    def reset(self) -> None:
        """Drop accumulated state (fresh optimizer)."""
        self._cache.clear()
