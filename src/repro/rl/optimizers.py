"""Optimizers.  The paper uses rmsprop with ``alpha=1e-4``, ``rho=0.9``
and ``eps=1e-9`` for both supervised and reinforcement training (Sec. IV).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ConfigError

__all__ = ["RmsProp"]


class RmsProp:
    """RMSProp with per-parameter moving average of squared gradients.

    Update rule (descent)::

        cache = rho * cache + (1 - rho) * grad^2
        param -= lr * grad / (sqrt(cache) + eps)

    Args:
        learning_rate: step size ``alpha``.
        rho: decay of the squared-gradient average.
        eps: numerical stabilizer.
    """

    def __init__(
        self,
        learning_rate: float = 1e-4,
        rho: float = 0.9,
        eps: float = 1e-9,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0.0 <= rho < 1.0:
            raise ConfigError("rho must lie in [0, 1)")
        if eps <= 0:
            raise ConfigError("eps must be positive")
        self.learning_rate = learning_rate
        self.rho = rho
        self.eps = eps
        self._cache: Dict[str, np.ndarray] = {}

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        """Apply one in-place descent step to ``params``.

        Raises:
            ConfigError: if a gradient is missing or shaped wrong.
        """
        for key, param in params.items():
            if key not in grads:
                raise ConfigError(f"missing gradient for {key}")
            grad = grads[key]
            if grad.shape != param.shape:
                raise ConfigError(
                    f"gradient {key}: shape {grad.shape} != {param.shape}"
                )
            if not np.isfinite(grad).all():
                # A NaN/inf gradient silently poisons every later update
                # through the squared-gradient cache; fail loudly instead.
                raise ConfigError(f"non-finite gradient for {key}")
            cache = self._cache.get(key)
            if cache is None:
                cache = np.zeros_like(param)
                self._cache[key] = cache
            cache *= self.rho
            cache += (1.0 - self.rho) * grad * grad
            param -= self.learning_rate * grad / (np.sqrt(cache) + self.eps)

    def reset(self) -> None:
        """Drop accumulated state (fresh optimizer)."""
        self._cache.clear()
