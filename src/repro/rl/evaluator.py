"""Batched policy inference for MCTS leaf evaluation.

Network-guided MCTS calls the policy thousands of times per decision —
once per expanded leaf (to order its candidate actions) and once per
rollout step.  Evaluated one state at a time, the matmuls are tiny and
the Python overhead dominates.  :class:`PolicyEvaluator` evaluates a
whole *wave* of leaf environments in one forward pass instead: the MLP
path renders all states through
:class:`repro.envarr.observation.BatchObservationBuilder`, the graph
path stacks all lanes' node states and runs the batched CSR message
passing of :class:`repro.rl.gnn.GraphPolicyNetwork` — so Spear's batched
search (``MctsConfig.rollout_batch``) amortizes network cost across the
wave exactly like it amortizes the rollout kernel.

Batch evaluation is numerically the same computation as the sequential
policy adapters (pinned by a property-based equivalence test); only the
Python-loop overhead changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import EnvConfig
from ..env.actions import PROCESS, Action
from ..envarr.graphdata import GraphArrays, graph_arrays
from ..envarr.observation import (
    BatchObservationBuilder,
    node_state_batch,
    task_feature_table,
)
from ..errors import ConfigError, EnvironmentStateError
from ..utils.rng import SeedLike, as_generator
from .agent import build_action_mask
from .gnn import build_graph_action_mask
from .modules import masked_softmax

__all__ = ["PolicyEvaluator"]

#: One (legal actions, their probabilities) pair per evaluated state.
Distribution = Tuple[List[Action], np.ndarray]


class PolicyEvaluator:
    """Evaluate one policy network over many same-graph states at once.

    Args:
        network: a :class:`~repro.rl.network.PolicyNetwork` or
            :class:`~repro.rl.gnn.GraphPolicyNetwork`.
        env_config: environment shape the states come from (the MLP path
            requires ``max_ready`` to match the network's window).
        graph_or_arrays: the job every evaluated environment runs.
        work_conserving: mask PROCESS away whenever a task fits — must
            match the search's expansion-filter setting so the evaluator
            scores exactly the candidate set the tree expands.

    The batch paths read array-backend internals, so evaluated
    environments must be :class:`~repro.envarr.env.ArraySchedulingEnv`
    lanes (batched MCTS guarantees this).
    """

    def __init__(
        self,
        network,
        env_config: EnvConfig,
        graph_or_arrays,
        work_conserving: bool = True,
    ) -> None:
        self.network = network
        self.env_config = env_config
        self.work_conserving = work_conserving
        kind = getattr(network, "kind", "policy_mlp")
        if kind == "policy_mlp":
            self._builder = BatchObservationBuilder(graph_or_arrays, env_config)
            self.arrays = self._builder.arrays
            if env_config.max_ready != network.num_actions - 1:
                raise ConfigError(
                    f"env max_ready={env_config.max_ready} does not match "
                    f"network action space {network.num_actions}"
                )
            if self._builder.size != network.input_size:
                raise ConfigError(
                    f"observation size {self._builder.size} != network "
                    f"input {network.input_size}"
                )
        elif kind == "policy_gnn":
            self.arrays = (
                graph_or_arrays
                if isinstance(graph_or_arrays, GraphArrays)
                else graph_arrays(graph_or_arrays)
            )
            if self.arrays.num_resources != network.num_resources:
                raise ConfigError(
                    f"graph has {self.arrays.num_resources} resources, "
                    f"network expects {network.num_resources}"
                )
            self._static_table = task_feature_table(self.arrays, env_config)
        else:
            raise ConfigError(f"cannot batch-evaluate model kind {kind!r}")
        self.kind = kind
        self.graph = self.arrays.graph

    # ------------------------------------------------------------------ #

    def distributions(self, envs: Sequence) -> List[Distribution]:
        """Per-state legal actions and their probabilities (sum to 1)."""
        if not envs:
            return []
        if self.kind == "policy_mlp":
            return self._distributions_mlp(envs)
        return self._distributions_gnn(envs)

    def _distributions_mlp(self, envs: Sequence) -> List[Distribution]:
        num_actions = self.network.num_actions
        observations = self._builder.build_batch(envs)
        masks = np.stack(
            [
                build_action_mask(env, num_actions, self.work_conserving)
                for env in envs
            ]
        )
        probs = self.network.probabilities(observations, masks)
        process_index = num_actions - 1
        out: List[Distribution] = []
        for b in range(len(envs)):
            legal = np.nonzero(masks[b])[0]
            actions = [
                PROCESS if index == process_index else int(index)
                for index in legal
            ]
            out.append((actions, probs[b, legal]))
        return out

    def _distributions_gnn(self, envs: Sequence) -> List[Distribution]:
        node_states, globals_vec, ready_lists = node_state_batch(
            self.arrays, self.env_config, envs
        )
        masks = [
            build_graph_action_mask(env, self.work_conserving) for env in envs
        ]
        logits = self.network.forward_group(
            self.arrays, self._static_table, node_states, globals_vec,
            ready_lists,
        )
        padded = np.zeros(logits.shape, dtype=bool)
        for b, mask in enumerate(masks):
            padded[b, : len(mask)] = mask
        probs = masked_softmax(logits, padded)
        out: List[Distribution] = []
        for b, mask in enumerate(masks):
            process_index = len(mask) - 1
            legal = np.nonzero(mask)[0]
            actions = [
                PROCESS if index == process_index else int(index)
                for index in legal
            ]
            out.append((actions, probs[b, legal]))
        return out

    def action_probabilities(self, envs: Sequence) -> List[Dict[Action, float]]:
        """Per-state env-action -> probability maps (the leaf-prior form
        MCTS consumes; matches ``Policy.action_probabilities``)."""
        return [
            {action: float(p) for action, p in zip(actions, probs)}
            for actions, probs in self.distributions(envs)
        ]

    # ------------------------------------------------------------------ #

    def rollout_many(
        self,
        envs: Sequence,
        limit: int,
        mode: str = "sample",
        rng: SeedLike = None,
    ) -> List[int]:
        """Play *clones* of ``envs`` to completion with the network; one
        batched forward per simulation step drives every live lane.

        Returns per-lane makespans; the inputs are never mutated.
        """
        generator = as_generator(rng)
        sims = [env.clone() for env in envs]
        pending = [i for i, sim in enumerate(sims) if not sim.done]
        steps = 0
        while pending:
            if steps >= limit:
                raise EnvironmentStateError("batched network rollout livelocked")
            active = [sims[i] for i in pending]
            for sim, (actions, probs) in zip(active, self.distributions(active)):
                if mode == "greedy":
                    choice = int(np.argmax(probs))
                else:
                    choice = int(generator.choice(len(probs), p=probs))
                sim.step(actions[choice])
            pending = [i for i in pending if not sims[i].done]
            steps += 1
        return [sim.makespan for sim in sims]
