"""Dataset collection and training for the value network.

Rolls a (policy-network or heuristic) policy over training graphs and
records ``(observation, remaining makespan)`` at every decision; the
remaining makespan of a step is ``makespan - now`` at that step, i.e. the
negative of the reward-to-go.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..env.observation import ObservationBuilder
from ..envarr.backend import make_env
from ..errors import EnvironmentStateError
from ..schedulers.base import Policy
from .value_network import ValueNetwork

__all__ = ["collect_value_dataset", "train_value_network"]


def collect_value_dataset(
    graphs: Sequence[TaskGraph],
    policy_factory,
    env_config: EnvConfig | None = None,
    episodes_per_graph: int = 1,
    max_steps: int = 10_000,
) -> Tuple[np.ndarray, np.ndarray]:
    """Roll policies over ``graphs``; return (states, remaining-makespans).

    Args:
        graphs: workload to roll over.
        policy_factory: zero-arg callable building a fresh policy per
            episode (heuristics give a cheap, surprisingly good dataset).
        env_config: environment shape.
        episodes_per_graph: repeats per graph (>1 useful for stochastic
            policies).
    """

    env_config = env_config if env_config is not None else EnvConfig(
        process_until_completion=True
    )
    states: List[np.ndarray] = []
    times: List[int] = []
    episode_ends: List[Tuple[int, int]] = []  # (start index, makespan)
    for graph in graphs:
        builder = ObservationBuilder(graph, env_config)
        for _ in range(episodes_per_graph):
            env = make_env(graph, env_config)
            policy: Policy = policy_factory()
            policy.begin_episode(env)
            first = len(states)
            steps = 0
            while not env.done:
                if steps >= max_steps:
                    raise EnvironmentStateError("value rollout livelocked")
                states.append(builder.build(env))
                times.append(env.now)
                env.step(policy.select(env))
                steps += 1
            episode_ends.append((first, env.makespan))

    targets = np.empty(len(states), dtype=np.float64)
    bounds = [start for start, _ in episode_ends] + [len(states)]
    for (start, makespan), end in zip(episode_ends, bounds[1:]):
        for i in range(start, end):
            targets[i] = makespan - times[i]
    return np.stack(states), targets


def train_value_network(
    graphs: Sequence[TaskGraph],
    policy_factory,
    env_config: EnvConfig | None = None,
    episodes_per_graph: int = 1,
    epochs: int = 50,
    seed: int = 0,
) -> ValueNetwork:
    """Collect a dataset and fit a :class:`ValueNetwork` on it."""

    env_config = env_config if env_config is not None else EnvConfig(
        process_until_completion=True
    )
    states, targets = collect_value_dataset(
        graphs, policy_factory, env_config, episodes_per_graph
    )
    network = ValueNetwork(states.shape[1], seed=seed)
    network.fit(states, targets, epochs=epochs, seed=seed)
    return network
