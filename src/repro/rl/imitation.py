"""Supervised pre-training on a heuristic teacher (Sec. IV).

"Prior to reinforcement learning training, we initialize our network by
using supervised training.  It is necessary to teach the network to
imitate a greedy heuristic approach such as the critical path algorithm
... otherwise, simulations with a completely random network result in
extremely long and meaningless trajectories."

The trainer rolls the teacher policy over the training graphs, records
(state, mask, teacher action) triples at every decision, and minimizes the
cross-entropy of the network's masked softmax against the teacher's
choices with rmsprop mini-batches.  The optimizer/minibatch plumbing is
shared with the rollout trainers (:mod:`repro.rl.trainer`); this class
is just the cross-entropy loss.  Works with any policy model: the MLP
keeps its historical stacked-array dataset (bit-identical numerics), the
graph policy records per-step graph observations via the model's own
policy adapter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..env.actions import PROCESS
from ..env.observation import ObservationBuilder
from ..envarr.backend import make_env
from ..errors import ConfigError, EnvironmentStateError
from ..schedulers.base import Policy
from ..schedulers.policies import CriticalPathPolicy
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from ..utils.rng import SeedLike
from .agent import build_action_mask
from .network import PolicyNetwork
from .trainer import TrainerBase, iterate_minibatches
from .trajectories import Step

__all__ = ["ImitationTrainer", "ImitationDataset"]


@dataclass
class ImitationDataset:
    """Stacked supervised examples: states, masks and teacher actions."""

    states: np.ndarray
    masks: np.ndarray
    actions: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]


class ImitationTrainer(TrainerBase):
    """Cross-entropy imitation of a heuristic teacher.

    Args:
        network: the policy network to initialize (MLP or graph policy).
        env_config: environment shape for teacher rollouts.
        teacher_factory: builds the teacher per episode (default: the
            critical-path heuristic the paper names).
        learning_rate / rho / eps: rmsprop hyper-parameters (paper values
            via :class:`TrainingConfig` defaults).
        seed: shuffling RNG.
        telemetry: where the ``imitation.loss`` curve reports; ``None``
            defers to the globally active pipeline.
    """

    algo = "imitation"

    def __init__(
        self,
        network: PolicyNetwork,
        env_config: EnvConfig | None = None,
        teacher_factory: Callable[[], Policy] | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        super().__init__(network, env_config, training, seed, telemetry)
        self.teacher_factory = (
            teacher_factory if teacher_factory is not None else CriticalPathPolicy
        )

    # ------------------------------------------------------------------ #

    def collect(self, graphs: Sequence[TaskGraph]) -> ImitationDataset:
        """Roll the teacher over ``graphs`` and record every decision.

        Only available for fixed-window (MLP) policies, whose decisions
        stack into dense arrays; graph policies record via
        :meth:`collect_steps`.
        """
        if getattr(self.network, "kind", "policy_mlp") != "policy_mlp":
            raise ConfigError(
                "stacked imitation datasets need a fixed action window; "
                "use collect_steps() for graph policies"
            )
        states: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        actions: List[int] = []
        process_index = self.network.num_actions - 1
        for graph in graphs:
            env = make_env(graph, self.env_config)
            builder = ObservationBuilder(graph, self.env_config)
            teacher = self.teacher_factory()
            teacher.begin_episode(env)
            steps = 0
            while not env.done:
                if steps >= self.training.max_episode_steps:
                    raise EnvironmentStateError("teacher rollout livelocked")
                action = teacher.select(env)
                states.append(builder.build(env))
                masks.append(
                    build_action_mask(env, self.network.num_actions)
                )
                actions.append(process_index if action == PROCESS else action)
                env.step(action)
                steps += 1
        return ImitationDataset(
            states=np.stack(states),
            masks=np.stack(masks),
            actions=np.asarray(actions, dtype=int),
        )

    def collect_steps(self, graphs: Sequence[TaskGraph]) -> List[Step]:
        """Model-agnostic teacher decisions as trajectory :class:`Step`\\ s.

        The network's own policy adapter featurizes each state, so the
        recorded observations match what the model consumes — for the
        graph policy that is a per-node graph observation, not a stacked
        window.
        """
        # Full legal-action masks (not work-conserving), matching the
        # stacked MLP dataset: any teacher decision must be in-mask.
        observer = self.network.make_policy(mode="greedy", work_conserving=False)
        records: List[Step] = []
        for graph in graphs:
            env = make_env(graph, self.env_config)
            observer.begin_episode(env)
            teacher = self.teacher_factory()
            teacher.begin_episode(env)
            steps = 0
            while not env.done:
                if steps >= self.training.max_episode_steps:
                    raise EnvironmentStateError("teacher rollout livelocked")
                action = teacher.select(env)
                observation, mask = observer.observe(env)
                index = len(mask) - 1 if action == PROCESS else int(action)
                records.append(Step(observation, mask, index, 0))
                env.step(action)
                steps += 1
        return records

    # ------------------------------------------------------------------ #

    def train_epoch(self, dataset: ImitationDataset) -> float:
        """One pass of shuffled mini-batch cross-entropy; returns mean NLL."""
        losses: List[float] = []
        for batch in iterate_minibatches(
            self._rng, len(dataset), self.training.batch_size
        ):
            grads, nll = self.network.policy_gradient(
                dataset.states[batch],
                dataset.masks[batch],
                dataset.actions[batch],
                np.ones(len(batch)),
            )
            self.apply_gradients(grads)
            losses.append(nll)
        return float(np.mean(losses))

    def train_epoch_steps(self, records: Sequence[Step]) -> float:
        """Model-agnostic variant of :meth:`train_epoch` over steps."""
        losses: List[float] = []
        for batch in iterate_minibatches(
            self._rng, len(records), self.training.batch_size
        ):
            steps = [records[i] for i in batch]
            actions = [step.action_index for step in steps]
            grads, nll = self.network.policy_gradient_steps(
                steps, actions, np.ones(len(batch))
            )
            self.apply_gradients(grads)
            losses.append(nll)
        return float(np.mean(losses))

    def fit(
        self,
        graphs: Sequence[TaskGraph],
        epochs: Optional[int] = None,
    ) -> List[float]:
        """Collect once, then train for ``epochs``; returns the loss curve.

        With telemetry active the pass is wrapped in an
        ``imitation.fit`` span and each epoch streams one point of the
        ``imitation.loss`` series.
        """
        tm = _telemetry.for_config(self.telemetry)
        total = epochs if epochs is not None else self.training.supervised_epochs
        mlp = getattr(self.network, "kind", "policy_mlp") == "policy_mlp"
        with tm.span(
            "imitation.fit", graphs=len(graphs), epochs=total
        ) as span:
            dataset = self.collect(graphs) if mlp else self.collect_steps(graphs)
            losses: List[float] = []
            for epoch in range(total):
                loss = (
                    self.train_epoch(dataset)
                    if mlp
                    else self.train_epoch_steps(dataset)
                )
                losses.append(loss)
                if tm.enabled:
                    tm.record("imitation.loss", epoch, loss)
            span.set(examples=len(dataset))
        return losses

    def accuracy(self, dataset: ImitationDataset) -> float:
        """Fraction of states where the network's argmax matches the teacher."""
        probs = self.network.probabilities(dataset.states, dataset.masks)
        predicted = probs.argmax(axis=1)
        return float(np.mean(predicted == dataset.actions))
