"""Supervised pre-training on a heuristic teacher (Sec. IV).

"Prior to reinforcement learning training, we initialize our network by
using supervised training.  It is necessary to teach the network to
imitate a greedy heuristic approach such as the critical path algorithm
... otherwise, simulations with a completely random network result in
extremely long and meaningless trajectories."

The trainer rolls the teacher policy over the training graphs, records
(state, mask, teacher action) triples at every decision, and minimizes the
cross-entropy of the network's masked softmax against the teacher's
choices with rmsprop mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..env.actions import PROCESS
from ..env.observation import ObservationBuilder
from ..envarr.backend import make_env
from ..errors import EnvironmentStateError
from ..schedulers.base import Policy
from ..schedulers.policies import CriticalPathPolicy
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from ..utils.rng import SeedLike, as_generator
from .agent import build_action_mask
from .network import PolicyNetwork
from .optimizers import RmsProp

__all__ = ["ImitationTrainer", "ImitationDataset"]


@dataclass
class ImitationDataset:
    """Stacked supervised examples: states, masks and teacher actions."""

    states: np.ndarray
    masks: np.ndarray
    actions: np.ndarray

    def __len__(self) -> int:
        return self.states.shape[0]


class ImitationTrainer:
    """Cross-entropy imitation of a heuristic teacher.

    Args:
        network: the policy network to initialize.
        env_config: environment shape for teacher rollouts.
        teacher_factory: builds the teacher per episode (default: the
            critical-path heuristic the paper names).
        learning_rate / rho / eps: rmsprop hyper-parameters (paper values
            via :class:`TrainingConfig` defaults).
        seed: shuffling RNG.
        telemetry: where the ``imitation.loss`` curve reports; ``None``
            defers to the globally active pipeline.
    """

    def __init__(
        self,
        network: PolicyNetwork,
        env_config: EnvConfig | None = None,
        teacher_factory: Callable[[], Policy] | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.network = network
        self.env_config = env_config if env_config is not None else EnvConfig()
        self.teacher_factory = (
            teacher_factory if teacher_factory is not None else CriticalPathPolicy
        )
        self.training = training if training is not None else TrainingConfig()
        self.optimizer = RmsProp(
            self.training.learning_rate, self.training.rho, self.training.eps
        )
        self._rng = as_generator(seed)
        self.telemetry = telemetry

    # ------------------------------------------------------------------ #

    def collect(self, graphs: Sequence[TaskGraph]) -> ImitationDataset:
        """Roll the teacher over ``graphs`` and record every decision."""
        states: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        actions: List[int] = []
        process_index = self.network.num_actions - 1
        for graph in graphs:
            env = make_env(graph, self.env_config)
            builder = ObservationBuilder(graph, self.env_config)
            teacher = self.teacher_factory()
            teacher.begin_episode(env)
            steps = 0
            while not env.done:
                if steps >= self.training.max_episode_steps:
                    raise EnvironmentStateError("teacher rollout livelocked")
                action = teacher.select(env)
                states.append(builder.build(env))
                masks.append(
                    build_action_mask(env, self.network.num_actions)
                )
                actions.append(process_index if action == PROCESS else action)
                env.step(action)
                steps += 1
        return ImitationDataset(
            states=np.stack(states),
            masks=np.stack(masks),
            actions=np.asarray(actions, dtype=int),
        )

    def train_epoch(self, dataset: ImitationDataset) -> float:
        """One pass of shuffled mini-batch cross-entropy; returns mean NLL."""
        indices = self._rng.permutation(len(dataset))
        batch_size = self.training.batch_size
        losses: List[float] = []
        for start in range(0, len(dataset), batch_size):
            batch = indices[start : start + batch_size]
            grads, nll = self.network.policy_gradient(
                dataset.states[batch],
                dataset.masks[batch],
                dataset.actions[batch],
                np.ones(len(batch)),
            )
            self.optimizer.step(self.network.params, grads)
            losses.append(nll)
        return float(np.mean(losses))

    def fit(
        self,
        graphs: Sequence[TaskGraph],
        epochs: Optional[int] = None,
    ) -> List[float]:
        """Collect once, then train for ``epochs``; returns the loss curve.

        With telemetry active the pass is wrapped in an
        ``imitation.fit`` span and each epoch streams one point of the
        ``imitation.loss`` series.
        """
        tm = _telemetry.for_config(self.telemetry)
        total = epochs if epochs is not None else self.training.supervised_epochs
        with tm.span(
            "imitation.fit", graphs=len(graphs), epochs=total
        ) as span:
            dataset = self.collect(graphs)
            losses: List[float] = []
            for epoch in range(total):
                loss = self.train_epoch(dataset)
                losses.append(loss)
                if tm.enabled:
                    tm.record("imitation.loss", epoch, loss)
            span.set(examples=len(dataset))
        return losses

    def accuracy(self, dataset: ImitationDataset) -> float:
        """Fraction of states where the network's argmax matches the teacher."""
        probs = self.network.probabilities(dataset.states, dataset.masks)
        predicted = probs.argmax(axis=1)
        return float(np.mean(predicted == dataset.actions))
