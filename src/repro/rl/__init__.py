"""Deep reinforcement learning for scheduling (Sec. III-D, IV).

A from-scratch NumPy reproduction of the paper's Theano model:

* :class:`PolicyNetwork` — 3 hidden layers (256/32/32, ReLU) + softmax
  with action masking, manual backprop.
* :class:`RmsProp` — the optimizer with the paper's hyper-parameters.
* :class:`NetworkPolicy` — drives a :class:`repro.env.SchedulingEnv` with
  the network (sampling or greedy).
* :class:`ImitationTrainer` — supervised pre-training on the critical-path
  heuristic ("it is necessary to teach the network to imitate a greedy
  heuristic approach", Sec. IV).
* :class:`ReinforceTrainer` — REINFORCE with a 20-rollout average baseline.
"""

from .network import PolicyNetwork
from .optimizers import RmsProp
from .agent import NetworkPolicy
from .imitation import ImitationTrainer
from .reinforce import ReinforceTrainer, EpochStats
from .checkpoints import (
    save_checkpoint,
    load_checkpoint,
    save_value_checkpoint,
    load_value_checkpoint,
)
from .value_network import ValueNetwork
from .value_training import collect_value_dataset, train_value_network

__all__ = [
    "PolicyNetwork",
    "RmsProp",
    "NetworkPolicy",
    "ImitationTrainer",
    "ReinforceTrainer",
    "EpochStats",
    "save_checkpoint",
    "load_checkpoint",
    "save_value_checkpoint",
    "load_value_checkpoint",
    "ValueNetwork",
    "collect_value_dataset",
    "train_value_network",
]
