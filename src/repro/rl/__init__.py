"""Deep reinforcement learning for scheduling (Sec. III-D, IV).

A from-scratch NumPy reproduction of the paper's Theano model:

* :class:`PolicyNetwork` — 3 hidden layers (256/32/32, ReLU) + softmax
  with action masking, manual backprop.
* :class:`RmsProp` — the optimizer with the paper's hyper-parameters.
* :class:`NetworkPolicy` — drives a :class:`repro.env.SchedulingEnv` with
  the network (sampling or greedy).
* :class:`ImitationTrainer` — supervised pre-training on the critical-path
  heuristic ("it is necessary to teach the network to imitate a greedy
  heuristic approach", Sec. IV).
* :class:`ReinforceTrainer` — REINFORCE with a 20-rollout average baseline.

The package is organized as three pluggable layers (DESIGN.md Sec. 16):

* **models** — :mod:`repro.rl.modules` (differentiable NumPy module
  stack) underneath :class:`PolicyNetwork`, :class:`ValueNetwork` and the
  scale-invariant :class:`GraphPolicyNetwork`;
* **trainers** — the :class:`Trainer` skeleton with
  :class:`ReinforceTrainer`, :class:`PpoTrainer` and
  :class:`ImitationTrainer` as thin loss definitions;
* **inference** — the per-episode policy adapters plus
  :class:`PolicyEvaluator`, the batched leaf/rollout evaluator MCTS uses.
"""

from .network import PolicyNetwork
from .gnn import GraphNetworkPolicy, GraphPolicyNetwork
from .optimizers import RmsProp, clip_global_norm
from .agent import NetworkPolicy
from .trainer import Trainer, TrainerBase
from .imitation import ImitationTrainer
from .reinforce import ReinforceTrainer, EpochStats
from .ppo import PpoTrainer
from .evaluator import PolicyEvaluator
from .checkpoints import (
    save_checkpoint,
    load_checkpoint,
    load_policy_checkpoint,
    save_value_checkpoint,
    load_value_checkpoint,
)
from .value_network import ValueNetwork
from .value_training import collect_value_dataset, train_value_network

__all__ = [
    "PolicyNetwork",
    "GraphPolicyNetwork",
    "GraphNetworkPolicy",
    "RmsProp",
    "clip_global_norm",
    "NetworkPolicy",
    "Trainer",
    "TrainerBase",
    "ImitationTrainer",
    "ReinforceTrainer",
    "PpoTrainer",
    "PolicyEvaluator",
    "EpochStats",
    "save_checkpoint",
    "load_checkpoint",
    "load_policy_checkpoint",
    "save_value_checkpoint",
    "load_value_checkpoint",
    "ValueNetwork",
    "collect_value_dataset",
    "train_value_network",
]
