"""Episode rollout and return computation shared by both trainers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..env.scheduling_env import SchedulingEnv
from ..errors import EnvironmentStateError
from .agent import NetworkPolicy

__all__ = ["Step", "Trajectory", "rollout_trajectory", "returns_to_go"]


@dataclass(frozen=True)
class Step:
    """One decision: state, mask, chosen network-action index, reward."""

    observation: np.ndarray
    mask: np.ndarray
    action_index: int
    reward: int


@dataclass(frozen=True)
class Trajectory:
    """A full episode's decisions plus its outcome."""

    steps: List[Step]
    makespan: int

    @property
    def total_reward(self) -> int:
        """Sum of rewards; equals ``-makespan`` by construction."""
        return sum(step.reward for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def rollout_trajectory(
    env: SchedulingEnv,
    policy: NetworkPolicy,
    max_steps: int,
) -> Trajectory:
    """Play ``policy`` on ``env`` to termination, recording every decision.

    Raises:
        EnvironmentStateError: if ``max_steps`` is exceeded (livelock guard).
    """

    policy.begin_episode(env)
    steps: List[Step] = []
    while not env.done:
        if len(steps) >= max_steps:
            raise EnvironmentStateError(
                f"episode exceeded {max_steps} steps during training rollout"
            )
        action, observation, mask, index = policy.select_with_trace(env)
        result = env.step(action)
        steps.append(Step(observation, mask, index, result.reward))
    return Trajectory(steps=steps, makespan=env.makespan)


def returns_to_go(trajectory: Trajectory) -> np.ndarray:
    """Undiscounted reward-to-go ``G_t`` per step.

    ``G_0`` equals the negative makespan; schedule actions (reward 0)
    inherit the return of the remaining episode.
    """

    rewards = np.asarray([step.reward for step in trajectory.steps], dtype=np.float64)
    return np.cumsum(rewards[::-1])[::-1].copy()
