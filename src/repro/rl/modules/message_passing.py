"""Sparse DAG aggregation primitives for graph-structured policies.

A DAG's precedence edges are held as flat ``(parent, child)`` index
arrays (built once per graph from the memoized CSR adjacency of
:mod:`repro.envarr.graphdata`).  Message passing then reduces to two
scatter-sums per round:

* **child aggregation** — node ``i`` receives the sum of its children's
  embeddings: ``out[parent[k]] += h[child[k]]``;
* **parent aggregation** — the transposed direction:
  ``out[child[k]] += h[parent[k]]``.

The two are adjoint (``A_childᵀ = A_parent``), which is exactly what the
backward pass needs: the gradient of a child aggregation is a parent
aggregation of the upstream gradient, and vice versa.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EdgeList", "segment_sum", "segment_sum_batch"]


class EdgeList:
    """Flat precedence edges ``parent[k] -> child[k]`` of one DAG."""

    __slots__ = ("num_nodes", "parent", "child")

    def __init__(
        self, num_nodes: int, parent: np.ndarray, child: np.ndarray
    ) -> None:
        self.num_nodes = int(num_nodes)
        self.parent = np.ascontiguousarray(parent, dtype=np.int64)
        self.child = np.ascontiguousarray(child, dtype=np.int64)

    @classmethod
    def from_graph_arrays(cls, arrays) -> "EdgeList":
        """Edges from a :class:`repro.envarr.graphdata.GraphArrays`."""
        n = len(arrays.ids)
        counts = np.diff(arrays.child_indptr)
        parent = np.repeat(np.arange(n, dtype=np.int64), counts)
        return cls(n, parent, arrays.child_indices)

    @property
    def num_edges(self) -> int:
        return self.parent.shape[0]

    # Directed aggregations ------------------------------------------- #

    def aggregate_children(self, h: np.ndarray) -> np.ndarray:
        """``out[i] = sum_{j in children(i)} h[j]`` (batched or not)."""
        if h.ndim == 3:
            return segment_sum_batch(h, self.child, self.parent, self.num_nodes)
        return segment_sum(h, self.child, self.parent, self.num_nodes)

    def aggregate_parents(self, h: np.ndarray) -> np.ndarray:
        """``out[i] = sum_{j in parents(i)} h[j]`` — the adjoint of
        :meth:`aggregate_children`."""
        if h.ndim == 3:
            return segment_sum_batch(h, self.parent, self.child, self.num_nodes)
        return segment_sum(h, self.parent, self.child, self.num_nodes)


def segment_sum(
    h: np.ndarray, take: np.ndarray, put: np.ndarray, num_nodes: int
) -> np.ndarray:
    """``out[put[k]] += h[take[k]]`` over all edges; ``h`` is ``(N, H)``."""
    out = np.zeros((num_nodes, h.shape[1]))
    np.add.at(out, put, h[take])
    return out


def segment_sum_batch(
    h: np.ndarray, take: np.ndarray, put: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Batched :func:`segment_sum` over ``h`` of shape ``(B, N, H)``."""
    out = np.zeros((h.shape[0], num_nodes, h.shape[2]))
    np.add.at(out, (slice(None), put), h[:, take])
    return out
