"""Affine layer reading its weights from a shared parameter dict."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...errors import ConfigError
from .base import Module

__all__ = ["Linear", "init_linear"]


def init_linear(
    params: Dict[str, np.ndarray],
    weight: str,
    bias: str,
    fan_in: int,
    fan_out: int,
    rng: np.random.Generator,
    scale: Optional[float] = None,
) -> None:
    """He-initialize one affine layer into ``params``.

    Draw order matters: callers initialize layers front-to-back so a
    fixed seed reproduces the exact historical weight stream
    (``W = N(0, sqrt(2/fan_in))``, ``b = 0``).  ``scale`` overrides the
    He standard deviation (used by message-passing layers whose
    pre-activation sums several matmuls).
    """
    if scale is None:
        scale = np.sqrt(2.0 / fan_in)
    params[weight] = rng.normal(0.0, scale, size=(fan_in, fan_out))
    params[bias] = np.zeros(fan_out)


class Linear(Module):
    """``y = x @ W + b`` with ``W``/``b`` looked up by name at call time.

    The layer deliberately holds the *dict*, not the arrays: the
    optimizer updates arrays in place and ``set_params`` rebinds dict
    entries, and both must be visible on the next forward.
    """

    def __init__(
        self, params: Dict[str, np.ndarray], weight: str, bias: str
    ) -> None:
        self._params = params
        self.weight = weight
        self.bias = bias
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        if keep_cache:
            self._x = x
        return x @ self._params[self.weight] + self._params[self.bias]

    def backward(
        self, dout: np.ndarray, grads: Dict[str, np.ndarray]
    ) -> np.ndarray:
        if self._x is None:
            raise ConfigError(
                f"no cached forward for linear layer {self.weight!r}"
            )
        x, self._x = self._x, None
        grads[self.weight] = x.T @ dout
        grads[self.bias] = dout.sum(axis=0)
        return dout @ self._params[self.weight].T

    def backward_params_only(
        self, dout: np.ndarray, grads: Dict[str, np.ndarray]
    ) -> None:
        """Like :meth:`backward` but skips the input gradient — for the
        bottom layer of a stack, where ``dout @ W.T`` is dead work."""
        if self._x is None:
            raise ConfigError(
                f"no cached forward for linear layer {self.weight!r}"
            )
        x, self._x = self._x, None
        grads[self.weight] = x.T @ dout
        grads[self.bias] = dout.sum(axis=0)
