"""The module protocol: explicit forward/backward over a shared param dict."""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

__all__ = ["Module"]


class Module(abc.ABC):
    """One differentiable transformation.

    A module reads its parameters (if any) out of a shared name->array
    dict at call time and accumulates parameter gradients into a dict
    the caller provides.  ``forward(..., keep_cache=True)`` retains
    whatever intermediate state ``backward`` needs; the cache is
    consumed by the matching ``backward`` (one backward per forward).
    """

    @abc.abstractmethod
    def forward(self, x: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        """Compute the module's output for ``x``."""

    @abc.abstractmethod
    def backward(
        self, dout: np.ndarray, grads: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Given ``dLoss/dout``, write parameter gradients into ``grads``
        (keyed like the shared parameter dict) and return ``dLoss/dx``."""
