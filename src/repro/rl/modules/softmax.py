"""Masked softmax and the entropy/cross-entropy logit gradients.

These are functions, not stateful modules: both trainers differentiate
losses of the form ``dLoss/dlogits = f(probs)``, so the probability
computation and the closed-form logit gradients are all that is needed.
Illegal entries are driven to an effective ``-inf`` before the softmax,
giving them exactly zero probability and exactly zero gradient.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigError

__all__ = ["masked_softmax", "entropy_dlogits", "policy_entropy"]

_NEG_INF = -1e30


def masked_softmax(logits: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Row-wise softmax with illegal entries forced to probability 0.

    Args:
        logits: ``(B, A)`` raw scores.
        masks: ``(B, A)`` booleans, True = legal.  Every row must have
            at least one legal action.
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.shape != logits.shape:
        raise ConfigError(
            f"mask shape {masks.shape} != logits shape {logits.shape}"
        )
    if not np.all(masks.any(axis=1)):
        raise ConfigError("a state has no legal action")
    masked = np.where(masks, logits, _NEG_INF)
    shifted = masked - masked.max(axis=1, keepdims=True)
    exp = np.exp(shifted) * masks
    return exp / exp.sum(axis=1, keepdims=True)


def policy_entropy(probs: np.ndarray) -> float:
    """Mean per-row entropy of a batch of distributions (0 log 0 = 0)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        plogp = np.where(probs > 0, probs * np.log(probs), 0.0)
    return float(-plogp.sum(axis=1).mean())


def entropy_dlogits(probs: np.ndarray) -> np.ndarray:
    """``d(mean entropy)/dlogits`` for a batch of masked distributions.

    Zero-probability (masked) entries receive exactly zero gradient.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        logp = np.where(probs > 0, np.log(probs), 0.0)
    inner = -(logp + 1.0)
    expected = (probs * inner).sum(axis=1, keepdims=True)
    return probs * (inner - expected) / probs.shape[0]
