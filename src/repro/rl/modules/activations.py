"""Elementwise activations."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ...errors import ConfigError
from .base import Module

__all__ = ["ReLU"]


class ReLU(Module):
    """``y = max(x, 0)``; backward masks on the cached pre-activation."""

    def __init__(self) -> None:
        self._pre: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        if keep_cache:
            self._pre = x
        return np.maximum(x, 0.0)

    def backward(
        self, dout: np.ndarray, grads: Dict[str, np.ndarray]
    ) -> np.ndarray:
        if self._pre is None:
            raise ConfigError("no cached forward for ReLU")
        pre, self._pre = self._pre, None
        return dout * (pre > 0)
