"""A ReLU MLP trunk with a linear output layer.

This is the shared implementation behind ``PolicyNetwork`` and
``ValueNetwork``.  It reproduces the historical hand-rolled layer loop
exactly — same He-init RNG draw order (``W0, W1, ...``, biases zero),
same forward operation sequence (``z = h @ W + b``; ReLU between hidden
layers only), same backward (``grads[W] = act.T @ delta``;
``delta = (delta @ W.T) * (pre > 0)``) — so fixed-seed numerics are
bit-identical to the pre-refactor implementations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ...errors import ConfigError
from .activations import ReLU
from .base import Module
from .linear import Linear, init_linear

__all__ = ["MLPStack"]


class MLPStack:
    """Linear/ReLU stack over a shared parameter dict.

    Args:
        sizes: layer widths ``[input, *hidden, output]``.
        rng: weight-init generator (ignored if ``params`` already holds
            every layer, e.g. when rebuilding from a checkpoint).
        params: shared parameter dict to populate/read; a fresh dict is
            created when omitted.
        prefix: parameter-name prefix (``f"{prefix}W{i}"`` /
            ``f"{prefix}b{i}"``), so several stacks can share one dict.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        params: Optional[Dict[str, np.ndarray]] = None,
        prefix: str = "",
    ) -> None:
        sizes = list(sizes)
        if len(sizes) < 2:
            raise ConfigError("an MLP needs at least input and output sizes")
        if any(s < 1 for s in sizes):
            raise ConfigError(f"layer sizes must be positive, got {sizes}")
        self.sizes = sizes
        self.params: Dict[str, np.ndarray] = params if params is not None else {}
        self.prefix = prefix
        self.num_layers = len(sizes) - 1
        self._modules: List[Module] = []
        for layer, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            weight, bias = f"{prefix}W{layer}", f"{prefix}b{layer}"
            if weight not in self.params:
                if rng is None:
                    raise ConfigError(
                        f"no rng and no existing parameters for {weight!r}"
                    )
                init_linear(self.params, weight, bias, fan_in, fan_out, rng)
            self._modules.append(Linear(self.params, weight, bias))
            if layer < self.num_layers - 1:
                self._modules.append(ReLU())
        self._has_cache = False

    # ------------------------------------------------------------------ #

    @property
    def input_size(self) -> int:
        return self.sizes[0]

    @property
    def output_size(self) -> int:
        return self.sizes[-1]

    @property
    def has_cache(self) -> bool:
        """True iff a ``keep_cache`` forward awaits its backward."""
        return self._has_cache

    def forward(self, x: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        """Stacked forward pass over a batch ``(B, input_size)``."""
        h = x
        for module in self._modules:
            h = module.forward(h, keep_cache)
        if keep_cache:
            self._has_cache = True
        return h

    def backward(
        self,
        dout: np.ndarray,
        grads: Optional[Dict[str, np.ndarray]] = None,
        need_dx: bool = False,
    ) -> Union[Dict[str, np.ndarray], np.ndarray]:
        """Backprop ``dLoss/doutput`` through the cached forward.

        Returns the gradient dict (keyed like :attr:`params`), or — with
        ``need_dx=True`` — the input gradient, with the parameter
        gradients written into the caller-supplied ``grads``.  The cache
        is consumed (one backward per forward).
        """
        if not self._has_cache:
            raise ConfigError(
                "no cached forward pass; call forward(keep_cache=True)"
            )
        self._has_cache = False
        out_grads: Dict[str, np.ndarray] = grads if grads is not None else {}
        delta: np.ndarray = np.asarray(dout, dtype=np.float64)
        last = len(self._modules) - 1
        for position, module in enumerate(reversed(self._modules)):
            if position == last and isinstance(module, Linear) and not need_dx:
                # The input gradient of the bottom layer is only needed
                # when the stack feeds another differentiable stage;
                # skip the (often large) ``delta @ W0.T`` otherwise.
                module.backward_params_only(delta, out_grads)
            else:
                delta = module.backward(delta, out_grads)
        return delta if need_dx else out_grads
