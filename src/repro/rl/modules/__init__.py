"""A tiny differentiable module stack in pure NumPy.

Every learned model in ``repro.rl`` — the MLP policy, the value
regressor and the graph policy — is expressed over this package instead
of hand-rolling its own layer math.  The design constraints:

* **Explicit forward/backward.**  Each module computes its output and,
  given the loss gradient at its output, the gradient at its input plus
  the gradients of its own parameters.  No autograd tape: the call
  graphs here are short and static, and explicitness keeps the numerics
  auditable (the golden-trace tests pin them bit-for-bit).
* **Shared parameter dict with stable names.**  Modules do not own their
  arrays; they read them out of a caller-provided ``Dict[str, ndarray]``
  at call time.  This keeps three invariants the rest of the package
  relies on: the optimizer's in-place update (``param -= ...``) is
  visible to the module, ``set_params`` may rebind dict entries, and
  checkpoints serialize the dict as-is under stable keys.
* **Bit-compatibility.**  :class:`MLPStack` reproduces the exact
  floating-point operation sequence (and He-init RNG draw order) of the
  original hand-rolled ``PolicyNetwork``/``ValueNetwork`` layer loops,
  so re-expressing those classes over the stack changed no observable
  number.
"""

from .base import Module
from .linear import Linear, init_linear
from .activations import ReLU
from .softmax import masked_softmax, entropy_dlogits, policy_entropy
from .mlp import MLPStack
from .message_passing import EdgeList, segment_sum, segment_sum_batch

__all__ = [
    "Module",
    "Linear",
    "init_linear",
    "ReLU",
    "masked_softmax",
    "entropy_dlogits",
    "policy_entropy",
    "MLPStack",
    "EdgeList",
    "segment_sum",
    "segment_sum_batch",
]
