"""A value network: state -> predicted remaining makespan.

AlphaZero (which inspired Spear, Sec. I) pairs its policy with a *value*
head so rollouts can be truncated and scored without playing to the end.
The Spear paper keeps full rollouts; this module implements the natural
extension: a small MLP regressor trained on (state, observed
remaining-makespan) pairs from policy rollouts, used by
:class:`repro.core.guidance.TruncatedRollout` to cap rollout depth.

Architecture mirrors the policy trunk (ReLU MLP) with a single linear
output; training is mean-squared-error with rmsprop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..utils.rng import SeedLike, as_generator
from .optimizers import RmsProp

__all__ = ["ValueNetwork"]


class ValueNetwork:
    """MLP regressor predicting the remaining makespan of a state.

    Args:
        input_size: observation dimensionality (same featurization as the
            policy network).
        hidden_sizes: ReLU hidden widths (default: a slim 64/32 trunk —
            value targets are smoother than action preferences).
        seed: weight-initialization seed.
    """

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Tuple[int, ...] = (64, 32),
        seed: SeedLike = None,
    ) -> None:
        if input_size < 1:
            raise ConfigError("input_size must be >= 1")
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ConfigError("hidden_sizes must be positive")
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        rng = as_generator(seed)
        sizes = [input_size, *hidden_sizes, 1]
        self.params: Dict[str, np.ndarray] = {}
        for layer, (fan_in, fan_out) in enumerate(zip(sizes, sizes[1:])):
            scale = np.sqrt(2.0 / fan_in)
            self.params[f"W{layer}"] = rng.normal(0.0, scale, (fan_in, fan_out))
            self.params[f"b{layer}"] = np.zeros(fan_out)
        self.num_layers = len(sizes) - 1
        # Target normalization, fit on the first training batch.
        self._target_mean = 0.0
        self._target_std = 1.0
        self._fitted = False

    # ------------------------------------------------------------------ #

    def _forward(
        self, states: np.ndarray
    ) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if x.shape[1] != self.input_size:
            raise ConfigError(
                f"state has {x.shape[1]} features, expected {self.input_size}"
            )
        pre, act = [], [x]
        h = x
        for layer in range(self.num_layers):
            z = h @ self.params[f"W{layer}"] + self.params[f"b{layer}"]
            pre.append(z)
            if layer < self.num_layers - 1:
                h = np.maximum(z, 0.0)
                act.append(h)
            else:
                h = z
        return h[:, 0], pre, act

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Predicted remaining makespans (slots, clipped to >= 0)."""
        normalized, _, _ = self._forward(states)
        return np.maximum(
            normalized * self._target_std + self._target_mean, 0.0
        )

    # ------------------------------------------------------------------ #

    def fit(
        self,
        states: np.ndarray,
        targets: Sequence[float],
        epochs: int = 50,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: SeedLike = None,
    ) -> List[float]:
        """Train by mini-batch MSE; returns per-epoch losses.

        Targets are z-normalized internally using the first ``fit`` call's
        statistics, so repeated fits refine the same scale.
        """

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        targets_arr = np.asarray(targets, dtype=np.float64)
        if states.shape[0] != targets_arr.shape[0]:
            raise ConfigError("states and targets must align")
        if states.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        if not self._fitted:
            self._target_mean = float(targets_arr.mean())
            self._target_std = float(max(targets_arr.std(), 1e-6))
            self._fitted = True
        normalized_targets = (targets_arr - self._target_mean) / self._target_std

        optimizer = RmsProp(learning_rate=learning_rate)
        rng = as_generator(seed)
        losses: List[float] = []
        n = states.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                predictions, pre, act = self._forward(states[batch])
                errors = predictions - normalized_targets[batch]
                epoch_losses.append(float(np.mean(errors**2)))
                # Backprop MSE: dL/dout = 2 * err / B.
                delta = (2.0 * errors / len(batch))[:, None]
                grads: Dict[str, np.ndarray] = {}
                for layer in range(self.num_layers - 1, -1, -1):
                    grads[f"W{layer}"] = act[layer].T @ delta
                    grads[f"b{layer}"] = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.params[f"W{layer}"].T) * (
                            pre[layer - 1] > 0
                        )
                optimizer.step(self.params, grads)
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(v.size for v in self.params.values())
