"""A value network: state -> predicted remaining makespan.

AlphaZero (which inspired Spear, Sec. I) pairs its policy with a *value*
head so rollouts can be truncated and scored without playing to the end.
The Spear paper keeps full rollouts; this module implements the natural
extension: a small MLP regressor trained on (state, observed
remaining-makespan) pairs from policy rollouts, used by
:class:`repro.core.guidance.TruncatedRollout` to cap rollout depth.

Architecture mirrors the policy trunk (ReLU MLP) with a single linear
output, expressed over the shared :class:`repro.rl.modules.MLPStack`;
training is mean-squared-error with rmsprop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..utils.rng import SeedLike, as_generator
from .modules import MLPStack
from .optimizers import RmsProp, clip_global_norm

__all__ = ["ValueNetwork"]


class ValueNetwork:
    """MLP regressor predicting the remaining makespan of a state.

    Args:
        input_size: observation dimensionality (same featurization as the
            policy network).
        hidden_sizes: ReLU hidden widths (default: a slim 64/32 trunk —
            value targets are smoother than action preferences).
        seed: weight-initialization seed.
    """

    #: Checkpoint discriminator (see ``rl.checkpoints``).
    kind = "value"

    def __init__(
        self,
        input_size: int,
        hidden_sizes: Tuple[int, ...] = (64, 32),
        seed: SeedLike = None,
    ) -> None:
        if input_size < 1:
            raise ConfigError("input_size must be >= 1")
        if not hidden_sizes or any(h < 1 for h in hidden_sizes):
            raise ConfigError("hidden_sizes must be positive")
        self.input_size = input_size
        self.hidden_sizes = tuple(hidden_sizes)
        rng = as_generator(seed)
        self._stack = MLPStack([input_size, *hidden_sizes, 1], rng)
        #: Shared live parameter dict (the optimizer mutates it in place).
        self.params: Dict[str, np.ndarray] = self._stack.params
        self.num_layers = self._stack.num_layers
        # Target normalization, fit on the first training batch.
        self._target_mean = 0.0
        self._target_std = 1.0
        self._fitted = False

    # ------------------------------------------------------------------ #

    def _forward(self, states: np.ndarray, keep_cache: bool = False) -> np.ndarray:
        x = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if x.shape[1] != self.input_size:
            raise ConfigError(
                f"state has {x.shape[1]} features, expected {self.input_size}"
            )
        return self._stack.forward(x, keep_cache)[:, 0]

    def predict(self, states: np.ndarray) -> np.ndarray:
        """Predicted remaining makespans (slots, clipped to >= 0)."""
        normalized = self._forward(states)
        return np.maximum(
            normalized * self._target_std + self._target_mean, 0.0
        )

    # ------------------------------------------------------------------ #

    def fit(
        self,
        states: np.ndarray,
        targets: Sequence[float],
        epochs: int = 50,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: SeedLike = None,
        max_grad_norm: float = 0.0,
    ) -> List[float]:
        """Train by mini-batch MSE; returns per-epoch losses.

        Targets are z-normalized internally using the first ``fit`` call's
        statistics, so repeated fits refine the same scale.  A positive
        ``max_grad_norm`` clips each mini-batch gradient to that global
        L2 norm before the optimizer step.
        """

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        targets_arr = np.asarray(targets, dtype=np.float64)
        if states.shape[0] != targets_arr.shape[0]:
            raise ConfigError("states and targets must align")
        if states.shape[0] == 0:
            raise ConfigError("cannot fit on an empty dataset")
        if not self._fitted:
            self._target_mean = float(targets_arr.mean())
            self._target_std = float(max(targets_arr.std(), 1e-6))
            self._fitted = True
        normalized_targets = (targets_arr - self._target_mean) / self._target_std

        optimizer = RmsProp(learning_rate=learning_rate)
        rng = as_generator(seed)
        losses: List[float] = []
        n = states.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                predictions = self._forward(states[batch], keep_cache=True)
                errors = predictions - normalized_targets[batch]
                epoch_losses.append(float(np.mean(errors**2)))
                # Backprop MSE: dL/dout = 2 * err / B.
                delta = (2.0 * errors / len(batch))[:, None]
                grads = self._stack.backward(delta)
                assert isinstance(grads, dict)
                if max_grad_norm > 0.0:
                    clip_global_norm(grads, max_grad_norm)
                optimizer.step(self.params, grads)
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(v.size for v in self.params.values())
