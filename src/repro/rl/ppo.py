"""PPO with GAE: the modern baseline the plug-in trainer layer enables.

REINFORCE (the paper's algorithm) takes exactly one gradient step per
batch of experience — anything more would leave the on-policy regime.
PPO's clipped surrogate objective (Schulman et al., 2017) makes the
extra epochs safe: the ratio ``r_t = pi(a_t|s_t) / pi_old(a_t|s_t)`` is
clipped to ``[1 - eps, 1 + eps]``, so a minibatch stops pushing once the
policy has moved that far, and the same rollouts fund
``ppo_epochs x`` minibatch passes.  Advantages come from generalized
advantage estimation over a learned critic (a :class:`ValueNetwork` on
the model's ``value_features``) instead of the cross-rollout mean
baseline.

The exact surrogate gradient is obtained through
``policy_gradient_steps`` without new machinery: for active samples
(clip not binding) the per-sample gradient of ``-r_t A_t`` is
``-A_t r_t d log pi``, i.e. a weighted NLL gradient with the *detached*
weight ``A_t r_t``; clipped samples contribute zero.  The trainer
therefore masks clipped samples out of the weight vector and reuses the
same backward pass REINFORCE uses — so PPO automatically works for
every model implementing the step-batch interface (MLP and GNN alike).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..telemetry.config import TelemetryConfig
from ..utils.rng import SeedLike
from .trainer import EpochStats, Trainer, iterate_minibatches
from .trajectories import Trajectory, returns_to_go
from .value_network import ValueNetwork

__all__ = ["PpoTrainer", "gae_advantages", "EpochStats"]


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    lam: float,
) -> np.ndarray:
    """Generalized advantage estimation for one episode.

    ``values`` are state values *in return space* (``V(s_t) ~ G_t``, so
    negative here: returns are negated makespans); the terminal state
    bootstraps zero.
    """
    deltas = rewards + gamma * np.append(values[1:], 0.0) - values
    advantages = np.empty_like(deltas)
    acc = 0.0
    for t in range(len(deltas) - 1, -1, -1):
        acc = deltas[t] + gamma * lam * acc
        advantages[t] = acc
    return advantages


class PpoTrainer(Trainer):
    """Clipped-surrogate PPO over a fixed set of example DAGs.

    Args:
        network: any policy model implementing the step-batch interface
            (:class:`PolicyNetwork` or :class:`GraphPolicyNetwork`).
        graphs: the training examples.
        env_config: environment shape used for every episode.
        training: hyper-parameters — the PPO knobs are ``ppo_clip``,
            ``ppo_epochs``, ``ppo_minibatch``, ``gamma``, ``gae_lambda``,
            ``normalize_advantages`` and the critic's
            ``value_learning_rate`` / ``value_epochs``.
        seed: master seed for sampling and minibatch shuffles.
        telemetry: per-epoch curves report as ``ppo.loss`` (mean clipped
            surrogate), ``ppo.entropy``, ``ppo.return``, ``ppo.baseline``.
    """

    algo = "ppo"

    def __init__(
        self,
        network,
        graphs: Sequence[TaskGraph],
        env_config: EnvConfig | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        super().__init__(network, graphs, env_config, training, seed, telemetry)
        #: The GAE critic: remaining makespan from the model's features.
        self.value_network = ValueNetwork(
            network.value_feature_size,
            seed=self._rng,
        )

    # ------------------------------------------------------------------ #

    def _advantages(
        self, trajectories: Sequence[Trajectory]
    ) -> List[np.ndarray]:
        """GAE over the critic (return-space values are negated makespans)."""
        out = []
        for trajectory in trajectories:
            rewards = np.asarray(
                [step.reward for step in trajectory.steps], dtype=np.float64
            )
            features = self.network.value_features(trajectory.steps)
            values = -self.value_network.predict(features)
            out.append(
                gae_advantages(
                    rewards, values, self.training.gamma,
                    self.training.gae_lambda,
                )
            )
        return out

    def _update_batch(
        self,
        trajectories: Sequence[Trajectory],
        advantage_arrays: Sequence[np.ndarray],
    ) -> Tuple[float, float]:
        """``ppo_epochs`` clipped-surrogate minibatch passes, then refit
        the critic; returns (mean policy entropy, mean surrogate loss)."""
        training = self.training
        steps, actions = self.flatten_steps(trajectories)
        advantages = np.concatenate(advantage_arrays)
        if training.normalize_advantages and advantages.size > 1:
            advantages = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8
            )
        # pi_old: the collection-time distribution.  Parameters have not
        # moved since the rollouts, so recomputing it here is exact.
        old_probs = self.network.step_probabilities(steps)
        rows = np.arange(len(steps))
        old_chosen = old_probs[rows, actions]
        clip = training.ppo_clip
        losses: List[float] = []
        for _ in range(training.ppo_epochs):
            for batch in iterate_minibatches(
                self._rng, len(steps), training.ppo_minibatch
            ):
                sub = [steps[i] for i in batch]
                sub_actions = actions[batch]
                sub_adv = advantages[batch]
                probs = self.network.step_probabilities(sub)
                ratio = (
                    probs[np.arange(len(batch)), sub_actions]
                    / old_chosen[batch]
                )
                surrogate = np.minimum(
                    ratio * sub_adv,
                    np.clip(ratio, 1.0 - clip, 1.0 + clip) * sub_adv,
                )
                losses.append(float(-surrogate.mean()))
                # Clip binding => zero gradient for that sample; active
                # samples get the detached weight A_t * r_t (see module
                # docstring), making this a weighted-NLL backward pass.
                active = ~(
                    ((sub_adv > 0) & (ratio > 1.0 + clip))
                    | ((sub_adv < 0) & (ratio < 1.0 - clip))
                )
                weights = np.where(active, sub_adv * ratio, 0.0)
                grads, _ = self.network.policy_gradient_steps(
                    sub, sub_actions, weights
                )
                if training.entropy_bonus > 0.0:
                    entropy_grads = self.network.entropy_gradient_steps(sub)
                    for key in grads:
                        grads[key] -= (
                            training.entropy_bonus * entropy_grads[key]
                        )
                self.apply_gradients(grads)
        returns = np.concatenate([returns_to_go(t) for t in trajectories])
        self.value_network.fit(
            self.network.value_features(steps),
            -returns,
            epochs=training.value_epochs,
            batch_size=training.ppo_minibatch,
            learning_rate=training.value_learning_rate,
            seed=self._rng,
            max_grad_norm=training.max_grad_norm,
        )
        return self.mean_entropy(steps), float(np.mean(losses))
