"""The shared trainer skeleton behind REINFORCE, PPO and imitation.

Concrete trainers differ only in *how a batch of experience turns into a
gradient step*; everything else — rollout collection with per-rollout
spawned RNG streams, the graph-batched epoch loop, advantage plumbing,
telemetry series, evaluation — lives here.  :class:`ReinforceTrainer`
and :class:`PpoTrainer` subclass :class:`Trainer` (on-policy rollout
trainers); :class:`ImitationTrainer` shares the optimizer/gradient
plumbing through :class:`TrainerBase`.

The skeleton is model-agnostic: it talks to the policy network only
through the step-batch interface (``make_policy``,
``policy_gradient_steps``, ``step_probabilities``,
``entropy_gradient_steps``), which both :class:`PolicyNetwork` (MLP) and
:class:`GraphPolicyNetwork` (GNN) implement.  The refactored REINFORCE
path is bit-identical to the historical monolithic trainer (pinned by
the golden trace in ``tests/data/rl_golden.json``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EnvConfig, TrainingConfig
from ..dag.graph import TaskGraph
from ..envarr.backend import make_env
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from ..telemetry.sinks import stderr_line
from ..utils.rng import SeedLike, as_generator, spawn
from .modules import policy_entropy
from .optimizers import RmsProp, clip_global_norm
from .trajectories import Step, Trajectory, returns_to_go, rollout_trajectory

__all__ = ["Trainer", "TrainerBase", "EpochStats", "iterate_minibatches"]


@dataclass(frozen=True)
class EpochStats:
    """Telemetry of one training epoch."""

    epoch: int
    mean_makespan: float
    best_makespan: int
    worst_makespan: int
    mean_entropy: float
    num_trajectories: int
    mean_loss: float = 0.0


def iterate_minibatches(
    rng: np.random.Generator, n: int, batch_size: int
) -> Iterator[np.ndarray]:
    """Shuffled mini-batch index arrays covering ``range(n)`` once."""
    indices = rng.permutation(n)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]


class TrainerBase:
    """Optimizer/gradient plumbing shared by every trainer.

    Args:
        network: any policy model implementing the step-batch interface.
        env_config: environment shape used for every episode.
        training: hyper-parameters (learning rate, clipping, batching).
        seed: master RNG seed.
        telemetry: ``None`` defers to the globally active pipeline.
    """

    #: Telemetry prefix (``{algo}.loss``, ``{algo}.train`` span, ...).
    algo: ClassVar[str] = "train"

    def __init__(
        self,
        network,
        env_config: EnvConfig | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.network = network
        self.env_config = env_config if env_config is not None else EnvConfig()
        self.training = training if training is not None else TrainingConfig()
        self.optimizer = RmsProp(
            self.training.learning_rate, self.training.rho, self.training.eps
        )
        self._rng = as_generator(seed)
        self.telemetry = telemetry

    def apply_gradients(self, grads: Dict[str, np.ndarray]) -> None:
        """Clip (when configured) and take one optimizer step."""
        if self.training.max_grad_norm > 0.0:
            clip_global_norm(grads, self.training.max_grad_norm)
        self.optimizer.step(self.network.params, grads)

    def make_policy(self, mode: str, seed: SeedLike = None):
        """The network driving an episode (model decides the policy type)."""
        return self.network.make_policy(mode=mode, seed=seed)


class Trainer(TrainerBase, abc.ABC):
    """On-policy rollout trainer over a fixed set of example DAGs.

    Per epoch, for every training example, ``rollouts_per_example``
    trajectories are sampled (paper: 20); subclasses turn each
    graph-batch of trajectories plus advantages into gradient updates
    via :meth:`_update_batch`.
    """

    def __init__(
        self,
        network,
        graphs: Sequence[TaskGraph],
        env_config: EnvConfig | None = None,
        training: TrainingConfig | None = None,
        seed: SeedLike = None,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if not graphs:
            raise ValueError("need at least one training graph")
        super().__init__(network, env_config, training, seed, telemetry)
        self.graphs = list(graphs)
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------ #
    # experience collection
    # ------------------------------------------------------------------ #

    def sample_trajectories(self, graph: TaskGraph) -> List[Trajectory]:
        """``rollouts_per_example`` sampled episodes on one graph."""
        children = spawn(self._rng, self.training.rollouts_per_example)
        trajectories = []
        for child in children:
            env = make_env(graph, self.env_config)
            policy = self.make_policy("sample", seed=child)
            trajectories.append(
                rollout_trajectory(env, policy, self.training.max_episode_steps)
            )
        return trajectories

    @staticmethod
    def advantages(trajectories: Sequence[Trajectory]) -> List[np.ndarray]:
        """Per-step advantages with the cross-rollout mean-return baseline.

        Returns are aligned by step index; the baseline at index ``t`` is
        the mean of ``G_t`` over every rollout long enough to have a step
        ``t`` (the DeepRM/Spear convention for unequal-length episodes).
        """
        all_returns = [returns_to_go(t) for t in trajectories]
        max_len = max(len(r) for r in all_returns)
        sums = np.zeros(max_len)
        counts = np.zeros(max_len)
        for returns in all_returns:
            sums[: len(returns)] += returns
            counts[: len(returns)] += 1
        baseline = sums / np.maximum(counts, 1)
        return [returns - baseline[: len(returns)] for returns in all_returns]

    def _advantages(
        self, trajectories: Sequence[Trajectory]
    ) -> List[np.ndarray]:
        """Advantage estimator hook (default: rollout-mean baseline)."""
        return self.advantages(trajectories)

    # ------------------------------------------------------------------ #
    # the epoch loop
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def _update_batch(
        self,
        trajectories: Sequence[Trajectory],
        advantage_arrays: Sequence[np.ndarray],
    ) -> Tuple[float, float]:
        """Consume one graph-batch of experience; returns
        ``(mean policy entropy, surrogate loss)``."""

    def train_epoch(self, epoch: int) -> EpochStats:
        """One epoch: sample, baseline, update — batched over examples.

        With telemetry active the epoch lands as one point on each of
        the training-curve series: ``{algo}.loss`` (surrogate loss),
        ``{algo}.entropy``, ``{algo}.return`` (best return achieved,
        i.e. negated best makespan) and ``{algo}.baseline`` (the
        trajectory-average return the advantage is centered on, i.e.
        negated mean makespan).
        """
        makespans: List[int] = []
        entropies: List[float] = []
        losses: List[float] = []
        batch_size = self.training.batch_size
        for start in range(0, len(self.graphs), batch_size):
            batch_graphs = self.graphs[start : start + batch_size]
            batch_trajectories: List[Trajectory] = []
            batch_advantages: List[np.ndarray] = []
            for graph in batch_graphs:
                trajectories = self.sample_trajectories(graph)
                batch_trajectories.extend(trajectories)
                batch_advantages.extend(self._advantages(trajectories))
                makespans.extend(t.makespan for t in trajectories)
            entropy, loss = self._update_batch(
                batch_trajectories, batch_advantages
            )
            entropies.append(entropy)
            losses.append(loss)
        stats = EpochStats(
            epoch=epoch,
            mean_makespan=float(np.mean(makespans)),
            best_makespan=int(np.min(makespans)),
            worst_makespan=int(np.max(makespans)),
            mean_entropy=float(np.mean(entropies)),
            num_trajectories=len(makespans),
            mean_loss=float(np.mean(losses)),
        )
        self.history.append(stats)
        tm = _telemetry.for_config(self.telemetry)
        if tm.enabled:
            tm.record(f"{self.algo}.loss", epoch, stats.mean_loss)
            tm.record(f"{self.algo}.entropy", epoch, stats.mean_entropy)
            tm.record(f"{self.algo}.return", epoch, -float(stats.best_makespan))
            tm.record(f"{self.algo}.baseline", epoch, -stats.mean_makespan)
            tm.inc(f"{self.algo}.trajectories", stats.num_trajectories)
        return stats

    def train(
        self,
        epochs: Optional[int] = None,
        log_every: int = 0,
    ) -> List[EpochStats]:
        """Run ``epochs`` epochs (default from config); returns the curve.

        ``log_every=k`` reports every k-th epoch: as a structured
        ``{algo}.epoch`` log event when telemetry is active (the
        stderr-summary sink echoes it live), else as a plain stderr
        line — progress logging never lands on stdout.
        """
        total = epochs if epochs is not None else self.training.epochs
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            f"{self.algo}.train", epochs=total, graphs=len(self.graphs)
        ):
            for epoch in range(total):
                stats = self.train_epoch(epoch)
                if log_every and epoch % log_every == 0:
                    message = (
                        f"epoch {stats.epoch}: mean makespan "
                        f"{stats.mean_makespan:.1f} entropy "
                        f"{stats.mean_entropy:.3f}"
                    )
                    if tm.enabled:
                        tm.log(
                            f"{self.algo}.epoch",
                            message=message,
                            epoch=stats.epoch,
                            mean_makespan=stats.mean_makespan,
                            mean_entropy=stats.mean_entropy,
                        )
                    else:
                        stderr_line(message)
        return self.history

    def evaluate(self, graphs: Sequence[TaskGraph], greedy: bool = True) -> List[int]:
        """Makespan of the current policy on each graph (greedy by default)."""
        results = []
        for graph in graphs:
            env = make_env(graph, self.env_config)
            mode = "greedy" if greedy else "sample"
            policy = self.make_policy(mode, seed=self._rng)
            trajectory = rollout_trajectory(
                env, policy, self.training.max_episode_steps
            )
            results.append(trajectory.makespan)
        return results

    # ------------------------------------------------------------------ #
    # shared step-batch helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def flatten_steps(
        trajectories: Sequence[Trajectory],
    ) -> Tuple[List[Step], np.ndarray]:
        """All steps of a trajectory batch plus their action indices."""
        steps = [step for t in trajectories for step in t.steps]
        actions = np.asarray([step.action_index for step in steps], dtype=int)
        return steps, actions

    def mean_entropy(self, steps: Sequence[Step]) -> float:
        """Mean policy entropy over recorded steps (current parameters)."""
        return policy_entropy(self.network.step_probabilities(steps))
