"""Driving the scheduling environment with the policy network.

:class:`NetworkPolicy` adapts a :class:`PolicyNetwork` to the
:class:`repro.schedulers.Policy` protocol: featurize the state, mask
illegal actions, then sample from (or take the argmax of) the network's
distribution — "each time when the DRL agent is called to take an action,
it will draw one action from the distribution of the actions in the output
layer" (Sec. III-D).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..env.actions import PROCESS, Action
from ..env.observation import ObservationBuilder
from ..env.scheduling_env import SchedulingEnv
from ..errors import ConfigError, EnvironmentStateError
from ..schedulers.base import Policy
from ..utils.rng import SeedLike, as_generator
from .network import PolicyNetwork

__all__ = ["NetworkPolicy", "build_action_mask"]


def build_action_mask(
    env: SchedulingEnv, num_actions: int, work_conserving: bool = False
) -> np.ndarray:
    """Boolean mask over the network's action layout.

    Layout: indices ``0 .. max_ready-1`` schedule the corresponding visible
    ready slot; index ``max_ready`` is PROCESS.

    Args:
        env: current environment.
        num_actions: the network's output width (``max_ready + 1``).
        work_conserving: apply the Spear expansion filter (drop PROCESS
            whenever some task fits).
    """
    mask = np.zeros(num_actions, dtype=bool)
    actions = (
        env.expansion_actions(work_conserving=True)
        if work_conserving
        else env.legal_actions()
    )
    for action in actions:
        if action == PROCESS:
            mask[num_actions - 1] = True
        else:
            if action >= num_actions - 1:
                raise ConfigError(
                    f"visible slot {action} exceeds network window "
                    f"{num_actions - 1}"
                )
            mask[action] = True
    return mask


class NetworkPolicy(Policy):
    """Scheduling policy backed by a trained (or training) network.

    Args:
        network: the policy network; its ``max_ready`` must match the
            environment's visibility window.
        mode: ``"sample"`` draws from the distribution (training, rollout
            diversity); ``"greedy"`` takes the argmax (evaluation).
        seed: RNG for sampling.
        work_conserving: mask PROCESS away whenever a task fits (matches
            the MCTS expansion filter so the network sees the same action
            space inside Spear as during training).
    """

    name = "drl"

    def __init__(
        self,
        network: PolicyNetwork,
        mode: str = "sample",
        seed: SeedLike = None,
        work_conserving: bool = True,
    ) -> None:
        if mode not in ("sample", "greedy"):
            raise ConfigError(f"unknown mode {mode!r}")
        self.network = network
        self.mode = mode
        self.work_conserving = work_conserving
        self._rng = as_generator(seed)
        self._builder: Optional[ObservationBuilder] = None

    # ------------------------------------------------------------------ #

    def begin_episode(self, env: SchedulingEnv) -> None:
        if env.config.max_ready != self.network.num_actions - 1:
            raise ConfigError(
                f"env max_ready={env.config.max_ready} does not match "
                f"network action space {self.network.num_actions}"
            )
        self._builder = ObservationBuilder(env.graph, env.config)
        if self._builder.size != self.network.input_size:
            raise ConfigError(
                f"observation size {self._builder.size} != network input "
                f"{self.network.input_size}"
            )

    def _ensure_builder(self, env: SchedulingEnv) -> ObservationBuilder:
        if self._builder is None or self._builder.graph is not env.graph:
            self.begin_episode(env)
        assert self._builder is not None
        return self._builder

    def observe(self, env: SchedulingEnv) -> Tuple[np.ndarray, np.ndarray]:
        """(observation, mask) without a network forward — for recording
        teacher decisions in the model's own featurization."""
        builder = self._ensure_builder(env)
        observation = builder.build(env)
        mask = build_action_mask(
            env, self.network.num_actions, self.work_conserving
        )
        return observation, mask

    def distribution(
        self, env: SchedulingEnv
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(observation, mask, probabilities) for the current state."""
        builder = self._ensure_builder(env)
        observation = builder.build(env)
        mask = build_action_mask(
            env, self.network.num_actions, self.work_conserving
        )
        probs = self.network.probabilities(
            observation[None, :], mask[None, :]
        )[0]
        return observation, mask, probs

    def action_probabilities(self, env: SchedulingEnv) -> Dict[Action, float]:
        """Env-action -> probability map (used by MCTS expansion/rollout)."""
        _, mask, probs = self.distribution(env)
        process_index = self.network.num_actions - 1
        result: Dict[Action, float] = {}
        for index in np.nonzero(mask)[0]:
            action = PROCESS if index == process_index else int(index)
            result[action] = float(probs[index])
        return result

    def select(self, env: SchedulingEnv) -> Action:
        _, mask, probs = self.distribution(env)
        if self.mode == "greedy":
            index = int(np.argmax(probs))
        else:
            index = int(self._rng.choice(len(probs), p=probs))
        if not mask[index]:
            raise EnvironmentStateError("network selected a masked action")
        process_index = self.network.num_actions - 1
        return PROCESS if index == process_index else index

    def select_with_trace(
        self, env: SchedulingEnv
    ) -> Tuple[Action, np.ndarray, np.ndarray, int]:
        """Like :meth:`select` but also returns (observation, mask,
        network-action-index) for trajectory recording."""
        observation, mask, probs = self.distribution(env)
        if self.mode == "greedy":
            index = int(np.argmax(probs))
        else:
            index = int(self._rng.choice(len(probs), p=probs))
        process_index = self.network.num_actions - 1
        action = PROCESS if index == process_index else index
        return action, observation, mask, index
