"""Fused batched playouts: many rollouts per call, NumPy lockstep.

A sequential random playout costs one Python-level decision loop per
episode; :class:`BatchedPlayouts` advances ``B`` episodes per loop
iteration instead, holding every lane's state as rows of ``(B, N)``
matrices:

* ``finish`` — dense finish-time matrix (sentinel :data:`INF` when a task
  is not running); the event sweep is a row-wise ``min`` + mask.
* ``seq`` — ready-queue arrival stamps (sentinel when not ready); the
  visibility window is the ``max_ready`` smallest stamps per row.
* ``unmet`` — indegree countdown, decremented for all lanes at once via
  one ``released @ adjacency`` matmul.

Resource vectors are bit-packed SWAR-style (one int64 field per resource
plus a guard bit), so the per-iteration fit test over every lane × visible
task is three integer ops on a ``(B, N)`` matrix instead of an
``(B, N, R)`` tensor sweep; graphs whose packed width would exceed 62 bits
fall back to the tensor path automatically.

Each iteration performs exactly one MDP decision per live lane — schedule
a uniformly random fitting visible task, else process — so per-lane
trajectories follow the same work-conserving policy as
:meth:`SchedulingEnv.random_playout`.  Batched mode is seed-deterministic
(one shared generator, a fixed draw shape per iteration) but **not**
draw-for-draw identical to the sequential stream: lanes consume the
generator in lockstep rather than one episode at a time.  The unit tests
pin validity (every lane's starts satisfy all schedule invariants),
determinism, and distributional agreement with sequential playouts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EnvironmentStateError
from .cluster import INF
from .env import ArraySchedulingEnv
from .graphdata import GraphArrays

__all__ = ["BatchedPlayouts", "batch_random_playouts"]


def _pack_layout(capacities: Sequence[int]) -> Optional[Tuple[List[int], List[int]]]:
    """Per-resource (shift, width) layout for SWAR packing, or ``None``.

    Each resource gets ``bit_length(capacity)`` value bits plus one guard
    bit; ``None`` when the total exceeds the 62 bits an int64 can hold
    safely.
    """
    shifts: List[int] = []
    widths: List[int] = []
    offset = 0
    for capacity in capacities:
        width = int(capacity).bit_length()
        shifts.append(offset)
        widths.append(width)
        offset += width + 1  # + guard bit
    if offset > 62:
        return None
    return shifts, widths


class BatchedPlayouts:
    """Reusable lockstep playout kernel for one compiled graph.

    Args:
        arrays: the compiled graph every lane plays on.
        capacities: cluster capacities (for the packed fit test).
        until_completion: process-action granularity, as
            ``EnvConfig.process_until_completion``.
        max_ready: visibility window width, as ``EnvConfig.max_ready``.
    """

    def __init__(
        self,
        arrays: GraphArrays,
        capacities: Sequence[int],
        *,
        until_completion: bool = True,
        max_ready: int = 15,
    ) -> None:
        self.arrays = arrays
        self.capacities = tuple(int(c) for c in capacities)
        self.until_completion = until_completion
        self.max_ready = max_ready
        n = arrays.num_tasks
        # Dense child adjacency for the vectorized indegree countdown:
        # released (B, N) @ adjacency (N, N) counts released parents per
        # child across the whole batch in one matmul.
        # float64 so the per-iteration matmuls hit BLAS instead of NumPy's
        # integer fallback loop; all values are small ints, exact in f64.
        adjacency = np.zeros((n, n), dtype=np.float64)
        adjacency[
            np.repeat(np.arange(n), np.diff(arrays.child_indptr)),
            arrays.child_indices,
        ] = 1.0
        self.adjacency = adjacency
        layout = _pack_layout(self.capacities)
        if layout is not None:
            shifts, widths = layout
            shift_arr = np.asarray(shifts, dtype=np.int64)
            self._packed = True
            #: demands as one packed int64 per task.
            self.demands_packed = (arrays.demands << shift_arr[None, :]).sum(
                axis=1
            )
            #: the packed demands as exact float64, for the BLAS matvec.
            self.demands_packed_f = self.demands_packed.astype(np.float64)
            #: one guard bit above each resource field.
            self.guard = int(
                sum(1 << (shift + width) for shift, width in zip(shifts, widths))
            )
            self._shifts = shift_arr
        else:
            self._packed = False
            self.demands_packed = np.zeros(n, dtype=np.int64)
            self.demands_packed_f = self.demands_packed.astype(np.float64)
            self.guard = 0
            self._shifts = np.zeros(len(self.capacities), dtype=np.int64)
        self.demands_f = arrays.demands.astype(np.float64)

    # ------------------------------------------------------------------ #

    def _pack_free(self, free_rows: np.ndarray) -> np.ndarray:
        """Pack per-lane free-capacity rows, guard bits pre-set."""
        return (free_rows << self._shifts[None, :]).sum(axis=1) + self.guard

    def states_from_envs(
        self, envs: Sequence[ArraySchedulingEnv]
    ) -> Tuple[np.ndarray, ...]:
        """Stack the lanes' mutable state into batch matrices."""
        n = self.arrays.num_tasks
        batch = len(envs)
        free = np.stack([env.cluster.free for env in envs]).astype(np.int64)
        finish = np.stack([env.cluster.finish for env in envs])
        now = np.fromiter((env.cluster.now for env in envs), np.int64, batch)
        unmet = np.asarray([env._unmet for env in envs], dtype=np.int64)
        seq = np.full((batch, n), INF, dtype=np.int64)
        counter = np.zeros(batch, dtype=np.int64)
        pending = np.ones((batch, n), dtype=bool)
        fincount = np.zeros(batch, dtype=np.int64)
        for b, env in enumerate(envs):
            for position, index in enumerate(env._ready):
                seq[b, index] = position
            counter[b] = len(env._ready)
            fincount[b] = len(env._finished)
            for index in env._finished:
                pending[b, index] = False
        pending &= seq == INF
        pending &= finish == INF
        return free, finish, now, unmet, seq, counter, pending, fincount

    def run(
        self,
        envs: Sequence[ArraySchedulingEnv],
        rng: np.random.Generator,
        limit: int,
        record_starts: bool = False,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Play every lane to completion; return per-lane makespans.

        The input environments are *read*, never mutated — each lane's
        state is copied into the batch matrices up front (MCTS hands leaf
        clones in and keeps them).

        Args:
            envs: lanes, all over this kernel's graph.
            rng: shared generator; one ``(B,)`` uniform draw per iteration.
            limit: per-lane decision cap; exceeding it raises
                ``RuntimeError`` (a livelocked rollout is a bug).
            record_starts: also return the ``(B, N)`` start-slot matrix
                (``-1`` for tasks already running/finished at entry), so
                tests can verify every lane against the schedule
                invariants.

        Returns:
            ``(makespans, starts)`` with ``starts`` ``None`` unless
            requested.
        """
        arrays = self.arrays
        n = arrays.num_tasks
        batch = len(envs)
        for env in envs:
            if env.arrays is not arrays:
                raise EnvironmentStateError(
                    "batched playout lanes must share one compiled graph"
                )
        demands = arrays.demands
        durations = arrays.durations
        demands_packed = self.demands_packed
        demands_packed_f = self.demands_packed_f
        demands_f = self.demands_f
        guard = self.guard
        packed = self._packed
        adjacency = self.adjacency
        window = self.max_ready
        until_completion = self.until_completion
        free, finish, now, unmet, seq, _counter, pending, fincount = (
            self.states_from_envs(envs)
        )
        # Countdowns and counters as float64: the per-iteration updates are
        # BLAS matmuls (exact for these magnitudes), and comparisons against
        # exact small floats are as good as integer ones.
        unmet = unmet.astype(np.float64)
        fincount = fincount.astype(np.float64)
        if packed:
            free_packed = self._pack_free(free)
        else:
            free_packed = free  # alias so lane compaction can slice either
        starts = np.full((batch, n), -1, dtype=np.int64) if record_starts else None
        makespans = now.copy()
        alive = fincount != n
        num_alive = int(alive.sum())
        num_ready = np.fromiter(
            (len(env._ready) for env in envs), np.int64, batch
        )
        # Arrival stamps for tasks becoming ready mid-run: ``event * n +
        # index`` is strictly larger than any initial queue position
        # (< n), groups stamps by completion event, and orders ascending
        # index within one event — the same queue ordering as the object
        # backend, without a per-iteration cumsum.
        event = np.ones(batch, dtype=np.int64)
        # Row map back to the caller's lanes: finished lanes are compacted
        # away mid-run, so row ``i`` of the working arrays is the caller's
        # lane ``lanes[i]``.
        lanes = np.arange(batch)
        keys = np.empty((batch, n), dtype=np.float64)
        random = rng.random
        steps = 0
        while num_alive:
            if steps >= limit:
                raise RuntimeError("rollout exceeded step limit; livelocked policy")
            steps += 1
            ready = seq != INF
            # Visibility window: only rank arrival stamps when some lane's
            # ready set overflows the window (sentinel stamps sort last).
            if window < n and (num_ready > window).any():
                order = np.argsort(seq, axis=1, kind="stable")
                rank = np.empty_like(order)
                np.put_along_axis(rank, order, np.arange(n)[None, :], axis=1)
                ready &= rank < window
            # Fit test: with SWAR packing, per-field borrow detection via
            # the guard bits (three (B, N) int ops); otherwise the dense
            # (B, N, R) comparison.
            if packed:
                fits = (
                    (free_packed[:, None] - demands_packed[None, :]) & guard
                ) == guard
            else:
                fits = (demands[None, :, :] <= free[:, None, :]).all(axis=2)
            candidates = ready & fits
            candidates &= alive[:, None]
            # Uniform choice per lane as an argmax over fresh random keys
            # restricted to the candidate set (fixed draw shape per
            # iteration keeps runs seeded and deterministic).
            random(out=keys)
            sel = np.argmax(np.where(candidates, keys, -1.0), axis=1)
            sched = candidates.any(axis=1)
            if sched.any():
                rows = np.nonzero(sched)[0]
                cols = sel[rows]
                if packed:
                    free_packed[rows] -= demands_packed[cols]
                else:
                    free[rows] -= demands[cols]
                finish[rows, cols] = now[rows] + durations[cols]
                seq[rows, cols] = INF
                num_ready[rows] -= 1
                if starts is not None:
                    starts[lanes[rows], cols] = now[rows]
            process = alive & ~sched
            if process.any():
                # Mask non-processing lanes with -1: every real finish time
                # is >= 1, so they release nothing.  A surviving sentinel
                # means some live lane can neither schedule nor process.
                horizon = np.where(process, finish.min(axis=1), -1)
                if int(horizon.max()) == INF:
                    raise EnvironmentStateError("no legal actions")
                if not until_completion:
                    horizon = np.where(process, now + 1, -1)
                released = finish <= horizon[:, None]
                now = np.where(process, horizon, now)
                released_f = released.astype(np.float64)
                if packed:
                    free_packed += (released_f @ demands_packed_f).astype(np.int64)
                else:
                    free += (released_f @ demands_f).astype(np.int64)
                finish[released] = INF
                fincount += released_f.sum(axis=1)
                unmet -= released_f @ adjacency
                newly = pending & (unmet == 0.0)
                newly_rows, newly_cols = np.nonzero(newly)
                if newly_rows.size:
                    # Arrival stamps within one completion follow ascending
                    # index order — the object backend's sorted-id order.
                    seq[newly_rows, newly_cols] = event[newly_rows] * n + newly_cols
                    num_ready += newly.sum(axis=1)
                    pending[newly_rows, newly_cols] = False
                event += 1
                lane_done = alive & (fincount == n)
                done_rows = np.nonzero(lane_done)[0]
                if done_rows.size:
                    makespans[lanes[done_rows]] = now[done_rows]
                    alive[done_rows] = False
                    num_alive -= done_rows.size
                    # Compact dead lanes out of the working set once they
                    # are the majority: the per-iteration cost scales with
                    # rows, and late in a run most lanes are done.
                    if num_alive and lanes.size >= 8 and num_alive * 2 <= lanes.size:
                        keep = np.nonzero(alive)[0]
                        lanes = lanes[keep]
                        if packed:
                            free_packed = free_packed[keep]
                        else:
                            free = free[keep]
                        finish = finish[keep]
                        now = now[keep]
                        unmet = unmet[keep]
                        seq = seq[keep]
                        pending = pending[keep]
                        fincount = fincount[keep]
                        num_ready = num_ready[keep]
                        event = event[keep]
                        alive = alive[keep]
                        keys = np.empty((lanes.size, n), dtype=np.float64)
        return makespans, starts


def batch_random_playouts(
    envs: Sequence[ArraySchedulingEnv],
    rng: np.random.Generator,
    limit: int,
) -> List[int]:
    """Convenience wrapper: lockstep-play ``envs`` and return makespans.

    Builds a throwaway :class:`BatchedPlayouts` kernel from the first
    lane's configuration (all lanes must share one graph).
    """
    if not envs:
        return []
    first = envs[0]
    kernel = BatchedPlayouts(
        first.arrays,
        first.config.cluster.capacities,
        until_completion=first.config.process_until_completion,
        max_ready=first.config.max_ready,
    )
    makespans, _starts = kernel.run(envs, rng, limit)
    return [int(m) for m in makespans]
