"""Array-native environment core (ROADMAP item 1).

``repro.envarr`` re-expresses the scheduling MDP over flat vectors instead
of the object graph the rest of the library grew up on:

* :class:`GraphArrays` — a :class:`~repro.dag.graph.TaskGraph` compiled to
  CSR adjacency (``child_indptr``/``child_indices``) plus flat duration /
  demand / indegree vectors, with the Sec. III-D graph features (b-level,
  t-level, b-load) computed as level-bucketed NumPy segment sweeps rather
  than per-node recursion.
* :class:`ArrayClusterState` — capacity/free vectors and a dense
  finish-time vector with a vectorized event sweep in place of the
  running-task heap.
* :class:`ArraySchedulingEnv` — a drop-in :class:`~repro.env.SchedulingEnv`
  twin over those vectors: same actions, same rewards, same RNG stream,
  bit-identical schedules (the Hypothesis equivalence suite pins this).
* :class:`BatchedPlayouts` — many random playouts advanced in NumPy
  lockstep per call, the throughput mode batched MCTS builds on.
* :func:`make_env` — the ``EnvConfig(backend="array"|"object")`` switch
  every environment construction site routes through.

See DESIGN.md Sec. 15 for the array layout and the measured speedups.
"""

from .batch import BatchedPlayouts, batch_random_playouts
from .backend import available_backends, make_env
from .cluster import ArrayClusterState
from .env import ArraySchedulingEnv
from .graphdata import GraphArrays, graph_arrays
from .observation import BatchObservationBuilder

__all__ = [
    "ArrayClusterState",
    "ArraySchedulingEnv",
    "BatchObservationBuilder",
    "BatchedPlayouts",
    "GraphArrays",
    "available_backends",
    "batch_random_playouts",
    "graph_arrays",
    "make_env",
]
