"""A :class:`TaskGraph` compiled to flat arrays (CSR + feature vectors).

The object representation (dict-of-:class:`Task`, tuple adjacency) is what
schedulers mutate *around*; the hot loops only ever need four facts per
task — duration, demand vector, children, parents — and they need them by
dense index, not by id.  :class:`GraphArrays` compiles a graph once into:

* ``ids`` — sorted task ids; dense index ``i`` ↔ id ``ids[i]``.  Because
  the dense order is the id order, every id-based tie-break in the object
  backend (sorted newly-ready appends, completion order) is reproduced by
  the corresponding index-based tie-break here.
* CSR adjacency — ``child_indptr``/``child_indices`` (and the parent
  mirror), indices ascending within each row.
* flat vectors — ``durations``, ``demands`` ``(N, R)``, ``indegree``.
* graph features — b-level, t-level, #children and per-resource b-load
  computed as level-bucketed NumPy segment sweeps
  (:func:`numpy.maximum.reduceat` over CSR segments), no per-node
  recursion; validated against :func:`repro.dag.features.compute_features`
  by the equivalence suite.

Compilation is memoized per graph instance (same bounded-FIFO discipline
as the feature cache in :mod:`repro.dag.features`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..dag.graph import TaskGraph

__all__ = ["GraphArrays", "graph_arrays"]

#: Bounded memo of compiled graphs, keyed by graph identity (see
#: ``repro.dag.features._FEATURE_CACHE`` for why not a WeakKeyDictionary).
_CACHE: Dict[int, Tuple[TaskGraph, "GraphArrays"]] = {}
_CACHE_MAX = 64


def _segment_gather(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the CSR segments of ``rows``.

    Returns ``(values, seg_starts, counts)`` where ``values`` is the
    concatenation of ``indices[indptr[r]:indptr[r+1]]`` for each row and
    ``seg_starts``/``counts`` delimit each row's slice inside it.  Pure
    index arithmetic — no per-row Python loop.
    """
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    seg_starts = np.cumsum(counts) - counts
    # position within the output - segment start + source segment start
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(seg_starts, counts)
        + np.repeat(indptr[rows], counts)
    )
    return indices[flat], seg_starts, counts


class GraphArrays:
    """Immutable flat-array compilation of one :class:`TaskGraph`.

    Construct via :func:`graph_arrays` (memoized) or
    :meth:`GraphArrays.from_graph`.
    """

    __slots__ = (
        "graph",
        "num_tasks",
        "num_resources",
        "ids",
        "index_of",
        "durations",
        "demands",
        "indegree",
        "child_indptr",
        "child_indices",
        "parent_indptr",
        "parent_indices",
        "topo",
        "b_level",
        "t_level",
        "num_children",
        "b_load",
        "critical_path",
        "durations_list",
        "demands_list",
        "children_list",
        "ids_list",
    )

    def __init__(self, graph: TaskGraph) -> None:
        self.graph = graph
        n = graph.num_tasks
        r = graph.num_resources
        self.num_tasks = n
        self.num_resources = r
        ids = sorted(graph.task_ids)
        self.ids = np.asarray(ids, dtype=np.int64)
        self.index_of: Dict[int, int] = {tid: i for i, tid in enumerate(ids)}
        index_of = self.index_of

        self.durations = np.fromiter(
            (graph.task(tid).runtime for tid in ids), dtype=np.int64, count=n
        )
        demands = np.empty((n, r), dtype=np.int64)
        for i, tid in enumerate(ids):
            demands[i, :] = graph.task(tid).demands
        self.demands = demands

        # CSR adjacency: rows in dense order, indices ascending within a
        # row (graph.children()/parents() are already sorted by id, and the
        # id order is the dense order).
        child_counts = np.fromiter(
            (len(graph.children(tid)) for tid in ids), dtype=np.int64, count=n
        )
        self.child_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(child_counts, out=self.child_indptr[1:])
        self.child_indices = np.fromiter(
            (index_of[c] for tid in ids for c in graph.children(tid)),
            dtype=np.int64,
            count=int(child_counts.sum()),
        )
        parent_counts = np.fromiter(
            (len(graph.parents(tid)) for tid in ids), dtype=np.int64, count=n
        )
        self.parent_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(parent_counts, out=self.parent_indptr[1:])
        self.parent_indices = np.fromiter(
            (index_of[p] for tid in ids for p in graph.parents(tid)),
            dtype=np.int64,
            count=int(parent_counts.sum()),
        )
        self.indegree = parent_counts
        self.num_children = child_counts
        self.topo = np.fromiter(
            (index_of[tid] for tid in graph.topological_order()),
            dtype=np.int64,
            count=n,
        )

        self._compute_features()

        # Python mirrors for the sequential per-step kernels: C-speed list
        # indexing beats NumPy scalar indexing at these sizes.
        self.ids_list: List[int] = list(ids)
        self.durations_list: List[int] = [int(d) for d in self.durations]
        self.demands_list: List[Tuple[int, ...]] = [
            tuple(int(d) for d in row) for row in demands
        ]
        self.children_list: List[Tuple[int, ...]] = [
            tuple(
                int(c)
                for c in self.child_indices[
                    self.child_indptr[i] : self.child_indptr[i + 1]
                ]
            )
            for i in range(n)
        ]

    # ------------------------------------------------------------------ #

    @classmethod
    def from_graph(cls, graph: TaskGraph) -> "GraphArrays":
        """Compile ``graph`` (uncached; prefer :func:`graph_arrays`)."""
        return cls(graph)

    def _compute_features(self) -> None:
        """Level-bucketed NumPy sweeps for b-level / t-level / b-load.

        Nodes are bucketed by *height* (longest hop count to a sink) and
        *depth* (longest hop count from a source); within one bucket every
        dependency is already resolved, so the whole bucket updates in one
        ``maximum.reduceat`` over its concatenated CSR segments.  The
        b-load path follows the object implementation's tie-break — the
        child maximizing ``(b_level, sum(b_load), -id)`` — via a packed
        integer key so the argmax stays a segment reduction.
        """
        n = self.num_tasks
        durations = self.durations
        topo = self.topo

        # Heights (reverse levels): height[i] = 1 + max(height[children]).
        height = np.zeros(n, dtype=np.int64)
        for i in topo[::-1]:
            row = self.child_indices[self.child_indptr[i] : self.child_indptr[i + 1]]
            if row.size:
                height[i] = 1 + int(height[row].max())
        depth = np.zeros(n, dtype=np.int64)
        for i in topo:
            row = self.parent_indices[
                self.parent_indptr[i] : self.parent_indptr[i + 1]
            ]
            if row.size:
                depth[i] = 1 + int(depth[row].max())

        b_level = durations.copy()
        b_load = durations[:, None] * self.demands  # own load; accumulated below
        sum_load = b_load.sum(axis=1)
        max_sum = int(sum_load.sum()) + 1  # upper bound on any path's b-load sum
        for h in range(1, int(height.max()) + 1 if n else 0):
            bucket = np.nonzero(height == h)[0]
            kids, seg_starts, counts = _segment_gather(
                self.child_indptr, self.child_indices, bucket
            )
            # Packed lexicographic key: (b_level, sum(b_load), -index).
            key = (b_level[kids] * max_sum + sum_load[kids]) * n + (n - 1 - kids)
            seg_max = np.maximum.reduceat(key, seg_starts)
            best = (n - 1) - (seg_max % n)  # unpack the index tie-break
            b_level[bucket] = durations[bucket] + b_level[best]
            b_load[bucket] += b_load[best]
            sum_load[bucket] = b_load[bucket].sum(axis=1)

        t_level = np.zeros(n, dtype=np.int64)
        for d in range(1, int(depth.max()) + 1 if n else 0):
            bucket = np.nonzero(depth == d)[0]
            parents, seg_starts, _counts = _segment_gather(
                self.parent_indptr, self.parent_indices, bucket
            )
            t_level[bucket] = np.maximum.reduceat(
                t_level[parents] + durations[parents], seg_starts
            )

        self.b_level = b_level
        self.t_level = t_level
        self.b_load = b_load
        self.critical_path = int(b_level.max()) if n else 0

    # ------------------------------------------------------------------ #

    def children_of(self, index: int) -> np.ndarray:
        """Dense child indices of dense ``index`` (CSR row view)."""
        return self.child_indices[
            self.child_indptr[index] : self.child_indptr[index + 1]
        ]

    def parents_of(self, index: int) -> np.ndarray:
        """Dense parent indices of dense ``index`` (CSR row view)."""
        return self.parent_indices[
            self.parent_indptr[index] : self.parent_indptr[index + 1]
        ]

    def __repr__(self) -> str:
        return (
            f"GraphArrays(num_tasks={self.num_tasks}, "
            f"num_edges={len(self.child_indices)}, "
            f"num_resources={self.num_resources})"
        )


def graph_arrays(graph: TaskGraph) -> GraphArrays:
    """Compile (or fetch the memoized compilation of) ``graph``."""
    key = id(graph)
    cached = _CACHE.get(key)
    if cached is not None and cached[0] is graph:
        return cached[1]
    compiled = GraphArrays(graph)
    # Per-process memo: a pool worker filling its own private cache is the
    # intended behaviour, not cross-process state sharing.
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.pop(next(iter(_CACHE)))  # repro: noqa[REP205] -- per-process memo
    _CACHE[key] = (graph, compiled)  # repro: noqa[REP205] -- per-process memo
    return compiled
