"""Cluster occupancy as capacity/free vectors + a dense finish-time vector.

:class:`ArrayClusterState` replaces the running-task min-heap of
:class:`repro.cluster.state.ClusterState` with one dense ``finish`` vector
indexed by dense task index: ``finish[i]`` is the completion slot of task
``i`` while it runs and :data:`INF` otherwise.  The event sweep is then a
vectorized min + mask instead of repeated heap pops, and — because the
dense index order *is* the task-id order — releasing the masked indices in
ascending order reproduces the heap's ``(finish_time, task_id)`` completion
order exactly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..cluster.state import RunningTask
from ..errors import CapacityError, EnvironmentStateError
from .graphdata import GraphArrays

__all__ = ["ArrayClusterState", "INF"]

#: Finish-time sentinel for "not running" (int64 max, so ``finish.min()``
#: over an idle cluster is the sentinel itself).
INF: int = int(np.iinfo(np.int64).max)


class ArrayClusterState:
    """Vectorized cluster state over one compiled :class:`GraphArrays`.

    The external query surface mirrors :class:`ClusterState` — ``now``,
    ``available``, ``is_idle``, ``running_tasks()``, ``running_ids()``,
    ``earliest_finish_time()``, ``utilization()``, ``signature()`` — so
    observation builders and policies that inspect ``env.cluster`` work
    against either backend.  Mutation happens in dense-index terms
    (:meth:`start_index`, :meth:`sweep`): the environment owns the
    id ↔ index mapping.
    """

    __slots__ = ("arrays", "capacities_arr", "free", "finish", "now", "_num_running")

    def __init__(self, arrays: GraphArrays, capacities: Tuple[int, ...]) -> None:
        if not capacities or any(c <= 0 for c in capacities):
            raise CapacityError(f"invalid capacities {tuple(capacities)}")
        self.arrays = arrays
        self.capacities_arr = np.asarray(capacities, dtype=np.int64)
        self.free = self.capacities_arr.copy()
        self.finish = np.full(arrays.num_tasks, INF, dtype=np.int64)
        self.now: int = 0
        self._num_running: int = 0

    # ------------------------------------------------------------------ #
    # ClusterState-compatible queries
    # ------------------------------------------------------------------ #

    @property
    def capacities(self) -> Tuple[int, ...]:
        """Total slots per resource dimension."""
        return tuple(int(c) for c in self.capacities_arr)

    @property
    def available(self) -> Tuple[int, ...]:
        """Currently free slots per resource."""
        return tuple(int(f) for f in self.free)

    @property
    def num_resources(self) -> int:
        """Resource dimensionality."""
        return len(self.capacities_arr)

    @property
    def num_running(self) -> int:
        """Number of tasks currently occupying the cluster."""
        return self._num_running

    @property
    def is_idle(self) -> bool:
        """True iff no task is running."""
        return self._num_running == 0

    def running_indices(self) -> List[int]:
        """Dense indices of running tasks in ``(finish, index)`` order."""
        running = np.nonzero(self.finish != INF)[0]
        if running.size > 1:
            running = running[np.argsort(self.finish[running], kind="stable")]
        return [int(i) for i in running]

    def running_tasks(self) -> List[RunningTask]:
        """Running tasks as :class:`RunningTask` entries, completion order."""
        arrays = self.arrays
        return [
            RunningTask(
                int(self.finish[i]), arrays.ids_list[i], arrays.demands_list[i]
            )
            for i in self.running_indices()
        ]

    def running_ids(self) -> List[int]:
        """Ids of running tasks, in completion order."""
        ids = self.arrays.ids_list
        return [ids[i] for i in self.running_indices()]

    def can_fit_index(self, index: int) -> bool:
        """True iff dense ``index``'s demands fit in free capacity."""
        return bool((self.arrays.demands[index] <= self.free).all())

    def earliest_finish_time(self) -> int:
        """Finish time of the next task to complete.

        Raises:
            EnvironmentStateError: if the cluster is idle.
        """
        if self._num_running == 0:
            raise EnvironmentStateError("no running tasks: no next event")
        return int(self.finish.min())

    def utilization(self) -> Tuple[float, ...]:
        """Fraction of each resource currently in use."""
        return tuple(
            (int(cap) - int(avail)) / int(cap)
            for cap, avail in zip(self.capacities_arr, self.free)
        )

    # ------------------------------------------------------------------ #
    # mutation (dense-index interface)
    # ------------------------------------------------------------------ #

    def start_index(self, index: int) -> None:
        """Begin running dense ``index`` now, occupying its demands.

        The caller checks fit first (the environment raises the
        backend-identical :class:`CapacityError`); this method is the
        unconditional occupy.
        """
        arrays = self.arrays
        self.free -= arrays.demands[index]
        self.finish[index] = self.now + arrays.durations_list[index]
        self._num_running += 1

    def release_index(self, index: int) -> None:
        """Forget dense ``index``'s occupancy (undo of :meth:`start_index`)."""
        self.finish[index] = INF
        self.free += self.arrays.demands[index]
        self._num_running -= 1

    def sweep(self) -> Tuple[int, List[int]]:
        """Vectorized event sweep: jump to the earliest finish time.

        Returns:
            ``(dt, released)`` — released dense indices in ascending order,
            which equals the object backend's ``(finish, id)`` heap order.

        Raises:
            EnvironmentStateError: if the cluster is idle.
        """
        if self._num_running == 0:
            raise EnvironmentStateError("no running tasks: no next event")
        finish = self.finish
        target = int(finish.min())
        dt = target - self.now
        self.now = target
        released = np.nonzero(finish == target)[0]
        self.free += self.arrays.demands[released].sum(axis=0)
        finish[released] = INF
        self._num_running -= len(released)
        return dt, [int(i) for i in released]

    def advance(self, dt: int) -> List[int]:
        """Move time forward ``dt`` slots; release every reached finish.

        The unit-granularity twin of :meth:`sweep` (for
        ``process_until_completion=False``).

        Raises:
            EnvironmentStateError: if ``dt`` is not positive.
        """
        if dt < 1:
            raise EnvironmentStateError(f"dt must be >= 1, got {dt}")
        self.now += int(dt)
        finish = self.finish
        released = np.nonzero(finish <= self.now)[0]
        if released.size:
            self.free += self.arrays.demands[released].sum(axis=0)
            finish[released] = INF
            self._num_running -= len(released)
        return [int(i) for i in released]

    def reoccupy(self, indices: List[int], finish_times: List[int]) -> None:
        """Re-occupy previously released indices (undo of a sweep/advance)."""
        for index, finish_time in zip(indices, finish_times):
            self.finish[index] = finish_time
            self.free -= self.arrays.demands[index]
        self._num_running += len(indices)

    # ------------------------------------------------------------------ #
    # copying / equality
    # ------------------------------------------------------------------ #

    def clone(self) -> "ArrayClusterState":
        """Independent copy sharing the immutable compiled graph."""
        copy = ArrayClusterState.__new__(ArrayClusterState)
        copy.arrays = self.arrays
        copy.capacities_arr = self.capacities_arr
        copy.free = self.free.copy()
        copy.finish = self.finish.copy()
        copy.now = self.now
        copy._num_running = self._num_running
        return copy

    def signature(self) -> Tuple:
        """Hashable snapshot, equal to the object backend's for equal states."""
        return (
            self.now,
            self.available,
            tuple(sorted(self.running_tasks())),
        )

    def __repr__(self) -> str:
        return (
            f"ArrayClusterState(now={self.now}, available={self.available}, "
            f"running={self._num_running})"
        )
