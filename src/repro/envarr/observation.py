"""Batched observation building over the array backend.

:class:`BatchObservationBuilder` renders ``B`` environment states into one
``(B, size)`` float matrix per call — the input layout batched policy /
value networks consume (ROADMAP item 3) — instead of ``B`` separate
:meth:`ObservationBuilder.build` calls.  The per-task feature table is
precomputed once as an ``(N, per_task)`` matrix from :class:`GraphArrays`'
vectorized features, so filling the ready block is a gather; the cluster
image is accumulated with one ``np.add.at`` scatter over all lanes'
running tasks.  Row ``b`` of the output is element-wise identical to the
object builder's vector for the same state (pinned by the unit tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import EnvConfig
from ..env.observation import observation_size
from .cluster import INF
from .env import ArraySchedulingEnv
from .graphdata import GraphArrays, graph_arrays

__all__ = ["BatchObservationBuilder", "task_feature_table", "node_state_batch"]

#: Dynamic per-node state channels rendered by :func:`node_state_batch`:
#: visible-ready, ready (incl. backlog), running, finished, remaining-runtime.
NODE_STATE_CHANNELS = 5

#: Global feature channels beyond the per-resource free fractions:
#: progress, backlog, normalized clock.
GLOBAL_EXTRA_CHANNELS = 3


def task_feature_table(arrays: GraphArrays, config: EnvConfig) -> np.ndarray:
    """Static per-task features as an ``(N, 2R + 3)`` matrix.

    Rows match :meth:`repro.env.observation.ObservationBuilder`'s
    ``task_features`` layout — demands | runtime | b-level | #children |
    b-loads — with the same ``>= 1`` normalizers.  Shared by the batched
    window observation builder and the graph policy's node encoder.
    """
    n = arrays.num_tasks
    resources = arrays.num_resources
    capacities = np.asarray(config.cluster.capacities, dtype=np.float64)
    max_runtime = max(1, int(arrays.durations.max()))
    critical_path = max(1, arrays.critical_path)
    max_children = max(1, int(arrays.num_children.max()))
    max_bload = np.maximum(arrays.b_load.max(axis=0), 1).astype(np.float64)
    table = np.empty((n, resources * 2 + 3), dtype=np.float64)
    table[:, :resources] = arrays.demands / capacities[None, :]
    table[:, resources] = arrays.durations / max_runtime
    if config.include_graph_features:
        table[:, resources + 1] = arrays.b_level / critical_path
        table[:, resources + 2] = arrays.num_children / max_children
        table[:, resources + 3 :] = arrays.b_load / max_bload[None, :]
    else:
        table[:, resources + 1 :] = 0.0
    return table


def node_state_batch(
    arrays: GraphArrays,
    config: EnvConfig,
    envs: Sequence[ArraySchedulingEnv],
):
    """Dynamic per-node state for ``B`` array-backend lanes at once.

    Returns ``(node_states, globals_vec, ready_lists)``:

    * ``node_states`` — ``(B, N, 5)``: visible-ready, ready (incl.
      backlog), running, finished flags plus the remaining-runtime
      fraction of running tasks;
    * ``globals_vec`` — ``(B, R + 3)``: per-resource free fraction,
      progress, backlog and clock (normalized by the critical path);
    * ``ready_lists`` — each lane's visible ready window as dense task
      indices, in slot order (the graph policy's action layout).

    The object-backend equivalent is
    :meth:`repro.rl.gnn.GraphObservationBuilder.build`; lane ``b`` here
    matches it element-for-element (pinned by the unit tests).
    """
    batch = len(envs)
    n = arrays.num_tasks
    resources = arrays.num_resources
    capacities = np.asarray(config.cluster.capacities, dtype=np.float64)
    max_runtime = max(1, int(arrays.durations.max()))
    critical_path = max(1, arrays.critical_path)
    max_ready = config.max_ready

    node_states = np.zeros((batch, n, NODE_STATE_CHANNELS), dtype=np.float64)
    globals_vec = np.empty(
        (batch, resources + GLOBAL_EXTRA_CHANNELS), dtype=np.float64
    )
    ready_lists = []
    finish = np.stack([env.cluster.finish for env in envs])
    now = np.fromiter((env.cluster.now for env in envs), np.int64, batch)
    running = finish != INF
    remaining = np.where(running, finish - now[:, None], 0)
    node_states[:, :, 2] = running
    node_states[:, :, 4] = remaining / max_runtime
    for b, env in enumerate(envs):
        ready = env._ready
        visible = ready[:max_ready]
        ready_lists.append(list(visible))
        node_states[b, visible, 0] = 1.0
        node_states[b, ready, 1] = 1.0
        if env._finished:
            node_states[b, list(env._finished), 3] = 1.0
        globals_vec[b, :resources] = env.cluster.free / capacities
        globals_vec[b, resources] = env.num_finished / n
        globals_vec[b, resources + 1] = env.backlog_size / max(1, n)
        globals_vec[b, resources + 2] = now[b] / critical_path
    return node_states, globals_vec, ready_lists


class BatchObservationBuilder:
    """Vectorized many-state observation renderer.

    Args:
        graph_or_arrays: the job (or its compiled arrays) the lanes run.
        config: environment configuration (must match the envs').
    """

    def __init__(self, graph_or_arrays, config: EnvConfig) -> None:
        arrays = (
            graph_or_arrays
            if isinstance(graph_or_arrays, GraphArrays)
            else graph_arrays(graph_or_arrays)
        )
        self.arrays = arrays
        self.config = config
        self.size = observation_size(config, arrays.num_resources)
        capacities = np.asarray(config.cluster.capacities, dtype=np.float64)
        self._capacities = capacities
        self._horizon = config.cluster.horizon
        resources = arrays.num_resources
        self._task_table = task_feature_table(arrays, config)
        self._per_task = resources * 2 + 3

    # ------------------------------------------------------------------ #

    def build_batch(self, envs: Sequence[ArraySchedulingEnv]) -> np.ndarray:
        """Render every env into one ``(B, size)`` observation matrix."""
        arrays = self.arrays
        batch = len(envs)
        n = arrays.num_tasks
        resources = arrays.num_resources
        horizon = self._horizon
        max_ready = self.config.max_ready

        # Cluster image: every running task occupies its demands over the
        # prefix ``[0, remaining)`` of the horizon, so the image is the
        # time-axis prefix sum of a sparse difference array — two scatters
        # (one add at column 0, one subtract at column ``remaining``) and
        # one cumsum cover all lanes at once.
        finish = np.stack([env.cluster.finish for env in envs])
        now = np.fromiter((env.cluster.now for env in envs), np.int64, batch)
        remaining = np.clip(finish - now[:, None], 0, horizon)
        remaining[finish == INF] = 0
        lanes, tasks = np.nonzero(remaining > 0)
        diff = np.zeros((batch, resources, horizon + 1), dtype=np.float64)
        if lanes.size:
            spans = remaining[lanes, tasks]
            resource_cols = np.arange(resources)[None, :]
            occupancy = arrays.demands[tasks].astype(np.float64)
            np.add.at(diff, (lanes[:, None], resource_cols, 0), occupancy)
            np.add.at(
                diff, (lanes[:, None], resource_cols, spans[:, None]), -occupancy
            )
        image = np.cumsum(diff, axis=2)[:, :, :horizon]
        image /= self._capacities[None, :, None]

        # Ready block: gather each lane's visible window from the feature
        # table (empty slots stay zero).
        block = np.zeros((batch, max_ready, self._per_task), dtype=np.float64)
        backlog = np.zeros(batch, dtype=np.float64)
        finished = np.zeros(batch, dtype=np.float64)
        for b, env in enumerate(envs):
            visible = env._ready[:max_ready]
            if visible:
                block[b, : len(visible)] = self._task_table[visible]
            backlog[b] = env.backlog_size / max(1, n)
            finished[b] = env.num_finished / n
        out = np.concatenate(
            [
                image.reshape(batch, -1),
                block.reshape(batch, -1),
                backlog[:, None],
                finished[:, None],
            ],
            axis=1,
        )
        if out.shape[1] != self.size:
            raise AssertionError(
                f"observation size mismatch: {out.shape[1]} != {self.size}"
            )
        return out

    def build(self, env: ArraySchedulingEnv) -> np.ndarray:
        """Single-state convenience: row 0 of a one-lane batch."""
        return self.build_batch([env])[0]
