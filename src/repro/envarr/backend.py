"""The ``backend="array"|"object"`` environment switch.

Every environment construction site in the library routes through
:func:`make_env` instead of instantiating :class:`SchedulingEnv` directly,
so flipping ``EnvConfig(backend="array")`` swaps the vectorized core in
under `core.spear`, `online`, `streaming` and `federation` without any
caller changes.  Both backends implement the same MDP bit-for-bit (the
equivalence suite pins this), so the switch is purely a performance knob.
"""

from __future__ import annotations

from typing import Tuple, Union

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..env.scheduling_env import SchedulingEnv
from ..errors import ConfigError
from .env import ArraySchedulingEnv

__all__ = ["AnyEnv", "available_backends", "make_env"]

#: Either backend; they are call-compatible duck types.
AnyEnv = Union[SchedulingEnv, ArraySchedulingEnv]


def available_backends() -> Tuple[str, ...]:
    """Names accepted by ``EnvConfig.backend``, object backend first."""
    return ("object", "array")


def make_env(graph: TaskGraph, config: EnvConfig | None = None) -> AnyEnv:
    """Construct the scheduling environment ``config.backend`` selects.

    Args:
        graph: the job to schedule.
        config: environment shape; ``None`` means ``EnvConfig()`` (object
            backend, matching the pre-switch behaviour).

    Raises:
        ConfigError: on an unknown backend name (only reachable by
            sidestepping ``EnvConfig`` validation).
    """
    if config is None:
        config = EnvConfig()
    backend = config.backend
    if backend == "object":
        return SchedulingEnv(graph, config)
    if backend == "array":
        return ArraySchedulingEnv(graph, config)
    raise ConfigError(
        f"unknown env backend {backend!r}; expected one of {available_backends()}"
    )
