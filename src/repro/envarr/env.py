"""Array-backed scheduling environment — a :class:`SchedulingEnv` twin.

:class:`ArraySchedulingEnv` re-implements the MDP of
:class:`repro.env.SchedulingEnv` over :class:`GraphArrays` +
:class:`ArrayClusterState`: dense indices instead of task ids internally,
a finish-time vector instead of a running heap, and list-free fit masks.
The external surface — actions, rewards, queries, exceptions, the RNG
stream of :meth:`random_playout` — is bit-identical to the object backend;
the Hypothesis equivalence suite (tests/unit/envarr/) compares schedules,
makespans, action masks and generator states across backends.

Because the dense index order equals the task-id order (see
:mod:`repro.envarr.graphdata`), every id tie-break in the object backend
(ready-queue arrival order, completion order) is reproduced by the
corresponding index tie-break here; ids only appear at the query boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster.resources import validate_demands
from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..env.actions import PROCESS, Action
from ..env.scheduling_env import StepResult
from ..errors import CapacityError, EnvironmentStateError
from ..metrics.schedule import Schedule
from ..telemetry import runtime as _telemetry
from .cluster import INF, ArrayClusterState
from .graphdata import GraphArrays, graph_arrays

__all__ = ["ArraySchedulingEnv", "ArrayStepUndo"]


class ArrayStepUndo:
    """Undo record for one :meth:`ArraySchedulingEnv.apply` call.

    Opaque to callers, LIFO-ordered, exactly like
    :class:`repro.env.scheduling_env.StepUndo`.  A schedule step stores the
    started dense index and its ready-queue position; a process step stores
    the time delta, the released dense indices and the pre-step ready length
    (released finish times are all ``now`` after the step, so they need not
    be stored).
    """

    __slots__ = ("result", "index", "ready_index", "dt", "released", "ready_len")

    def __init__(
        self,
        result: StepResult,
        index: int = -1,
        ready_index: int = 0,
        dt: int = 0,
        released: Optional[List[int]] = None,
        ready_len: int = 0,
    ) -> None:
        self.result = result
        self.index = index
        self.ready_index = ready_index
        self.dt = dt
        self.released = released
        self.ready_len = ready_len


class ArraySchedulingEnv:
    """Deterministic scheduling MDP over dense arrays.

    Drop-in for :class:`repro.env.SchedulingEnv` (construct through
    :func:`repro.envarr.make_env` or ``EnvConfig(backend="array")``).
    """

    def __init__(self, graph: TaskGraph, config: EnvConfig | None = None) -> None:
        self.graph = graph
        self.config = config if config is not None else EnvConfig()
        capacities = self.config.cluster.capacities
        if len(capacities) != graph.num_resources:
            raise EnvironmentStateError(
                f"cluster has {len(capacities)} resource dims, graph has "
                f"{graph.num_resources}"
            )
        for task in graph:
            validate_demands(task.demands, capacities, label=task.label())
        self.arrays: GraphArrays = graph_arrays(graph)
        self._num_tasks: int = graph.num_tasks
        # One immutable StepResult per task (dense-indexed), shared across
        # clones — mirrors the object backend's schedule-result table.
        self._sched_results: List[StepResult] = [
            StepResult(0, False, (), tid) for tid in self.arrays.ids_list
        ]
        self.reset()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Return the environment to the initial state of the episode."""
        arrays = self.arrays
        self._max_ready: int = self.config.max_ready
        self._until_completion: bool = self.config.process_until_completion
        self._verify_terminal: bool = self.config.verify_terminal
        self.cluster = ArrayClusterState(arrays, self.config.cluster.capacities)
        self._unmet: List[int] = [int(d) for d in arrays.indegree]
        # Ready queue of dense indices in arrival order; index order equals
        # id order, so the initial queue matches the object backend's
        # topological-order seeding.
        self._ready: List[int] = [
            int(i) for i in arrays.topo if self._unmet[int(i)] == 0
        ]
        self._finished: set[int] = set()
        self._starts: Dict[int, int] = {}
        self.steps_taken: int = 0
        self.undos_taken: int = 0
        self.clones_made: int = 0
        self._version: int = 0
        self._actions_cache: List[Action] = []
        self._actions_version: int = -1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """True iff every task in the graph has finished."""
        return len(self._finished) == self._num_tasks

    @property
    def now(self) -> int:
        """Current simulation time (slots)."""
        return self.cluster.now

    @property
    def makespan(self) -> int:
        """Completion time of the job; only meaningful once :attr:`done`."""
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        return self.cluster.now

    @property
    def num_finished(self) -> int:
        """Number of completed tasks."""
        return len(self._finished)

    @property
    def backlog_size(self) -> int:
        """Ready tasks hidden beyond the visibility window."""
        return max(0, len(self._ready) - self.config.max_ready)

    def visible_ready(self) -> List[int]:
        """Task ids in the visibility window, in backlog arrival order."""
        ids = self.arrays.ids_list
        return [ids[i] for i in self._ready[: self._max_ready]]

    def all_ready(self) -> List[int]:
        """All ready task ids (visible + backlog)."""
        ids = self.arrays.ids_list
        return [ids[i] for i in self._ready]

    def running_ids(self) -> List[int]:
        """Ids of currently running tasks in completion order."""
        return self.cluster.running_ids()

    def finished_ids(self) -> List[int]:
        """Ids of completed tasks (sorted)."""
        ids = self.arrays.ids_list
        return [ids[i] for i in sorted(self._finished)]

    def unfinished_ids(self) -> List[int]:
        """Ids of tasks not yet completed (running, ready or pending)."""
        ids = self.arrays.ids_list
        finished = self._finished
        return [ids[i] for i in range(self._num_tasks) if i not in finished]

    def start_times(self) -> Dict[int, int]:
        """Start slot of every task started so far (keyed by task id)."""
        ids = self.arrays.ids_list
        return {ids[i]: start for i, start in self._starts.items()}

    def legal_actions(self) -> List[Action]:
        """Actions valid in the current state (see the object backend)."""
        if self._actions_version != self._version:
            self._refresh_actions()
        return list(self._actions_cache)

    def _refresh_actions(self) -> None:
        """Recompute the memoized legal-action list for the current state."""
        actions: List[Action] = []
        free = self.cluster.free.tolist()
        demands_list = self.arrays.demands_list
        append = actions.append
        index = 0
        for task_index in self._ready[: self._max_ready]:
            for demand, avail in zip(demands_list[task_index], free):
                if demand > avail:
                    break
            else:
                append(index)
            index += 1
        if self.cluster._num_running:
            append(PROCESS)
        self._actions_cache = actions
        self._actions_version = self._version

    def action_mask(self) -> List[bool]:
        """Legality mask over the fixed action space (see object backend)."""
        mask = [False] * (self.config.max_ready + 1)
        for action in self.legal_actions():
            mask[action] = True  # PROCESS == -1 lands on the last entry
        return mask

    def expansion_actions(self, work_conserving: bool = True) -> List[Action]:
        """Candidate actions for MCTS expansion (Sec. III-C filters)."""
        if self._actions_version != self._version:
            self._refresh_actions()
        actions = self._actions_cache
        if work_conserving and len(actions) > 1 and actions[-1] == PROCESS:
            return actions[:-1]
        return list(actions)

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def step(self, action: Action) -> StepResult:
        """Apply ``action``; identical dynamics to the object backend.

        Raises:
            EnvironmentStateError: on an illegal action (episode done,
                index out of window, or PROCESS on an idle cluster).
            CapacityError: if the chosen task does not fit.
        """
        finished = self._finished
        if len(finished) == self._num_tasks:
            raise EnvironmentStateError("episode already finished")
        self.steps_taken += 1
        if action == PROCESS:
            cluster = self.cluster
            if cluster._num_running == 0:
                raise EnvironmentStateError("PROCESS on an idle cluster")
            if self._until_completion:
                dt, released = cluster.sweep()
            else:
                dt = 1
                released = cluster.advance(1)
            completed = self._on_completions(released)
            self._version += 1
            done = len(finished) == self._num_tasks
            if done and self._verify_terminal:
                self.verify_terminal_state()
            return StepResult(-dt, done, completed)
        index = self._checked_ready_index(action)
        self._start_ready(index, action)
        self._version += 1
        return self._sched_results[index]

    def apply(self, action: Action) -> ArrayStepUndo:
        """Like :meth:`step`, but also return an undo record."""
        if self.done:
            raise EnvironmentStateError("episode already finished")
        self.steps_taken += 1
        if action == PROCESS:
            cluster = self.cluster
            if cluster._num_running == 0:
                raise EnvironmentStateError("PROCESS on an idle cluster")
            ready_len = len(self._ready)
            if self._until_completion:
                dt, released = cluster.sweep()
            else:
                dt = 1
                released = cluster.advance(1)
            completed = self._on_completions(released)
            self._version += 1
            done = len(self._finished) == self._num_tasks
            if done and self._verify_terminal:
                self.verify_terminal_state()
            return ArrayStepUndo(
                StepResult(-dt, done, completed),
                dt=dt,
                released=released,
                ready_len=ready_len,
            )
        index = self._checked_ready_index(action)
        self._start_ready(index, action)
        self._version += 1
        return ArrayStepUndo(
            self._sched_results[index], index=index, ready_index=action
        )

    def undo(self, record: ArrayStepUndo) -> None:
        """Revert one :meth:`apply` call (strict LIFO order)."""
        cluster = self.cluster
        index = record.index
        if index >= 0:  # schedule step
            cluster.release_index(index)
            self._ready.insert(record.ready_index, index)
            del self._starts[index]
        else:  # process step
            released = record.released or []
            # Released finish times all equal the post-step ``now`` (the
            # sweep jumps exactly to the earliest finish; in unit mode any
            # earlier finish was released by a previous step).
            cluster.reoccupy(released, [cluster.now] * len(released))
            cluster.now -= record.dt
            del self._ready[record.ready_len :]
            unmet = self._unmet
            finished = self._finished
            children_list = self.arrays.children_list
            for released_index in released:
                finished.discard(released_index)
                for child in children_list[released_index]:
                    unmet[child] += 1
        self.steps_taken -= 1
        self.undos_taken += 1
        self._version += 1

    def _checked_ready_index(self, action: int) -> int:
        """Validate a schedule action; return the dense task index."""
        ready = self._ready
        num_visible = len(ready)
        if num_visible > self._max_ready:
            num_visible = self._max_ready
        if not 0 <= action < num_visible:
            raise EnvironmentStateError(
                f"schedule index {action} out of range (visible={num_visible})"
            )
        return ready[action]

    def _start_ready(self, index: int, action: int) -> None:
        """Fit-check and start dense ``index``, removing it from the queue."""
        cluster = self.cluster
        demands = self.arrays.demands_list[index]
        free = cluster.free
        for r, demand in enumerate(demands):
            if demand > free[r]:
                raise CapacityError(
                    f"task {self.arrays.ids_list[index]}: demands {demands} "
                    f"exceed free capacity {cluster.available}"
                )
        cluster.start_index(index)
        del self._ready[action]
        self._starts[index] = cluster.now

    def _on_completions(self, released: List[int]) -> Tuple[int, ...]:
        """Finish released indices; promote newly ready children."""
        finished = self._finished
        ready = self._ready
        unmet = self._unmet
        children_list = self.arrays.children_list
        ids = self.arrays.ids_list
        completed: List[int] = []
        for index in released:
            completed.append(ids[index])
            finished.add(index)
            newly_ready: List[int] = []
            for child in children_list[index]:
                remaining = unmet[child] - 1
                unmet[child] = remaining
                if remaining == 0:
                    newly_ready.append(child)
            if newly_ready:
                # children_list rows are ascending, so arrival order within
                # one completion is already the object backend's sorted-id
                # order.
                ready.extend(newly_ready)
        return tuple(completed)

    def random_playout(self, rng, limit: int) -> int:
        """Uniformly random work-conserving playout; same RNG stream.

        Draw-for-draw identical to the object backend's
        :meth:`SchedulingEnv.random_playout` — ``integers(0, n)`` per
        decision with fitting candidates, a dummy ``integers(0, 1)`` per
        processing decision — so trajectories and final generator states
        match bit-for-bit.  Internally the cluster arrays are unpacked into
        flat Python locals for the loop and written back once at the end.

        Raises:
            RuntimeError: if ``limit`` steps do not finish the episode.
        """
        cluster = self.cluster
        free: List[int] = cluster.free.tolist()
        finish: List[int] = cluster.finish.tolist()
        running: List[int] = cluster.running_indices()
        now = cluster.now
        ready = self._ready
        finished = self._finished
        starts = self._starts
        unmet = self._unmet
        arrays = self.arrays
        demands_list = arrays.demands_list
        durations_list = arrays.durations_list
        children_list = arrays.children_list
        num_tasks = self._num_tasks
        max_ready = self._max_ready
        until_completion = self._until_completion
        two_dim = len(free) == 2
        integers = rng.integers
        steps = 0
        while len(finished) != num_tasks:
            if steps >= limit:
                raise RuntimeError("rollout exceeded step limit; livelocked policy")
            steps += 1
            visible = ready if len(ready) <= max_ready else ready[:max_ready]
            actions: List[int] = []
            position = 0
            if two_dim:
                free0, free1 = free
                for task_index in visible:
                    demands = demands_list[task_index]
                    if demands[0] <= free0 and demands[1] <= free1:
                        actions.append(position)
                    position += 1
            else:
                for task_index in visible:
                    for demand, avail in zip(demands_list[task_index], free):
                        if demand > avail:
                            break
                    else:
                        actions.append(position)
                    position += 1
            n = len(actions)
            if n:
                chosen = actions[int(integers(0, n))]
                task_index = ready[chosen]
                for r, demand in enumerate(demands_list[task_index]):
                    free[r] -= demand
                finish[task_index] = now + durations_list[task_index]
                running.append(task_index)
                del ready[chosen]
                starts[task_index] = now
                continue
            if not running:
                raise EnvironmentStateError("no legal actions")
            integers(0, 1)
            if until_completion:
                target = finish[running[0]]
                for task_index in running:
                    if finish[task_index] < target:
                        target = finish[task_index]
                now = target
            else:
                now += 1
            released = sorted(i for i in running if finish[i] <= now)
            for task_index in released:
                for r, demand in enumerate(demands_list[task_index]):
                    free[r] += demand
                finish[task_index] = INF
                running.remove(task_index)
                finished.add(task_index)
                newly_ready: List[int] = []
                for child in children_list[task_index]:
                    remaining = unmet[child] - 1
                    unmet[child] = remaining
                    if remaining == 0:
                        newly_ready.append(child)
                if newly_ready:
                    ready.extend(newly_ready)
        # Write the unpacked locals back into the cluster arrays.
        cluster.free[:] = free
        cluster.finish[:] = finish
        cluster.now = now
        cluster._num_running = len(running)
        self.steps_taken += steps
        self._version += steps
        if self._verify_terminal:
            self.verify_terminal_state()
        return now

    # ------------------------------------------------------------------ #
    # copying / export
    # ------------------------------------------------------------------ #

    def clone(self) -> "ArraySchedulingEnv":
        """Cheap independent copy sharing the compiled graph arrays."""
        copy = ArraySchedulingEnv.__new__(ArraySchedulingEnv)
        copy.graph = self.graph
        copy.config = self.config
        copy.arrays = self.arrays
        copy.cluster = self.cluster.clone()
        copy._unmet = list(self._unmet)
        copy._ready = list(self._ready)
        copy._finished = set(self._finished)
        copy._starts = dict(self._starts)
        copy.steps_taken = self.steps_taken
        copy.undos_taken = self.undos_taken
        copy.clones_made = 0
        self.clones_made += 1
        copy._max_ready = self._max_ready
        copy._until_completion = self._until_completion
        copy._verify_terminal = self._verify_terminal
        copy._num_tasks = self._num_tasks
        copy._sched_results = self._sched_results
        copy._version = self._version
        copy._actions_cache = self._actions_cache
        copy._actions_version = self._actions_version
        return copy

    def signature(self) -> Tuple:
        """Hashable snapshot, equal across backends for equal states."""
        ids = self.arrays.ids_list
        return (
            self.cluster.signature(),
            tuple(ids[i] for i in self._ready),
            frozenset(ids[i] for i in self._finished),
        )

    def verify_terminal_state(self) -> None:
        """Assert every schedule invariant on the finished episode."""
        from ..analysis.verifier import verify_placements  # local: avoids a cycle

        if not self.done:
            raise EnvironmentStateError("episode not finished")
        ids = self.arrays.ids_list
        durations = self.arrays.durations_list
        placements = [
            (ids[i], start, start + durations[i])
            for i, start in self._starts.items()
        ]
        report = verify_placements(
            placements, self.graph, self.config.cluster.capacities
        )
        if not report.ok:
            raise EnvironmentStateError(
                "terminal state violates schedule invariants:\n"
                + report.summary()
            )

    def to_schedule(self, scheduler: str = "unknown", wall_time: float = 0.0) -> Schedule:
        """Export the finished episode as a :class:`Schedule` (telemetry flush)."""
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        tm = _telemetry.for_config(self.config.telemetry)
        if tm.enabled:
            tm.inc("env.episodes")
            tm.inc("env.steps", self.steps_taken)
            tm.inc("env.undos", self.undos_taken)
            tm.inc("env.clones", self.clones_made)
            tm.event(
                "env.episode",
                scheduler=scheduler,
                makespan=self.cluster.now,
                steps=self.steps_taken,
                undos=self.undos_taken,
                clones=self.clones_made,
                tasks=self._num_tasks,
            )
        return Schedule.from_starts(
            self.start_times(), self.graph, scheduler=scheduler, wall_time=wall_time
        )

    def __repr__(self) -> str:
        return (
            f"ArraySchedulingEnv(now={self.now}, ready={len(self._ready)}, "
            f"running={self.cluster._num_running}, "
            f"finished={len(self._finished)}/{self._num_tasks})"
        )
