"""Online multi-job cluster scheduling.

The paper evaluates Spear per job (one DAG, empty cluster), but positions
it as a *cluster scheduler*.  This package provides the deployment-mode
substrate: jobs arrive over time, share the resource pool, and the
scheduler ranks ready tasks across all active jobs.

Search-based scheduling (MCTS/Spear) over an open arrival stream is
future work even in the paper; here the online policies are *rankers* —
pure functions from (task, job context, cluster) to a priority key — which
covers every greedy baseline (SJF, CP within-job, Tetris packing, FIFO by
arrival) and composes with per-job Spear planning via
:func:`plan_priority_ranker`.
"""

from .rankers import (
    Ranker,
    fifo_ranker,
    sjf_ranker,
    cp_ranker,
    tetris_ranker,
    plan_priority_ranker,
    resolve_ranker,
)
from .simulator import (
    ArrivingJob,
    JobOutcome,
    OnlineResult,
    OnlineSimulator,
    verify_execution,
)

__all__ = [
    "Ranker",
    "fifo_ranker",
    "sjf_ranker",
    "cp_ranker",
    "tetris_ranker",
    "plan_priority_ranker",
    "resolve_ranker",
    "ArrivingJob",
    "JobOutcome",
    "OnlineResult",
    "OnlineSimulator",
    "verify_execution",
]
