"""Event-driven multi-job cluster simulation, with optional fault injection.

Jobs arrive at given times; the simulator maintains one shared
:class:`repro.cluster.ClusterState` and, at every event (a job arrival,
a task completion, or — in fault-aware mode — a crash, recovery, or
retry becoming ready), starts ready tasks in ranker order while they
fit.  It reports per-job completion times (JCT), the batch makespan, and
mean utilization — the metrics an operator of a Spear-style scheduler
would watch.

The engine is layered on the :mod:`repro.sim` discrete-event kernel
(see DESIGN.md Sec. 11 for the architecture):

* **workload** (:mod:`repro.online.workload`) — stream validation,
  arrivals as ``ARRIVAL`` kernel events, admission;
* **execution** (:mod:`repro.online.execution`) — attempt lifecycle on
  the shared :class:`~repro.cluster.ClusterState` (completions surface
  as kernel events through
  :class:`~repro.cluster.sim_adapter.ClusterProcess`), fault timeline
  firing, retries, crash kills, job abandonment;
* **policy** (:mod:`repro.online.policy`) — ranker/plan-priority
  dispatch and :class:`~repro.schedulers.rescheduler.ReschedulingScheduler`
  replan triggers (crash-triggered replans are ``REPLAN`` kernel
  events, the last class of the instant);
* **reporting** (:mod:`repro.online.reporting`) — outcomes, executed
  schedules, fault records, telemetry, utilization integrals.

:class:`OnlineSimulator` itself is only the orchestrator: it wires the
layers onto one kernel and drives tick after tick.

Fault-aware mode (``run(..., faults=FaultPlan(...))``) executes under a
seeded fault model (:mod:`repro.faults`):

* a transiently failed attempt occupies the cluster for its realized
  runtime, fails at its finish, and is retried after capped exponential
  backoff; a task that exhausts the attempt budget fails its whole job
  — *reported*, never silently dropped;
* a machine crash removes capacity; running work displaced by the loss
  is killed and re-enqueued (crash kills always retry — crashes are not
  the task's fault); completed outputs are durable (external storage),
  so DAG precedence over the residual graph is preserved as-is;
* every incident lands both in :attr:`OnlineResult.fault_events` and in
  the telemetry pipeline as a ``fault.<kind>`` event.

Dynamic rescheduling (``run(..., rescheduler=...)``) replans each job's
residual DAG — completed tasks frozen, running tasks pinned, current
(degraded) capacities in the cluster snapshot — on admission and on
every fault event; dispatch then follows the plan's priority order
(jobs FIFO, plan order within a job).

Determinism: every occurrence is a kernel event ordered by
``(time, priority_class, seq)`` with the documented class table
(crash < recovery < completion < retry-ready < arrival < route <
steal < replan);
candidate order under equal ranker keys falls back to (job index, task
id); all fault draws are keyed by (seed, job, task, attempt).  The same
seed reproduces the run bit-for-bit, retry counts included.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import ClusterConfig
from ..errors import EnvironmentStateError
from ..faults.plan import FaultPlan
from ..schedulers.base import Scheduler
from ..sim import SimKernel
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from .execution import ExecutionLayer
from .policy import PolicyLayer
from .rankers import Ranker
from .reporting import ReportingLayer
from .results import ArrivingJob, JobOutcome, OnlineResult, verify_execution
from .workload import WorkloadLayer, validate_stream

__all__ = [
    "ArrivingJob",
    "JobOutcome",
    "OnlineResult",
    "OnlineSimulator",
    "verify_execution",
]


class OnlineSimulator:
    """Shared-cluster simulation of an arrival stream.

    Args:
        cluster: capacities (defaults to the paper's 20x20).
        max_steps: global safety cap on scheduling events.
        telemetry: where serving metrics report (``online.jct``
            histogram, per-job ``online.job`` events, queue-length and
            utilization gauges, ``fault.*`` incident events).  ``None``
            defers to the globally active pipeline.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        max_steps: int = 1_000_000,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.cluster_config = cluster if cluster is not None else ClusterConfig()
        self.max_steps = max_steps
        self.telemetry = telemetry

    def run(
        self,
        jobs: Sequence[ArrivingJob],
        ranker: Ranker,
        faults: Optional[FaultPlan] = None,
        rescheduler: Optional[Scheduler] = None,
    ) -> OnlineResult:
        """Simulate ``jobs`` under ``ranker``; return the outcome.

        Args:
            jobs: the arrival stream.
            ranker: base dispatch order (see :mod:`repro.online.rankers`).
            faults: seeded fault model to execute under; ``None`` runs
                fault-free (the historical behaviour, unchanged).
            rescheduler: context-aware scheduler replanning each job's
                residual DAG on admission and on every fault event;
                dispatch then follows plan priority (jobs FIFO, plan
                order within a job), falling back to ``ranker`` for
                unplanned tasks.

        With telemetry active the run is wrapped in an ``online.run``
        span; every completed job lands in the ``online.jct`` histogram
        plus an ``online.job`` point event, the event loop keeps the
        ``online.active_jobs`` / ``online.ready_tasks`` gauges current,
        per-resource mean utilization is published as
        ``online.utilization.r<i>`` gauges at the end, and every fault
        incident is mirrored as a ``fault.<kind>`` event.

        Raises:
            ConfigError: on an empty stream, a task that can never fit,
                or a fault plan the cluster cannot survive.
            EnvironmentStateError: if the event cap is exceeded, or (in
                fault-free mode only) the DAG state goes inconsistent.
        """
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            "online.run",
            jobs=len(jobs),
            ranker=type(ranker).__name__,
            faults=faults is not None and not faults.is_null,
            rescheduler=rescheduler.name if rescheduler is not None else "",
        ) as span:
            result = self._run(jobs, ranker, tm, faults, rescheduler)
            if tm.enabled:
                span.set(
                    makespan=result.makespan,
                    mean_jct=result.mean_jct,
                    max_jct=result.max_jct,
                    recoveries=result.recoveries,
                    retries=result.total_retries,
                    failed_jobs=result.failed_jobs,
                )
                for r, util in enumerate(result.mean_utilization):
                    tm.gauge(f"online.utilization.r{r}", util)
                tm.inc("online.jobs", len(jobs))
        return result

    def _run(
        self,
        jobs: Sequence[ArrivingJob],
        ranker: Ranker,
        tm: _telemetry.TelemetryLike,
        faults: Optional[FaultPlan],
        rescheduler: Optional[Scheduler],
    ) -> OnlineResult:
        capacities = self.cluster_config.capacities
        validate_stream(jobs, capacities)
        if faults is not None and not faults.is_null:
            faults.validate_against(capacities)

        # The simulation starts at the first arrival; the kernel clamps
        # any pre-history fault-timeline entries onto that instant.
        first_arrival = min(job.arrival_time for job in jobs)
        # Cluster task ids must be globally unique, so a task is handled
        # as job_index * offset + task_id.
        offset = 1 + max(max(job.graph.task_ids) for job in jobs)

        kernel = SimKernel(start=first_arrival)
        reporting = ReportingLayer(capacities, tm, start_time=first_arrival)
        execution = ExecutionLayer(capacities, kernel, reporting, offset, faults)
        policy = PolicyLayer(ranker, rescheduler, kernel, execution)
        execution.policy = policy
        reporting.exec_label = policy.exec_label
        workload = WorkloadLayer(jobs, kernel, execution, policy)

        # Settle the opening instant (first arrivals, pre-history
        # faults) and fill the cluster once before the loop gauges.
        kernel.drain_due()
        policy.dispatch_round()

        steps = 0
        while execution.active or workload.has_pending:
            steps += 1
            if steps > self.max_steps:
                raise EnvironmentStateError("online simulation exceeded step cap")
            reporting.gauges(execution)
            target = kernel.next_event_time()
            if target is None:
                if execution.fstate is not None:
                    # Permanently stuck (e.g. unrecovered capacity loss
                    # below some task's demand): report, don't lose.
                    execution.fail_stuck()
                    continue
                raise EnvironmentStateError(
                    "idle cluster with active jobs but nothing ready: "
                    "inconsistent DAG state"
                )
            reporting.account(execution.state, target)
            kernel.tick_to(target)
            policy.dispatch_round()

        return reporting.finalize(execution.state.now, execution.fstate)
