"""Event-driven multi-job cluster simulation.

Jobs arrive at given times; the simulator maintains one shared
:class:`repro.cluster.ClusterState` and, at every event (a job arrival or
a task completion), starts ready tasks in ranker order while they fit.
It reports per-job completion times (JCT), the batch makespan, and mean
utilization — the metrics an operator of a Spear-style scheduler would
watch.

Determinism: events at equal times process arrivals before completions'
follow-up placements; candidate order under equal ranker keys falls back
to (job index, task id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import fits, validate_demands
from ..cluster.state import ClusterState
from ..config import ClusterConfig
from ..dag.features import GraphFeatures, compute_features
from ..dag.graph import TaskGraph
from ..errors import ConfigError, EnvironmentStateError
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from .rankers import Ranker, TaskContext

__all__ = ["ArrivingJob", "JobOutcome", "OnlineResult", "OnlineSimulator"]


@dataclass(frozen=True)
class ArrivingJob:
    """One job of the arrival stream."""

    arrival_time: int
    graph: TaskGraph

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be >= 0")


@dataclass(frozen=True)
class JobOutcome:
    """Completion record of one job."""

    job_index: int
    arrival_time: int
    completion_time: int
    num_tasks: int

    @property
    def jct(self) -> int:
        """Job completion time (completion - arrival)."""
        return self.completion_time - self.arrival_time


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of one simulation run."""

    outcomes: Tuple[JobOutcome, ...]
    makespan: int
    mean_utilization: Tuple[float, ...]

    @property
    def mean_jct(self) -> float:
        """Average job completion time."""
        return sum(o.jct for o in self.outcomes) / len(self.outcomes)

    @property
    def max_jct(self) -> int:
        """Worst job completion time."""
        return max(o.jct for o in self.outcomes)


class _ActiveJob:
    """Mutable per-job bookkeeping inside the simulator."""

    __slots__ = ("index", "arrival", "graph", "features", "unmet", "ready", "remaining")

    def __init__(self, index: int, arrival: int, graph: TaskGraph) -> None:
        self.index = index
        self.arrival = arrival
        self.graph = graph
        self.features: GraphFeatures = compute_features(graph)
        self.unmet: Dict[int, int] = {
            tid: len(graph.parents(tid)) for tid in graph.task_ids
        }
        self.ready: List[int] = [
            tid for tid in graph.topological_order() if self.unmet[tid] == 0
        ]
        self.remaining: int = graph.num_tasks


class OnlineSimulator:
    """Shared-cluster simulation of an arrival stream.

    Args:
        cluster: capacities (defaults to the paper's 20x20).
        max_steps: global safety cap on scheduling events.
        telemetry: where serving metrics report (``online.jct``
            histogram, per-job ``online.job`` events, queue-length and
            utilization gauges).  ``None`` defers to the globally
            active pipeline.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        max_steps: int = 1_000_000,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.cluster_config = cluster if cluster is not None else ClusterConfig()
        self.max_steps = max_steps
        self.telemetry = telemetry

    def run(self, jobs: Sequence[ArrivingJob], ranker: Ranker) -> OnlineResult:
        """Simulate ``jobs`` under ``ranker``; return the outcome.

        With telemetry active the run is wrapped in an ``online.run``
        span; every completed job lands in the ``online.jct`` histogram
        plus an ``online.job`` point event, the event loop keeps the
        ``online.active_jobs`` / ``online.ready_tasks`` gauges current,
        and per-resource mean utilization is published as
        ``online.utilization.r<i>`` gauges at the end.

        Raises:
            ConfigError: on an empty stream or a task that can never fit.
            EnvironmentStateError: if the event cap is exceeded.
        """
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            "online.run", jobs=len(jobs), ranker=type(ranker).__name__
        ) as span:
            result = self._run(jobs, ranker, tm)
            if tm.enabled:
                span.set(
                    makespan=result.makespan,
                    mean_jct=result.mean_jct,
                    max_jct=result.max_jct,
                )
                for r, util in enumerate(result.mean_utilization):
                    tm.gauge(f"online.utilization.r{r}", util)
                tm.inc("online.jobs", len(jobs))
        return result

    def _run(
        self, jobs: Sequence[ArrivingJob], ranker: Ranker, tm: _telemetry.TelemetryLike
    ) -> OnlineResult:
        tm_enabled = tm.enabled
        if not jobs:
            raise ConfigError("need at least one arriving job")
        capacities = self.cluster_config.capacities
        for job in jobs:
            if job.graph.num_resources != len(capacities):
                raise ConfigError(
                    f"job graph has {job.graph.num_resources} resource dims, "
                    f"cluster has {len(capacities)}"
                )
            for task in job.graph:
                validate_demands(task.demands, capacities, label=task.label())

        ordered = sorted(enumerate(jobs), key=lambda e: (e[1].arrival_time, e[0]))
        pending = [(job.arrival_time, index, job) for index, job in ordered]
        pending_pos = 0

        state = ClusterState(capacities)
        active: Dict[int, _ActiveJob] = {}
        # Running task handle -> (job index, task id); cluster task ids must
        # be globally unique, so encode as job_index * OFFSET + task_id.
        offset = 1 + max(max(job.graph.task_ids) for job in jobs)
        outcomes: List[JobOutcome] = []
        busy_area = [0] * len(capacities)  # slot-weighted usage integral
        last_time = 0
        steps = 0

        def admit_arrivals() -> None:
            nonlocal pending_pos
            while pending_pos < len(pending) and pending[pending_pos][0] <= state.now:
                _, index, job = pending[pending_pos]
                active[index] = _ActiveJob(index, job.arrival_time, job.graph)
                pending_pos += 1

        def start_fitting() -> None:
            """Work-conserving fill in ranker order."""
            while True:
                free = state.available
                candidates: List[Tuple[Tuple, int, int]] = []
                for job in active.values():
                    for tid in job.ready:
                        task = job.graph.task(tid)
                        if fits(task.demands, free):
                            ctx = TaskContext(
                                task=task,
                                job_index=job.index,
                                arrival_time=job.arrival,
                                features=job.features,
                                free=free,
                                now=state.now,
                            )
                            candidates.append(
                                (ranker(ctx), job.index, tid)
                            )
                if not candidates:
                    return
                _, job_index, tid = min(candidates)
                job = active[job_index]
                task = job.graph.task(tid)
                state.start(job_index * offset + tid, task.demands, task.runtime)
                job.ready.remove(tid)

        def account_usage(until: int) -> None:
            nonlocal last_time
            if until <= last_time:
                return
            span = until - last_time
            for r in range(len(capacities)):
                busy_area[r] += span * (capacities[r] - state.available[r])
            last_time = until

        # Jump to the first arrival.
        first_arrival = pending[0][0]
        if first_arrival > 0:
            state.now = first_arrival
            last_time = first_arrival

        admit_arrivals()
        start_fitting()
        while active or pending_pos < len(pending):
            steps += 1
            if steps > self.max_steps:
                raise EnvironmentStateError("online simulation exceeded step cap")
            if tm_enabled:
                tm.gauge("online.active_jobs", float(len(active)))
                tm.gauge(
                    "online.ready_tasks",
                    float(sum(len(j.ready) for j in active.values())),
                )
            next_arrival = (
                pending[pending_pos][0] if pending_pos < len(pending) else None
            )
            if state.is_idle:
                if next_arrival is None:
                    raise EnvironmentStateError(
                        "idle cluster with active jobs but nothing ready: "
                        "inconsistent DAG state"
                    )
                account_usage(next_arrival)
                state.now = max(state.now, next_arrival)
                admit_arrivals()
                start_fitting()
                continue
            next_completion = state.earliest_finish_time()
            if next_arrival is not None and next_arrival < next_completion:
                account_usage(next_arrival)
                if next_arrival > state.now:
                    # No completion can occur before the arrival.
                    state.advance(next_arrival - state.now)
                admit_arrivals()
                start_fitting()
                continue
            account_usage(next_completion)
            _, completed = state.advance_to_next_event()
            admit_arrivals()
            for handle in completed:
                job_index, tid = divmod(handle, offset)
                job = active[job_index]
                job.remaining -= 1
                for child in job.graph.children(tid):
                    job.unmet[child] -= 1
                    if job.unmet[child] == 0:
                        job.ready.append(child)
                if job.remaining == 0:
                    outcome = JobOutcome(
                        job_index=job.index,
                        arrival_time=job.arrival,
                        completion_time=state.now,
                        num_tasks=job.graph.num_tasks,
                    )
                    outcomes.append(outcome)
                    if tm_enabled:
                        tm.observe("online.jct", float(outcome.jct))
                        tm.event(
                            "online.job",
                            job=outcome.job_index,
                            jct=outcome.jct,
                            arrival=outcome.arrival_time,
                            completion=outcome.completion_time,
                            tasks=outcome.num_tasks,
                        )
                    del active[job_index]
            start_fitting()

        makespan = state.now
        horizon = max(1, makespan - first_arrival)
        utilization = tuple(
            busy_area[r] / (horizon * capacities[r]) for r in range(len(capacities))
        )
        outcomes.sort(key=lambda o: o.job_index)
        return OnlineResult(
            outcomes=tuple(outcomes),
            makespan=makespan,
            mean_utilization=utilization,
        )
