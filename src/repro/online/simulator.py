"""Event-driven multi-job cluster simulation, with optional fault injection.

Jobs arrive at given times; the simulator maintains one shared
:class:`repro.cluster.ClusterState` and, at every event (a job arrival,
a task completion, or — in fault-aware mode — a crash, recovery, or
retry becoming ready), starts ready tasks in ranker order while they
fit.  It reports per-job completion times (JCT), the batch makespan, and
mean utilization — the metrics an operator of a Spear-style scheduler
would watch.

Fault-aware mode (``run(..., faults=FaultPlan(...))``) executes under a
seeded fault model (:mod:`repro.faults`):

* a transiently failed attempt occupies the cluster for its realized
  runtime, fails at its finish, and is retried after capped exponential
  backoff; a task that exhausts the attempt budget fails its whole job
  — *reported*, never silently dropped;
* a machine crash removes capacity; running work displaced by the loss
  is killed and re-enqueued (crash kills always retry — crashes are not
  the task's fault); completed outputs are durable (external storage),
  so DAG precedence over the residual graph is preserved as-is;
* every incident lands both in :attr:`OnlineResult.fault_events` and in
  the telemetry pipeline as a ``fault.<kind>`` event.

Dynamic rescheduling (``run(..., rescheduler=...)``) replans each job's
residual DAG — completed tasks frozen, running tasks pinned, current
(degraded) capacities in the cluster snapshot — on admission and on
every fault event; dispatch then follows the plan's priority order
(jobs FIFO, plan order within a job).  Pair with
:class:`repro.schedulers.rescheduler.ReschedulingScheduler` for
budgeted replanning with heuristic fallback.

Determinism: events at equal times process externals (arrivals, fault
timeline, retry releases) before completions' follow-up placements;
candidate order under equal ranker keys falls back to (job index, task
id); all fault draws are keyed by (seed, job, task, attempt), so the
same seed reproduces the run bit-for-bit, retry counts included.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import fits, validate_demands
from ..cluster.state import ClusterState
from ..config import ClusterConfig
from ..dag.features import GraphFeatures, compute_features
from ..dag.graph import TaskGraph
from ..errors import ConfigError, EnvironmentStateError, ReproError
from ..faults.events import (
    CRASH,
    JOB_FAILED,
    RECOVERY,
    RETRY,
    TASK_FAILURE,
    FaultEvent,
)
from ..faults.injector import FaultInjector, TaskAttempt
from ..faults.plan import FaultContext, FaultPlan
from ..metrics.schedule import Schedule, ScheduledTask
from ..schedulers.base import ClusterSnapshot, Scheduler, ScheduleRequest
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from .rankers import Ranker, TaskContext

__all__ = [
    "ArrivingJob",
    "JobOutcome",
    "OnlineResult",
    "OnlineSimulator",
    "verify_execution",
]


@dataclass(frozen=True)
class ArrivingJob:
    """One job of the arrival stream."""

    arrival_time: int
    graph: TaskGraph

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be >= 0")


@dataclass(frozen=True)
class JobOutcome:
    """Completion (or failure) record of one job.

    Attributes:
        failed: the job was abandoned — a task exhausted its transient
            attempt budget, or the job became permanently unschedulable
            after a capacity loss.  ``completion_time`` is then the time
            of the failure decision.
        retries: task attempts re-enqueued (transient + crash kills).
        transient_failures: attempts that failed at their finish.
        crash_kills: running attempts displaced by capacity loss.
    """

    job_index: int
    arrival_time: int
    completion_time: int
    num_tasks: int
    failed: bool = False
    retries: int = 0
    transient_failures: int = 0
    crash_kills: int = 0

    @property
    def jct(self) -> int:
        """Job completion time (completion - arrival)."""
        return self.completion_time - self.arrival_time


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of one simulation run.

    Fault-aware runs additionally carry per-run fault accounting, the
    full ordered :attr:`fault_events` record, and the *executed*
    schedule of every job (actual starts/finishes of the successful
    attempts), aligned with :attr:`outcomes`.
    """

    outcomes: Tuple[JobOutcome, ...]
    makespan: int
    mean_utilization: Tuple[float, ...]
    crashes: int = 0
    recoveries: int = 0
    total_retries: int = 0
    fault_events: Tuple[FaultEvent, ...] = ()
    executed: Tuple[Schedule, ...] = ()

    @property
    def mean_jct(self) -> float:
        """Average job completion time (failed jobs included)."""
        return sum(o.jct for o in self.outcomes) / len(self.outcomes)

    @property
    def max_jct(self) -> int:
        """Worst job completion time."""
        return max(o.jct for o in self.outcomes)

    @property
    def completed_jobs(self) -> int:
        """Jobs that ran to completion."""
        return sum(1 for o in self.outcomes if not o.failed)

    @property
    def failed_jobs(self) -> int:
        """Jobs reported failed (never silently lost)."""
        return sum(1 for o in self.outcomes if o.failed)


class _ActiveJob:
    """Mutable per-job bookkeeping inside the simulator."""

    __slots__ = (
        "index",
        "arrival",
        "graph",
        "features",
        "unmet",
        "ready",
        "remaining",
        "attempts",
        "strikes",
        "retries",
        "transient_failures",
        "crash_kills",
        "executed",
    )

    def __init__(self, index: int, arrival: int, graph: TaskGraph) -> None:
        self.index = index
        self.arrival = arrival
        self.graph = graph
        self.features: GraphFeatures = compute_features(graph)
        self.unmet: Dict[int, int] = {
            tid: len(graph.parents(tid)) for tid in graph.task_ids
        }
        self.ready: List[int] = [
            tid for tid in graph.topological_order() if self.unmet[tid] == 0
        ]
        self.remaining: int = graph.num_tasks
        self.attempts: Dict[int, int] = {}  # dispatches per task (keys the RNG)
        self.strikes: Dict[int, int] = {}  # transient failures per task
        self.retries = 0
        self.transient_failures = 0
        self.crash_kills = 0
        self.executed: Dict[int, Tuple[int, int]] = {}  # successful placements

    def outcome(self, completion_time: int, failed: bool = False) -> JobOutcome:
        return JobOutcome(
            job_index=self.index,
            arrival_time=self.arrival,
            completion_time=completion_time,
            num_tasks=self.graph.num_tasks,
            failed=failed,
            retries=self.retries,
            transient_failures=self.transient_failures,
            crash_kills=self.crash_kills,
        )

    def executed_schedule(self, label: str) -> Schedule:
        return Schedule(
            tuple(
                ScheduledTask(tid, start, finish)
                for tid, (start, finish) in sorted(self.executed.items())
            ),
            scheduler=label,
        )


@dataclass
class _FaultState:
    """All fault-mode machinery for one run (None in fault-free runs)."""

    plan: FaultPlan
    injector: FaultInjector
    timeline: List  # List[TimelineEntry]
    timeline_pos: int = 0
    delayed: List[Tuple[int, int, int]] = field(default_factory=list)  # heap
    events: List[FaultEvent] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    total_retries: int = 0


class OnlineSimulator:
    """Shared-cluster simulation of an arrival stream.

    Args:
        cluster: capacities (defaults to the paper's 20x20).
        max_steps: global safety cap on scheduling events.
        telemetry: where serving metrics report (``online.jct``
            histogram, per-job ``online.job`` events, queue-length and
            utilization gauges, ``fault.*`` incident events).  ``None``
            defers to the globally active pipeline.
    """

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        max_steps: int = 1_000_000,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        self.cluster_config = cluster if cluster is not None else ClusterConfig()
        self.max_steps = max_steps
        self.telemetry = telemetry

    def run(
        self,
        jobs: Sequence[ArrivingJob],
        ranker: Ranker,
        faults: Optional[FaultPlan] = None,
        rescheduler: Optional[Scheduler] = None,
    ) -> OnlineResult:
        """Simulate ``jobs`` under ``ranker``; return the outcome.

        Args:
            jobs: the arrival stream.
            ranker: base dispatch order (see :mod:`repro.online.rankers`).
            faults: seeded fault model to execute under; ``None`` runs
                fault-free (the historical behaviour, unchanged).
            rescheduler: context-aware scheduler replanning each job's
                residual DAG on admission and on every fault event;
                dispatch then follows plan priority (jobs FIFO, plan
                order within a job), falling back to ``ranker`` for
                unplanned tasks.

        With telemetry active the run is wrapped in an ``online.run``
        span; every completed job lands in the ``online.jct`` histogram
        plus an ``online.job`` point event, the event loop keeps the
        ``online.active_jobs`` / ``online.ready_tasks`` gauges current,
        per-resource mean utilization is published as
        ``online.utilization.r<i>`` gauges at the end, and every fault
        incident is mirrored as a ``fault.<kind>`` event.

        Raises:
            ConfigError: on an empty stream, a task that can never fit,
                or a fault plan the cluster cannot survive.
            EnvironmentStateError: if the event cap is exceeded, or (in
                fault-free mode only) the DAG state goes inconsistent.
        """
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            "online.run",
            jobs=len(jobs),
            ranker=type(ranker).__name__,
            faults=faults is not None and not faults.is_null,
            rescheduler=rescheduler.name if rescheduler is not None else "",
        ) as span:
            result = self._run(jobs, ranker, tm, faults, rescheduler)
            if tm.enabled:
                span.set(
                    makespan=result.makespan,
                    mean_jct=result.mean_jct,
                    max_jct=result.max_jct,
                    recoveries=result.recoveries,
                    retries=result.total_retries,
                    failed_jobs=result.failed_jobs,
                )
                for r, util in enumerate(result.mean_utilization):
                    tm.gauge(f"online.utilization.r{r}", util)
                tm.inc("online.jobs", len(jobs))
        return result

    def _run(
        self,
        jobs: Sequence[ArrivingJob],
        ranker: Ranker,
        tm: _telemetry.TelemetryLike,
        faults: Optional[FaultPlan],
        rescheduler: Optional[Scheduler],
    ) -> OnlineResult:
        tm_enabled = tm.enabled
        if not jobs:
            raise ConfigError("need at least one arriving job")
        capacities = self.cluster_config.capacities
        for job in jobs:
            if job.graph.num_resources != len(capacities):
                raise ConfigError(
                    f"job graph has {job.graph.num_resources} resource dims, "
                    f"cluster has {len(capacities)}"
                )
            for task in job.graph:
                validate_demands(task.demands, capacities, label=task.label())

        fstate: Optional[_FaultState] = None
        if faults is not None and not faults.is_null:
            faults.validate_against(capacities)
            injector = FaultInjector(faults)
            fstate = _FaultState(
                plan=faults, injector=injector, timeline=injector.timeline()
            )

        ordered = sorted(enumerate(jobs), key=lambda e: (e[1].arrival_time, e[0]))
        pending = [(job.arrival_time, index, job) for index, job in ordered]
        pending_pos = 0

        state = ClusterState(capacities)
        active: Dict[int, _ActiveJob] = {}
        # Running task handle -> (job index, task id); cluster task ids must
        # be globally unique, so encode as job_index * OFFSET + task_id.
        offset = 1 + max(max(job.graph.task_ids) for job in jobs)
        running_info: Dict[int, Tuple[int, TaskAttempt]] = {}  # handle -> (start, attempt)
        outcomes: List[JobOutcome] = []
        executed: Dict[int, Schedule] = {}  # job index -> executed schedule
        plan_rank: Optional[Dict[int, Dict[int, int]]] = (
            {} if rescheduler is not None else None
        )
        exec_label = rescheduler.name if rescheduler is not None else "online"
        busy_area = [0] * len(capacities)  # slot-weighted usage integral
        last_time = 0
        steps = 0

        def emit_fault(event: FaultEvent) -> None:
            assert fstate is not None
            fstate.events.append(event)
            if tm_enabled:
                tm.event(
                    f"fault.{event.kind}",
                    time=event.time,
                    job=-1 if event.job is None else event.job,
                    task=-1 if event.task is None else event.task,
                    attempt=0 if event.attempt is None else event.attempt,
                    detail=event.detail,
                )

        def replan_job(job: _ActiveJob, trigger: str) -> None:
            """Refresh one job's plan-priority ranks from the rescheduler."""
            assert rescheduler is not None and plan_rank is not None
            running_tids = {
                handle % offset: handle
                for handle in running_info
                if handle // offset == job.index
            }
            residual = [
                tid
                for tid in job.graph.task_ids
                if tid not in job.executed and tid not in running_tids
            ]
            if not residual:
                plan_rank.pop(job.index, None)
                return
            pinned = {}
            for tid, handle in running_tids.items():
                start, attempt = running_info[handle]
                pinned[tid] = (start, start + attempt.runtime)
            request = ScheduleRequest(
                graph=job.graph.subgraph(residual),
                cluster=ClusterSnapshot(
                    capacities=tuple(state.capacities),
                    available=state.available,
                    now=state.now,
                ),
                frozen=dict(job.executed),
                pinned=pinned,
                faults=(
                    FaultContext(
                        plan=fstate.plan,
                        trigger=trigger,
                        time=state.now,
                        retries_so_far=fstate.total_retries,
                    )
                    if fstate is not None
                    else None
                ),
            )
            try:
                schedule = rescheduler.plan(request)
            except ReproError:
                # Graceful: keep the previous plan order; the base ranker
                # covers tasks that never had one.
                return
            order = sorted(schedule.placements, key=lambda p: (p.start, p.task_id))
            plan_rank[job.index] = {p.task_id: r for r, p in enumerate(order)}

        def replan_all(trigger: str) -> None:
            if rescheduler is None:
                return
            for job in sorted(active.values(), key=lambda j: j.index):
                replan_job(job, trigger)

        def admit_arrivals() -> None:
            nonlocal pending_pos
            while pending_pos < len(pending) and pending[pending_pos][0] <= state.now:
                _, index, job = pending[pending_pos]
                active[index] = _ActiveJob(index, job.arrival_time, job.graph)
                pending_pos += 1
                if rescheduler is not None:
                    replan_job(active[index], "admit")

        def fail_job(job: _ActiveJob, reason: str) -> None:
            """Abandon a job: kill its running work, record the outcome."""
            for handle in [h for h in running_info if h // offset == job.index]:
                running_info.pop(handle)
                for entry in state.running_tasks():
                    if entry.task_id == handle:
                        state.kill(entry)
                        break
            outcomes.append(job.outcome(state.now, failed=True))
            executed[job.index] = job.executed_schedule(exec_label)
            emit_fault(
                FaultEvent(state.now, JOB_FAILED, job=job.index, detail=reason)
            )
            del active[job.index]
            if plan_rank is not None:
                plan_rank.pop(job.index, None)

        def fire_crash(entry) -> None:
            assert fstate is not None
            loss = entry.capacity
            # Kill victims (latest finishers first) until the free pool
            # covers the loss in every deficient dimension.
            killed = 0
            while any(
                state.available[r] < loss[r] for r in range(len(loss))
            ):
                victims = sorted(
                    state.running_tasks(), key=lambda e: (-e.finish_time, -e.task_id)
                )
                victim = next(
                    (
                        v
                        for v in victims
                        if any(
                            v.demands[r] > 0 and state.available[r] < loss[r]
                            for r in range(len(loss))
                        )
                    ),
                    None,
                )
                if victim is None:  # pragma: no cover - validated plans
                    break
                state.kill(victim)
                killed += 1
                handle = victim.task_id
                running_info.pop(handle)
                job_index, tid = divmod(handle, offset)
                job = active[job_index]
                job.crash_kills += 1
                job.retries += 1
                fstate.total_retries += 1
                job.ready.append(tid)  # parents done: immediately re-ready
                emit_fault(
                    FaultEvent(
                        state.now,
                        RETRY,
                        job=job_index,
                        task=tid,
                        attempt=job.attempts.get(tid, 0),
                        detail="crash_kill",
                    )
                )
            state.adjust_capacity([-c for c in loss])
            fstate.crashes += 1
            emit_fault(
                FaultEvent(
                    state.now,
                    CRASH,
                    detail=f"machine {entry.machine} lost {loss}, killed {killed}",
                )
            )

        def fire_recovery(entry) -> None:
            assert fstate is not None
            state.adjust_capacity(entry.capacity)
            fstate.recoveries += 1
            emit_fault(
                FaultEvent(
                    state.now,
                    RECOVERY,
                    detail=f"machine {entry.machine} restored {entry.capacity}",
                )
            )

        def process_externals() -> None:
            """Fire every external event whose time has been reached:
            arrivals, crash/recovery timeline entries, retry releases."""
            admit_arrivals()
            if fstate is None:
                return
            fault_fired = False
            while (
                fstate.timeline_pos < len(fstate.timeline)
                and fstate.timeline[fstate.timeline_pos].time <= state.now
            ):
                entry = fstate.timeline[fstate.timeline_pos]
                fstate.timeline_pos += 1
                if entry.kind == "crash":
                    fire_crash(entry)
                else:
                    fire_recovery(entry)
                fault_fired = True
            while fstate.delayed and fstate.delayed[0][0] <= state.now:
                _, job_index, tid = heapq.heappop(fstate.delayed)
                job = active.get(job_index)
                if job is not None:
                    job.ready.append(tid)
            if fault_fired:
                replan_all("crash")

        def next_external() -> Optional[int]:
            times = []
            if pending_pos < len(pending):
                times.append(pending[pending_pos][0])
            if fstate is not None:
                if fstate.timeline_pos < len(fstate.timeline):
                    times.append(fstate.timeline[fstate.timeline_pos].time)
                if fstate.delayed:
                    times.append(fstate.delayed[0][0])
            return min(times) if times else None

        def dispatch(job: _ActiveJob, tid: int) -> None:
            """Start one attempt of a ready task, realizing its faults."""
            task = job.graph.task(tid)
            attempt_no = job.attempts.get(tid, 0) + 1
            job.attempts[tid] = attempt_no
            if fstate is not None:
                attempt = fstate.injector.attempt(
                    job.index, tid, attempt_no, task.runtime
                )
            else:
                attempt = TaskAttempt(
                    runtime=task.runtime, fails=False, straggled=False
                )
            handle = job.index * offset + tid
            state.start(handle, task.demands, attempt.runtime)
            running_info[handle] = (state.now, attempt)
            job.ready.remove(tid)

        def start_fitting() -> None:
            """Work-conserving fill in ranker (or plan-priority) order."""
            while True:
                free = state.available
                candidates: List[Tuple[Tuple, int, int]] = []
                for job in active.values():
                    ranks = (
                        plan_rank.get(job.index) if plan_rank is not None else None
                    )
                    for tid in job.ready:
                        task = job.graph.task(tid)
                        if fits(task.demands, free):
                            if ranks is not None and tid in ranks:
                                key: Tuple = (
                                    0,
                                    job.arrival,
                                    job.index,
                                    ranks[tid],
                                    tid,
                                )
                            else:
                                ctx = TaskContext(
                                    task=task,
                                    job_index=job.index,
                                    arrival_time=job.arrival,
                                    features=job.features,
                                    free=free,
                                    now=state.now,
                                )
                                key = (1,) + tuple(ranker(ctx))
                            candidates.append((key, job.index, tid))
                if not candidates:
                    return
                _, job_index, tid = min(candidates)
                dispatch(active[job_index], tid)

        def account_usage(until: int) -> None:
            nonlocal last_time
            if until <= last_time:
                return
            span = until - last_time
            for r in range(len(capacities)):
                busy_area[r] += span * (state.capacities[r] - state.available[r])
            last_time = until

        def handle_completion(handle: int) -> None:
            job_index, tid = divmod(handle, offset)
            job = active.get(job_index)
            if job is None:  # job failed earlier in this same batch
                running_info.pop(handle, None)
                return
            start, attempt = running_info.pop(handle)
            if attempt.fails:
                assert fstate is not None
                job.transient_failures += 1
                strikes = job.strikes.get(tid, 0) + 1
                job.strikes[tid] = strikes
                emit_fault(
                    FaultEvent(
                        state.now,
                        TASK_FAILURE,
                        job=job_index,
                        task=tid,
                        attempt=job.attempts[tid],
                        detail="straggler" if attempt.straggled else "",
                    )
                )
                if strikes >= fstate.injector.max_attempts:
                    fail_job(
                        job,
                        reason=(
                            f"task {tid} failed {strikes} attempts "
                            f"(budget {fstate.injector.max_attempts})"
                        ),
                    )
                    return
                delay = fstate.injector.backoff(strikes)
                ready_at = state.now + delay
                heapq.heappush(fstate.delayed, (ready_at, job_index, tid))
                job.retries += 1
                fstate.total_retries += 1
                emit_fault(
                    FaultEvent(
                        state.now,
                        RETRY,
                        job=job_index,
                        task=tid,
                        attempt=job.attempts[tid],
                        detail=f"backoff {delay}, ready at {ready_at}",
                    )
                )
                if rescheduler is not None:
                    replan_job(job, "task_failure")
                return
            # Success: the output is durable; downstream precedence holds.
            job.executed[tid] = (start, state.now)
            job.remaining -= 1
            for child in job.graph.children(tid):
                job.unmet[child] -= 1
                if job.unmet[child] == 0:
                    job.ready.append(child)
            if job.remaining == 0:
                outcome = job.outcome(state.now)
                outcomes.append(outcome)
                executed[job.index] = job.executed_schedule(exec_label)
                if tm_enabled:
                    tm.observe("online.jct", float(outcome.jct))
                    tm.event(
                        "online.job",
                        job=outcome.job_index,
                        jct=outcome.jct,
                        arrival=outcome.arrival_time,
                        completion=outcome.completion_time,
                        tasks=outcome.num_tasks,
                        retries=outcome.retries,
                        failed=outcome.failed,
                    )
                del active[job_index]
                if plan_rank is not None:
                    plan_rank.pop(job_index, None)

        # Jump to the first arrival.
        first_arrival = pending[0][0]
        if first_arrival > 0:
            state.now = first_arrival
            last_time = first_arrival

        process_externals()
        start_fitting()
        while active or pending_pos < len(pending):
            steps += 1
            if steps > self.max_steps:
                raise EnvironmentStateError("online simulation exceeded step cap")
            if tm_enabled:
                tm.gauge("online.active_jobs", float(len(active)))
                tm.gauge(
                    "online.ready_tasks",
                    float(sum(len(j.ready) for j in active.values())),
                )
            ext = next_external()
            if state.is_idle:
                if ext is None:
                    if fstate is not None:
                        # Permanently stuck (e.g. unrecovered capacity loss
                        # below some task's demand): report, don't lose.
                        for job in sorted(
                            active.values(), key=lambda j: j.index
                        ):
                            fail_job(job, reason="unschedulable residual work")
                        continue
                    raise EnvironmentStateError(
                        "idle cluster with active jobs but nothing ready: "
                        "inconsistent DAG state"
                    )
                account_usage(ext)
                state.now = max(state.now, ext)
                process_externals()
                start_fitting()
                continue
            next_completion = state.earliest_finish_time()
            if ext is not None and ext < next_completion:
                account_usage(ext)
                if ext > state.now:
                    # No completion can occur before the external event.
                    state.advance(ext - state.now)
                process_externals()
                start_fitting()
                continue
            account_usage(next_completion)
            _, completed = state.advance_to_next_event()
            process_externals()
            for handle in completed:
                handle_completion(handle)
            start_fitting()

        makespan = state.now
        horizon = max(1, makespan - first_arrival)
        utilization = tuple(
            busy_area[r] / (horizon * capacities[r]) for r in range(len(capacities))
        )
        outcomes.sort(key=lambda o: o.job_index)
        return OnlineResult(
            outcomes=tuple(outcomes),
            makespan=makespan,
            mean_utilization=utilization,
            crashes=fstate.crashes if fstate is not None else 0,
            recoveries=fstate.recoveries if fstate is not None else 0,
            total_retries=fstate.total_retries if fstate is not None else 0,
            fault_events=tuple(fstate.events) if fstate is not None else (),
            executed=tuple(
                executed[o.job_index] for o in outcomes
            ),
        )


def verify_execution(
    result: OnlineResult,
    jobs: Sequence[ArrivingJob],
    capacities: Sequence[int],
):
    """Verify every executed schedule against what actually ran.

    For each job, the executed placements are checked with the full
    schedule-invariant verifier (:mod:`repro.analysis.verifier`) against
    the *realized* graph — the job's DAG with task runtimes replaced by
    the actual executed durations (fault noise included).  Failed jobs
    are checked partially: their executed placements must still respect
    precedence and capacity on the subgraph that ran.

    Returns:
        One :class:`repro.analysis.VerificationReport` per outcome, in
        ``result.outcomes`` order; call ``raise_if_violations()`` on each
        or check ``.ok``.  An entry is ``None`` for a failed job that
        executed nothing (there is nothing to check).

    Raises:
        ConfigError: when ``result`` carries no executed schedules (a
            pre-fault-mode result object).
    """

    from ..analysis.verifier import verify_placements  # local: avoids a cycle
    from ..dag.compose import with_runtimes

    if len(result.executed) != len(result.outcomes):
        raise ConfigError(
            "result carries no executed schedules to verify (outcomes "
            f"{len(result.outcomes)} vs executed {len(result.executed)})"
        )
    if any(o.job_index >= len(jobs) for o in result.outcomes):
        raise ConfigError(
            f"result references job indices beyond the {len(jobs)} jobs given"
        )
    reports = []
    for outcome, schedule in zip(result.outcomes, result.executed):
        graph = jobs[outcome.job_index].graph
        durations = {
            p.task_id: p.finish - p.start for p in schedule.placements
        }
        if outcome.failed:
            ran = sorted(durations)
            if not ran:
                reports.append(None)
                continue
            target = with_runtimes(graph.subgraph(ran), durations)
        else:
            target = with_runtimes(graph, durations)
        reports.append(
            verify_placements(
                [(p.task_id, p.start, p.finish) for p in schedule.placements],
                target,
                capacities,
            )
        )
    return reports
