"""Workload layer: stream validation and arrival admission.

The arrival stream is validated once, up front (resource-dimension
match, per-task demand feasibility), then every job becomes one
``job.arrival`` kernel event — scheduled in ``(arrival_time, stream
index)`` order so equal-time arrivals admit in stream order (the push
sequence number preserves it).  Admission creates the job's live
bookkeeping in the execution layer and hands it to the policy layer for
its initial plan; tasks only start later, in the instant's dispatch
round.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.resources import validate_demands
from ..errors import ConfigError
from ..sim import Event, EventClass, SimKernel
from .execution import ExecutionLayer
from .policy import PolicyLayer
from .results import ArrivingJob

__all__ = ["ARRIVAL_KIND", "WorkloadLayer", "validate_stream"]

ARRIVAL_KIND = "job.arrival"


def validate_stream(jobs: Sequence[ArrivingJob], capacities: Sequence[int]) -> None:
    """Reject streams the cluster can never run.

    Raises:
        ConfigError: on an empty stream, a resource-dimension mismatch,
            or a task whose demands exceed total capacity.
    """
    if not jobs:
        raise ConfigError("need at least one arriving job")
    for job in jobs:
        if job.graph.num_resources != len(capacities):
            raise ConfigError(
                f"job graph has {job.graph.num_resources} resource dims, "
                f"cluster has {len(capacities)}"
            )
        for task in job.graph:
            validate_demands(task.demands, capacities, label=task.label())


class WorkloadLayer:
    """Feeds the arrival stream into the kernel and admits jobs.

    Args:
        jobs: the (validated) arrival stream.
        kernel: the simulation kernel.
        execution: where admitted jobs live.
        policy: notified of each admission (initial replan).
    """

    def __init__(
        self,
        jobs: Sequence[ArrivingJob],
        kernel: SimKernel,
        execution: ExecutionLayer,
        policy: PolicyLayer,
    ) -> None:
        self.execution = execution
        self.policy = policy
        self._pending = len(jobs)
        kernel.register(ARRIVAL_KIND, self._on_arrival)
        ordered = sorted(enumerate(jobs), key=lambda e: (e[1].arrival_time, e[0]))
        for index, job in ordered:
            kernel.schedule(
                job.arrival_time, EventClass.ARRIVAL, ARRIVAL_KIND, (index, job)
            )

    @property
    def has_pending(self) -> bool:
        """Arrivals not yet admitted remain."""
        return self._pending > 0

    def _on_arrival(self, event: Event) -> None:
        index, job = event.payload
        self._pending -= 1
        active_job = self.execution.admit(index, job.arrival_time, job.graph)
        self.policy.on_admit(active_job)
