"""Policy layer: ranker dispatch and dynamic replanning.

Decides *which* ready task starts next — plan-priority order when a
rescheduler has planned the job (jobs FIFO, plan order within a job),
the base ranker otherwise — and keeps those plans fresh: each job is
replanned on admission, on each of its transient task failures, and
(all jobs) after any crash/recovery fires.

The crash-triggered replan is itself a kernel event (``policy.replan``,
class ``REPLAN`` — the last class of the tie-break table), so the
rescheduler always sees the fully settled instant: capacity changes,
completions, retries and arrivals of the same timestamp have all been
applied before any plan is computed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..cluster.resources import fits
from ..errors import ReproError
from ..faults.plan import FaultContext
from ..schedulers.base import ClusterSnapshot, Scheduler, ScheduleRequest
from ..sim import Event, EventClass, SimKernel
from .execution import ActiveJob, ExecutionLayer
from .rankers import Ranker, TaskContext

__all__ = ["PolicyLayer", "REPLAN_KIND"]

REPLAN_KIND = "policy.replan"


class PolicyLayer:
    """Dispatch ordering plus replan triggers over the execution layer.

    Args:
        ranker: base dispatch order (see :mod:`repro.online.rankers`).
        rescheduler: context-aware scheduler replanning each job's
            residual DAG; ``None`` disables replanning entirely.
        kernel: the simulation kernel (replan events are scheduled on it).
        execution: the execution layer being driven.
    """

    def __init__(
        self,
        ranker: Ranker,
        rescheduler: Optional[Scheduler],
        kernel: SimKernel,
        execution: ExecutionLayer,
    ) -> None:
        self.ranker = ranker
        self.rescheduler = rescheduler
        self.kernel = kernel
        self.execution = execution
        self.plan_rank: Optional[Dict[int, Dict[int, int]]] = (
            {} if rescheduler is not None else None
        )
        self.exec_label = rescheduler.name if rescheduler is not None else "online"
        self._replan_scheduled_at: Optional[int] = None
        # For static_key rankers: job_index -> {tid -> ranker key}.  The
        # key of such a ranker never changes over a job's lifetime, so
        # it is computed once per (job, task) rather than once per
        # dispatch comparison.
        self._static_keys: Dict[int, Dict[int, Tuple]] = {}
        kernel.register(REPLAN_KIND, self._on_replan)

    # ------------------------------------------------------------------ #
    # replan triggers
    # ------------------------------------------------------------------ #

    def on_admit(self, job: ActiveJob) -> None:
        """A job was admitted: give it an initial plan."""
        if self.rescheduler is not None:
            self.replan_job(job, "admit")

    def on_task_failure(self, job: ActiveJob) -> None:
        """A task failed transiently: refresh that job's plan."""
        if self.rescheduler is not None:
            self.replan_job(job, "task_failure")

    def on_fault_fired(self) -> None:
        """Crash/recovery fired: replan all jobs once the instant settles."""
        if self.rescheduler is None:
            return
        now = self.kernel.now
        if self._replan_scheduled_at == now:
            return
        self.kernel.schedule(now, EventClass.REPLAN, REPLAN_KIND, "crash")
        self._replan_scheduled_at = now

    def _on_replan(self, event: Event) -> None:
        self._replan_scheduled_at = None
        self.replan_all(event.payload)

    def forget(self, job_index: int) -> None:
        """Drop a finished/failed job's plan ranks and cached keys."""
        if self.plan_rank is not None:
            self.plan_rank.pop(job_index, None)
        self._static_keys.pop(job_index, None)

    # ------------------------------------------------------------------ #
    # replanning
    # ------------------------------------------------------------------ #

    def replan_job(self, job: ActiveJob, trigger: str) -> None:
        """Refresh one job's plan-priority ranks from the rescheduler."""
        rescheduler = self.rescheduler
        plan_rank = self.plan_rank
        assert rescheduler is not None and plan_rank is not None
        execution = self.execution
        offset = execution.offset
        running_info = execution.running_info
        state = execution.state
        running_tids = {
            handle % offset: handle
            for handle in running_info
            if handle // offset == job.index
        }
        residual = [
            tid
            for tid in job.graph.task_ids
            if tid not in job.executed and tid not in running_tids
        ]
        if not residual:
            plan_rank.pop(job.index, None)
            return
        pinned = {}
        for tid, handle in running_tids.items():
            start, attempt = running_info[handle]
            pinned[tid] = (start, start + attempt.runtime)
        fstate = execution.fstate
        request = ScheduleRequest(
            graph=job.graph.subgraph(residual),
            cluster=ClusterSnapshot(
                capacities=tuple(state.capacities),
                available=state.available,
                now=state.now,
            ),
            frozen=dict(job.executed),
            pinned=pinned,
            faults=(
                FaultContext(
                    plan=fstate.plan,
                    trigger=trigger,
                    time=state.now,
                    retries_so_far=fstate.total_retries,
                )
                if fstate is not None
                else None
            ),
        )
        try:
            schedule = rescheduler.plan(request)
        except ReproError:
            # Graceful: keep the previous plan order; the base ranker
            # covers tasks that never had one.
            return
        order = sorted(schedule.placements, key=lambda p: (p.start, p.task_id))
        plan_rank[job.index] = {p.task_id: r for r, p in enumerate(order)}

    def replan_all(self, trigger: str) -> None:
        """Replan every active job, in job-index order."""
        if self.rescheduler is None:
            return
        for job in sorted(self.execution.active.values(), key=lambda j: j.index):
            self.replan_job(job, trigger)

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    def dispatch_round(self) -> None:
        """Work-conserving fill in ranker (or plan-priority) order."""
        execution = self.execution
        state = execution.state
        active = execution.active
        plan_rank = self.plan_rank
        ranker = self.ranker
        if getattr(ranker, "static_key", False):
            self._dispatch_static()
            return
        while True:
            free = state.available
            candidates: List[Tuple[Tuple, int, int]] = []
            for job in active.values():
                ranks = plan_rank.get(job.index) if plan_rank is not None else None
                for tid in job.ready:
                    task = job.graph.task(tid)
                    if fits(task.demands, free):
                        if ranks is not None and tid in ranks:
                            key: Tuple = (
                                0,
                                job.arrival,
                                job.index,
                                ranks[tid],
                                tid,
                            )
                        else:
                            ctx = TaskContext(
                                task=task,
                                job_index=job.index,
                                arrival_time=job.arrival,
                                features=job.features,
                                free=free,
                                now=state.now,
                            )
                            key = (1,) + tuple(ranker(ctx))
                        candidates.append((key, job.index, tid))
            if not candidates:
                return
            _, job_index, tid = min(candidates)
            execution.start_attempt(active[job_index], tid)

    def _dispatch_static(self) -> None:
        """One sorted sweep for rankers with context-invariant keys.

        Within a dispatch round free capacity only shrinks and no task
        becomes ready (attempt runtimes are >= 1, so completions land at
        strictly later instants).  When the ranker's key ignores the
        live context, repeatedly starting the minimum-key fitting
        candidate is therefore equivalent to ranking the initially
        fitting candidates once, sorting, and starting each in order
        that still fits — a candidate that does not fit can never fit
        again this round.  Keys are additionally cached per (job, task)
        across rounds, since a ``static_key`` ranker's key never changes
        over a job's lifetime.
        """
        execution = self.execution
        state = execution.state
        active = execution.active
        plan_rank = self.plan_rank
        ranker = self.ranker
        free = state.available
        candidates: List[Tuple[Tuple, int, int, Tuple[int, ...]]] = []
        for job in active.values():
            ranks = plan_rank.get(job.index) if plan_rank is not None else None
            cached = self._static_keys.setdefault(job.index, {})
            task_of = job.graph.task
            for tid in job.ready:
                task = task_of(tid)
                if not fits(task.demands, free):
                    continue
                if ranks is not None and tid in ranks:
                    key: Tuple = (0, job.arrival, job.index, ranks[tid], tid)
                else:
                    key = cached.get(tid)  # type: ignore[assignment]
                    if key is None:
                        ctx = TaskContext(
                            task=task,
                            job_index=job.index,
                            arrival_time=job.arrival,
                            features=job.features,
                            free=free,
                            now=state.now,
                        )
                        key = (1,) + tuple(ranker(ctx))
                        cached[tid] = key
                candidates.append((key, job.index, tid, task.demands))
        candidates.sort()
        for _, job_index, tid, demands in candidates:
            job = active.get(job_index)
            if job is None or tid not in job.ready:
                continue
            if fits(demands, state.available):
                execution.start_attempt(job, tid)
