"""Public record types of the online simulation, and its verifier.

These are the simulator's inputs and outputs — the stable surface the
CLI, benchmarks and experiments consume.  They live apart from the
engine so every layer (workload, execution, policy, reporting) can
import them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..dag.graph import TaskGraph
from ..errors import ConfigError
from ..faults.events import FaultEvent
from ..metrics.schedule import Schedule

__all__ = ["ArrivingJob", "JobOutcome", "OnlineResult", "verify_execution"]


@dataclass(frozen=True)
class ArrivingJob:
    """One job of the arrival stream."""

    arrival_time: int
    graph: TaskGraph

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be >= 0")


@dataclass(frozen=True)
class JobOutcome:
    """Completion (or failure) record of one job.

    Attributes:
        failed: the job was abandoned — a task exhausted its transient
            attempt budget, or the job became permanently unschedulable
            after a capacity loss.  ``completion_time`` is then the time
            of the failure decision.
        retries: task attempts re-enqueued (transient + crash kills).
        transient_failures: attempts that failed at their finish.
        crash_kills: running attempts displaced by capacity loss.
    """

    job_index: int
    arrival_time: int
    completion_time: int
    num_tasks: int
    failed: bool = False
    retries: int = 0
    transient_failures: int = 0
    crash_kills: int = 0

    @property
    def jct(self) -> int:
        """Job completion time (completion - arrival)."""
        return self.completion_time - self.arrival_time


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate outcome of one simulation run.

    Fault-aware runs additionally carry per-run fault accounting, the
    full ordered :attr:`fault_events` record, and the *executed*
    schedule of every job (actual starts/finishes of the successful
    attempts), aligned with :attr:`outcomes`.

    Utilization comes in two flavours.  :attr:`mean_utilization` is the
    *effective* utilization — busy slot-time divided by the capacity
    that actually existed over the run (a capacity-time integral, so a
    crashed machine's missing slots do not count against the
    scheduler).  :attr:`nominal_utilization` divides by the nominal
    (pre-fault) capacity instead — the historical definition, useful
    for "how much of the fleet we paid for did work".  The two are
    identical in fault-free runs.
    """

    outcomes: Tuple[JobOutcome, ...]
    makespan: int
    mean_utilization: Tuple[float, ...]
    nominal_utilization: Tuple[float, ...] = ()
    crashes: int = 0
    recoveries: int = 0
    total_retries: int = 0
    fault_events: Tuple[FaultEvent, ...] = ()
    executed: Tuple[Schedule, ...] = ()

    @property
    def mean_jct(self) -> float:
        """Average job completion time (failed jobs included)."""
        return sum(o.jct for o in self.outcomes) / len(self.outcomes)

    @property
    def max_jct(self) -> int:
        """Worst job completion time."""
        return max(o.jct for o in self.outcomes)

    @property
    def completed_jobs(self) -> int:
        """Jobs that ran to completion."""
        return sum(1 for o in self.outcomes if not o.failed)

    @property
    def failed_jobs(self) -> int:
        """Jobs reported failed (never silently lost)."""
        return sum(1 for o in self.outcomes if o.failed)


def verify_execution(
    result: OnlineResult,
    jobs: Sequence[ArrivingJob],
    capacities: Sequence[int],
):
    """Verify every executed schedule against what actually ran.

    For each job, the executed placements are checked with the full
    schedule-invariant verifier (:mod:`repro.analysis.verifier`) against
    the *realized* graph — the job's DAG with task runtimes replaced by
    the actual executed durations (fault noise included).  Failed jobs
    are checked partially: their executed placements must still respect
    precedence and capacity on the subgraph that ran.

    Returns:
        One :class:`repro.analysis.VerificationReport` per outcome, in
        ``result.outcomes`` order; call ``raise_if_violations()`` on each
        or check ``.ok``.  An entry is ``None`` for a failed job that
        executed nothing (there is nothing to check).

    Raises:
        ConfigError: when ``result`` carries no executed schedules (a
            pre-fault-mode result object).
    """

    from ..analysis.verifier import verify_placements  # local: avoids a cycle
    from ..dag.compose import with_runtimes

    if len(result.executed) != len(result.outcomes):
        raise ConfigError(
            "result carries no executed schedules to verify (outcomes "
            f"{len(result.outcomes)} vs executed {len(result.executed)})"
        )
    if any(o.job_index >= len(jobs) for o in result.outcomes):
        raise ConfigError(
            f"result references job indices beyond the {len(jobs)} jobs given"
        )
    reports = []
    for outcome, schedule in zip(result.outcomes, result.executed):
        graph = jobs[outcome.job_index].graph
        durations = {
            p.task_id: p.finish - p.start for p in schedule.placements
        }
        if outcome.failed:
            ran = sorted(durations)
            if not ran:
                reports.append(None)
                continue
            target = with_runtimes(graph.subgraph(ran), durations)
        else:
            target = with_runtimes(graph, durations)
        reports.append(
            verify_placements(
                [(p.task_id, p.start, p.finish) for p in schedule.placements],
                target,
                capacities,
            )
        )
    return reports
