"""Execution layer: attempt lifecycle on the shared cluster.

Owns the live :class:`~repro.cluster.state.ClusterState` (driven by the
kernel through :class:`~repro.cluster.sim_adapter.ClusterProcess`), the
per-job DAG bookkeeping (:class:`ActiveJob`), and — in fault-aware runs
— the realized fault model: crash/recovery timeline firing, transient
failure retries with backoff, crash-kill victim selection, and job
abandonment.

Kernel wiring (see :mod:`repro.sim.events` for the tie-break table):

* task completions arrive as ``cluster.completion`` events (capacity
  was already released during the clock advance);
* the crash/recovery timeline is scheduled up-front as
  ``fault.timeline`` events, drained through a
  :class:`~repro.faults.injector.TimelineCursor` so the injector's
  documented intra-tie order (recovery before crash) is preserved;
* retry backoffs become future ``retry.ready`` events — except a
  zero-delay backoff, which the layer defers (as a
  :class:`~repro.sim.SimProcess`) to the *next* tick so a retried task
  never competes in the dispatch round of the instant it failed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..cluster.sim_adapter import COMPLETION_KIND, ClusterProcess
from ..cluster.state import ClusterState
from ..dag.features import GraphFeatures, compute_features
from ..dag.graph import TaskGraph
from ..faults.events import CRASH, RECOVERY, RETRY, TASK_FAILURE, FaultEvent
from ..faults.injector import (
    FaultInjector,
    TaskAttempt,
    TimelineCursor,
    TimelineEntry,
)
from ..faults.plan import FaultPlan
from ..metrics.schedule import Schedule, ScheduledTask
from ..sim import Event, EventClass, EventQueue, SimKernel
from .results import JobOutcome
from .reporting import ReportingLayer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .policy import PolicyLayer

__all__ = [
    "ActiveJob",
    "ExecutionLayer",
    "FaultState",
    "RETRY_KIND",
    "TIMELINE_KIND",
]

TIMELINE_KIND = "fault.timeline"
RETRY_KIND = "retry.ready"


class ActiveJob:
    """Mutable per-job bookkeeping inside the simulator."""

    __slots__ = (
        "index",
        "arrival",
        "graph",
        "features",
        "unmet",
        "ready",
        "remaining",
        "attempts",
        "strikes",
        "retries",
        "transient_failures",
        "crash_kills",
        "executed",
    )

    def __init__(self, index: int, arrival: int, graph: TaskGraph) -> None:
        self.index = index
        self.arrival = arrival
        self.graph = graph
        self.features: GraphFeatures = compute_features(graph)
        self.unmet: Dict[int, int] = {
            tid: len(graph.parents(tid)) for tid in graph.task_ids
        }
        self.ready: List[int] = [
            tid for tid in graph.topological_order() if self.unmet[tid] == 0
        ]
        self.remaining: int = graph.num_tasks
        self.attempts: Dict[int, int] = {}  # dispatches per task (keys the RNG)
        self.strikes: Dict[int, int] = {}  # transient failures per task
        self.retries = 0
        self.transient_failures = 0
        self.crash_kills = 0
        self.executed: Dict[int, Tuple[int, int]] = {}  # successful placements

    def outcome(self, completion_time: int, failed: bool = False) -> JobOutcome:
        return JobOutcome(
            job_index=self.index,
            arrival_time=self.arrival,
            completion_time=completion_time,
            num_tasks=self.graph.num_tasks,
            failed=failed,
            retries=self.retries,
            transient_failures=self.transient_failures,
            crash_kills=self.crash_kills,
        )

    def executed_schedule(self, label: str) -> Schedule:
        return Schedule(
            tuple(
                ScheduledTask(tid, start, finish)
                for tid, (start, finish) in sorted(self.executed.items())
            ),
            scheduler=label,
        )


@dataclass
class FaultState:
    """All fault-mode machinery for one run (None in fault-free runs)."""

    plan: FaultPlan
    injector: FaultInjector
    cursor: TimelineCursor
    crashes: int = 0
    recoveries: int = 0
    total_retries: int = 0


class ExecutionLayer:
    """Attempt lifecycle, cluster occupancy, and fault realization.

    Also a :class:`~repro.sim.SimProcess`: zero-delay retry backoffs are
    held here and released on the following tick (a failed attempt's
    replacement never joins the dispatch round of its own failure
    instant).

    Args:
        capacities: cluster capacities.
        kernel: the simulation kernel; the layer registers its handlers
            and attaches the cluster adapter.
        reporting: sink for incidents, outcomes, and schedules.
        offset: job-handle stride — cluster task ids must be globally
            unique, so a task is tracked as ``job_index * offset + tid``.
        faults: fault model; ``None`` (or a null plan) runs fault-free.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        kernel: SimKernel,
        reporting: ReportingLayer,
        offset: int,
        faults: Optional[FaultPlan],
    ) -> None:
        self.kernel = kernel
        self.reporting = reporting
        self.offset = offset
        self.state = ClusterState(capacities, now=kernel.now)
        self.active: Dict[int, ActiveJob] = {}
        self.running_info: Dict[int, Tuple[int, TaskAttempt]] = {}
        self.policy: "PolicyLayer" = None  # type: ignore[assignment] # wired by orchestrator
        self._deferred_retries: List[Tuple[int, int, int]] = []
        kernel.add_process(ClusterProcess(self.state))
        kernel.add_process(self)
        kernel.register(COMPLETION_KIND, self._on_completion)
        self.fstate: Optional[FaultState] = None
        if faults is not None and not faults.is_null:
            injector = FaultInjector(faults)
            timeline = injector.timeline()
            self.fstate = FaultState(
                plan=faults, injector=injector, cursor=TimelineCursor(timeline)
            )
            kernel.register(TIMELINE_KIND, self._on_timeline)
            kernel.register(RETRY_KIND, self._on_retry_ready)
            for entry in timeline:
                klass = (
                    EventClass.CRASH
                    if entry.kind == "crash"
                    else EventClass.RECOVERY
                )
                kernel.schedule(max(0, entry.time), klass, TIMELINE_KIND)

    # ------------------------------------------------------------------ #
    # SimProcess: zero-delay retry deferral
    # ------------------------------------------------------------------ #

    def next_event_time(self) -> Optional[int]:
        """Due time of the earliest deferred retry, or ``None``."""
        return self._deferred_retries[0][0] if self._deferred_retries else None

    def advance_to(self, now: int, queue: EventQueue) -> None:
        """Release deferred retries due by ``now`` as kernel events."""
        deferred = self._deferred_retries
        while deferred and deferred[0][0] <= now:
            _, job_index, tid = deferred.pop(0)
            queue.push(now, EventClass.RETRY_READY, RETRY_KIND, (job_index, tid))

    # ------------------------------------------------------------------ #
    # admission and dispatch
    # ------------------------------------------------------------------ #

    def admit(self, index: int, arrival: int, graph: TaskGraph) -> ActiveJob:
        """Create the live bookkeeping for an arrived job."""
        job = ActiveJob(index, arrival, graph)
        self.active[index] = job
        return job

    def ready_task_count(self) -> int:
        """Ready tasks across all active jobs (gauge input)."""
        return sum(len(job.ready) for job in self.active.values())

    def start_attempt(self, job: ActiveJob, tid: int) -> None:
        """Start one attempt of a ready task, realizing its faults."""
        task = job.graph.task(tid)
        attempt_no = job.attempts.get(tid, 0) + 1
        job.attempts[tid] = attempt_no
        if self.fstate is not None:
            attempt = self.fstate.injector.attempt(
                job.index, tid, attempt_no, task.runtime
            )
        else:
            attempt = TaskAttempt(
                runtime=task.runtime, fails=False, straggled=False
            )
        handle = job.index * self.offset + tid
        self.state.start(handle, task.demands, attempt.runtime)
        self.running_info[handle] = (self.state.now, attempt)
        job.ready.remove(tid)

    # ------------------------------------------------------------------ #
    # completion follow-ups
    # ------------------------------------------------------------------ #

    def _on_completion(self, event: Event) -> None:
        handle = event.payload.task_id
        job_index, tid = divmod(handle, self.offset)
        job = self.active.get(job_index)
        if job is None:  # job failed earlier at this same instant
            self.running_info.pop(handle, None)
            return
        start, attempt = self.running_info.pop(handle)
        if attempt.fails:
            self._transient_failure(job, tid, attempt)
            return
        # Success: the output is durable; downstream precedence holds.
        now = self.state.now
        job.executed[tid] = (start, now)
        job.remaining -= 1
        for child in job.graph.children(tid):
            job.unmet[child] -= 1
            if job.unmet[child] == 0:
                job.ready.append(child)
        if job.remaining == 0:
            self.reporting.record_completion(job, now)
            del self.active[job_index]
            self.policy.forget(job_index)

    def _transient_failure(
        self, job: ActiveJob, tid: int, attempt: TaskAttempt
    ) -> None:
        fstate = self.fstate
        assert fstate is not None
        now = self.state.now
        job.transient_failures += 1
        strikes = job.strikes.get(tid, 0) + 1
        job.strikes[tid] = strikes
        self.reporting.emit_fault(
            FaultEvent(
                now,
                TASK_FAILURE,
                job=job.index,
                task=tid,
                attempt=job.attempts[tid],
                detail="straggler" if attempt.straggled else "",
            )
        )
        if strikes >= fstate.injector.max_attempts:
            self.fail_job(
                job,
                reason=(
                    f"task {tid} failed {strikes} attempts "
                    f"(budget {fstate.injector.max_attempts})"
                ),
            )
            return
        delay = fstate.injector.backoff(strikes)
        ready_at = now + delay
        if delay > 0:
            self.kernel.schedule(
                ready_at, EventClass.RETRY_READY, RETRY_KIND, (job.index, tid)
            )
        else:
            self._deferred_retries.append((ready_at, job.index, tid))
        job.retries += 1
        fstate.total_retries += 1
        self.reporting.emit_fault(
            FaultEvent(
                now,
                RETRY,
                job=job.index,
                task=tid,
                attempt=job.attempts[tid],
                detail=f"backoff {delay}, ready at {ready_at}",
            )
        )
        self.policy.on_task_failure(job)

    def _on_retry_ready(self, event: Event) -> None:
        job_index, tid = event.payload
        job = self.active.get(job_index)
        if job is not None:  # the job may have failed while backing off
            job.ready.append(tid)

    # ------------------------------------------------------------------ #
    # crash / recovery timeline
    # ------------------------------------------------------------------ #

    def _on_timeline(self, event: Event) -> None:
        fstate = self.fstate
        assert fstate is not None
        fired = fstate.cursor.drain(self.state.now)
        for entry in fired:
            if entry.kind == "crash":
                self._fire_crash(entry)
            else:
                self._fire_recovery(entry)
        if fired:
            self.policy.on_fault_fired()

    def _fire_crash(self, entry: TimelineEntry) -> None:
        fstate = self.fstate
        assert fstate is not None
        state = self.state
        loss = entry.capacity
        # Kill victims (latest finishers first) until the free pool
        # covers the loss in every deficient dimension.
        killed = 0
        while any(state.available[r] < loss[r] for r in range(len(loss))):
            victims = sorted(
                state.running_tasks(), key=lambda e: (-e.finish_time, -e.task_id)
            )
            victim = next(
                (
                    v
                    for v in victims
                    if any(
                        v.demands[r] > 0 and state.available[r] < loss[r]
                        for r in range(len(loss))
                    )
                ),
                None,
            )
            if victim is None:  # pragma: no cover - validated plans
                break
            state.kill(victim)
            killed += 1
            handle = victim.task_id
            self.running_info.pop(handle)
            job_index, tid = divmod(handle, self.offset)
            job = self.active[job_index]
            job.crash_kills += 1
            job.retries += 1
            fstate.total_retries += 1
            job.ready.append(tid)  # parents done: immediately re-ready
            self.reporting.emit_fault(
                FaultEvent(
                    state.now,
                    RETRY,
                    job=job_index,
                    task=tid,
                    attempt=job.attempts.get(tid, 0),
                    detail="crash_kill",
                )
            )
        state.adjust_capacity([-c for c in loss])
        fstate.crashes += 1
        self.reporting.emit_fault(
            FaultEvent(
                state.now,
                CRASH,
                detail=f"machine {entry.machine} lost {loss}, killed {killed}",
            )
        )

    def _fire_recovery(self, entry: TimelineEntry) -> None:
        fstate = self.fstate
        assert fstate is not None
        self.state.adjust_capacity(entry.capacity)
        fstate.recoveries += 1
        self.reporting.emit_fault(
            FaultEvent(
                self.state.now,
                RECOVERY,
                detail=f"machine {entry.machine} restored {entry.capacity}",
            )
        )

    # ------------------------------------------------------------------ #
    # job abandonment
    # ------------------------------------------------------------------ #

    def fail_job(self, job: ActiveJob, reason: str) -> None:
        """Abandon a job: kill its running work, record the outcome."""
        running_info = self.running_info
        state = self.state
        for handle in [h for h in running_info if h // self.offset == job.index]:
            running_info.pop(handle)
            for entry in state.running_tasks():
                if entry.task_id == handle:
                    state.kill(entry)
                    break
        self.reporting.record_failure(job, state.now, reason)
        del self.active[job.index]
        self.policy.forget(job.index)

    def fail_stuck(self) -> None:
        """Fail every active job (permanently unschedulable residue)."""
        for job in sorted(self.active.values(), key=lambda j: j.index):
            self.fail_job(job, reason="unschedulable residual work")
