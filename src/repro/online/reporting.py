"""Reporting layer: outcomes, executed schedules, telemetry, integrals.

Everything the simulation *observes* about itself funnels through here:
job outcomes and executed schedules as they finish, the ordered fault
incident record (mirrored to telemetry as ``fault.<kind>`` events),
queue-length gauges, and the slot-time integrals behind the two
utilization definitions of :class:`~repro.online.results.OnlineResult`.

The layer is write-mostly during the run; :meth:`finalize` assembles the
:class:`~repro.online.results.OnlineResult` once the event loop drains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..faults.events import JOB_FAILED, FaultEvent
from ..metrics.schedule import Schedule
from ..telemetry import runtime as _telemetry
from .results import JobOutcome, OnlineResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.state import ClusterState
    from .execution import ActiveJob, ExecutionLayer, FaultState

__all__ = ["ReportingLayer"]


class ReportingLayer:
    """Collects run output; owns nothing the simulation's future depends on
    (except the retry/fault counters mirrored from the execution layer's
    emitted events — those are read back only at :meth:`finalize`).

    Args:
        capacities: nominal (pre-fault) capacities, the denominator of
            the historical utilization definition.
        tm: telemetry pipeline facade (may be disabled).
        start_time: the first arrival — utilization integrals and the
            makespan horizon both start here.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        tm: _telemetry.TelemetryLike,
        start_time: int,
    ) -> None:
        self.nominal_capacities: Tuple[int, ...] = tuple(capacities)
        self.tm = tm
        self.tm_enabled = tm.enabled
        self.start_time = start_time
        self.last_time = start_time
        self.busy_area = [0] * len(self.nominal_capacities)
        self.capacity_area = [0] * len(self.nominal_capacities)
        self.outcomes: List[JobOutcome] = []
        self.executed: Dict[int, Schedule] = {}
        self.fault_events: List[FaultEvent] = []
        self.exec_label = "online"  # overwritten by the orchestrator

    # ------------------------------------------------------------------ #
    # integrals and gauges
    # ------------------------------------------------------------------ #

    def account(self, state: "ClusterState", until: int) -> None:
        """Accrue busy and capacity slot-time up to ``until``.

        Must run *before* the clock advance that reaches ``until``: a
        task occupies its slots up to, not including, its finish
        instant, and a crash changes capacity only from its instant on.
        """
        if until <= self.last_time:
            return
        span = until - self.last_time
        capacities = state.capacities
        available = state.available
        for r in range(len(self.nominal_capacities)):
            self.busy_area[r] += span * (capacities[r] - available[r])
            self.capacity_area[r] += span * capacities[r]
        self.last_time = until

    def gauges(self, execution: "ExecutionLayer") -> None:
        """Publish the per-tick queue-length gauges."""
        if not self.tm_enabled:
            return
        active = execution.active
        self.tm.gauge("online.active_jobs", float(len(active)))
        self.tm.gauge(
            "online.ready_tasks",
            float(sum(len(j.ready) for j in active.values())),
        )

    # ------------------------------------------------------------------ #
    # incident and outcome records
    # ------------------------------------------------------------------ #

    def emit_fault(self, event: FaultEvent) -> None:
        """Append to the ordered incident record; mirror to telemetry."""
        self.fault_events.append(event)
        if self.tm_enabled:
            self.tm.event(
                f"fault.{event.kind}",
                time=event.time,
                job=-1 if event.job is None else event.job,
                task=-1 if event.task is None else event.task,
                attempt=0 if event.attempt is None else event.attempt,
                detail=event.detail,
            )

    def record_completion(self, job: "ActiveJob", now: int) -> None:
        """One job ran to completion: outcome, executed schedule, metrics."""
        outcome = job.outcome(now)
        self.outcomes.append(outcome)
        self.executed[job.index] = job.executed_schedule(self.exec_label)
        if self.tm_enabled:
            self.tm.observe("online.jct", float(outcome.jct))
            self.tm.event(
                "online.job",
                job=outcome.job_index,
                jct=outcome.jct,
                arrival=outcome.arrival_time,
                completion=outcome.completion_time,
                tasks=outcome.num_tasks,
                retries=outcome.retries,
                failed=outcome.failed,
            )

    def record_failure(self, job: "ActiveJob", now: int, reason: str) -> None:
        """One job was abandoned: outcome, partial schedule, incident."""
        self.outcomes.append(job.outcome(now, failed=True))
        self.executed[job.index] = job.executed_schedule(self.exec_label)
        self.emit_fault(FaultEvent(now, JOB_FAILED, job=job.index, detail=reason))

    # ------------------------------------------------------------------ #
    # final assembly
    # ------------------------------------------------------------------ #

    def finalize(self, makespan: int, fstate: Optional["FaultState"]) -> OnlineResult:
        """Assemble the :class:`OnlineResult` once the loop has drained."""
        horizon = max(1, makespan - self.start_time)
        nominal = tuple(
            self.busy_area[r] / (horizon * self.nominal_capacities[r])
            for r in range(len(self.nominal_capacities))
        )
        # Effective utilization divides by the capacity that actually
        # existed (the capacity-time integral); a zero integral (empty
        # horizon) falls back to the nominal denominator.
        effective = tuple(
            self.busy_area[r] / self.capacity_area[r]
            if self.capacity_area[r] > 0
            else nominal[r]
            for r in range(len(self.nominal_capacities))
        )
        self.outcomes.sort(key=lambda o: o.job_index)
        return OnlineResult(
            outcomes=tuple(self.outcomes),
            makespan=makespan,
            mean_utilization=effective,
            nominal_utilization=nominal,
            crashes=fstate.crashes if fstate is not None else 0,
            recoveries=fstate.recoveries if fstate is not None else 0,
            total_retries=fstate.total_retries if fstate is not None else 0,
            fault_events=tuple(self.fault_events),
            executed=tuple(self.executed[o.job_index] for o in self.outcomes),
        )
