"""Ranking functions for online multi-job scheduling.

A :data:`Ranker` maps a candidate task to a sortable key; *smaller keys
run first*.  The simulator is work-conserving: at every event it starts
fitting candidates in key order until nothing fits.

Rankers receive a :class:`TaskContext` carrying the task itself, its job's
arrival metadata and precomputed graph features, plus the live free
capacity — enough to express every greedy baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from ..dag.features import GraphFeatures
from ..dag.task import Task

__all__ = [
    "TaskContext",
    "Ranker",
    "fifo_ranker",
    "sjf_ranker",
    "cp_ranker",
    "tetris_ranker",
    "plan_priority_ranker",
    "resolve_ranker",
]


@dataclass(frozen=True)
class TaskContext:
    """Everything a ranker may look at for one candidate task.

    Attributes:
        task: the candidate (ids are per-job, not globally unique).
        job_index: position of the owning job in arrival order.
        arrival_time: when the owning job arrived.
        features: the owning job's graph features (b-level etc.).
        free: currently free slots per resource.
        now: current simulation time.
    """

    task: Task
    job_index: int
    arrival_time: int
    features: GraphFeatures
    free: Tuple[int, ...]
    now: int


#: Smaller keys are scheduled first.
#:
#: A ranker whose key ignores the *live* context fields (``free`` and
#: ``now``) may declare ``static_key = True`` on the function; the
#: dispatch loop then caches keys per (job, task) and fills each round
#: with one sorted sweep instead of re-ranking after every start (see
#: :meth:`repro.online.policy.PolicyLayer.dispatch_round`).
Ranker = Callable[[TaskContext], Tuple]


def fifo_ranker(ctx: TaskContext) -> Tuple:
    """Jobs in arrival order; within a job, smaller task id first."""
    return (ctx.arrival_time, ctx.job_index, ctx.task.task_id)


fifo_ranker.static_key = True  # type: ignore[attr-defined]


def sjf_ranker(ctx: TaskContext) -> Tuple:
    """Shortest task first across all jobs."""
    return (ctx.task.runtime, ctx.job_index, ctx.task.task_id)


sjf_ranker.static_key = True  # type: ignore[attr-defined]


def cp_ranker(ctx: TaskContext) -> Tuple:
    """Largest within-job b-level first (ties: children, then FIFO)."""
    return (
        -ctx.features.b_level[ctx.task.task_id],
        -ctx.features.num_children[ctx.task.task_id],
        ctx.job_index,
        ctx.task.task_id,
    )


cp_ranker.static_key = True  # type: ignore[attr-defined]


def tetris_ranker(ctx: TaskContext) -> Tuple:
    """Highest alignment score against free capacity first."""
    score = sum(d * f for d, f in zip(ctx.task.demands, ctx.free))
    return (-score, ctx.job_index, ctx.task.task_id)


def resolve_ranker(name: str) -> Ranker:
    """Map a CLI ranker name (``fifo|sjf|cp|tetris``) to its function.

    Raises:
        KeyError: with the sorted list of known names, for the CLI's
            uniform "unknown ranker" error path.
    """
    known: Dict[str, Ranker] = {
        "fifo": fifo_ranker,
        "sjf": sjf_ranker,
        "cp": cp_ranker,
        "tetris": tetris_ranker,
    }
    ranker = known.get(name)
    if ranker is None:
        raise KeyError(
            f"unknown ranker {name!r}; choose from {sorted(known)}"
        )
    return ranker


def plan_priority_ranker(
    plans: Sequence[Sequence[int]],
) -> Ranker:
    """Follow a per-job precomputed priority order (e.g. a Graphene plan
    or the action order Spear chose when planning the job offline).

    Args:
        plans: for each job (by arrival index) the task ids from highest
            to lowest priority.  Jobs themselves are served FIFO.
    """

    ranks: Dict[int, Dict[int, int]] = {
        job_index: {tid: rank for rank, tid in enumerate(order)}
        for job_index, order in enumerate(plans)
    }

    def ranker(ctx: TaskContext) -> Tuple:
        job_ranks = ranks.get(ctx.job_index, {})
        rank = job_ranks.get(ctx.task.task_id, len(job_ranks))
        return (ctx.job_index, rank, ctx.task.task_id)

    ranker.static_key = True  # type: ignore[attr-defined]
    return ranker
