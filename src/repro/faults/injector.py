"""Deterministic realization of a :class:`~repro.faults.plan.FaultPlan`.

The injector answers, for every task attempt, the two questions the
executor asks at dispatch time — *how long will this attempt actually
run* and *will it fail transiently at the end* — plus the crash/recovery
timeline the event loop interleaves with arrivals and completions.

Every per-attempt draw comes from a counter-based stream keyed by
``(plan.seed, job_index, task_id, attempt)`` (a splitmix64 hash of the
key), so the answers are a pure function of the key: re-asking in any
order (or after a reschedule changed the dispatch order) yields
identical outcomes.  This key-derived scheme is what makes the whole
fault-injected simulation bit-reproducible.  Hashing the key directly
replaces the earlier per-attempt ``numpy.random.SeedSequence`` spawn,
whose constructor alone cost more than an entire realized attempt.
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Tuple

from ..errors import ConfigError
from .plan import FaultPlan

__all__ = ["TaskAttempt", "TimelineEntry", "TimelineCursor", "FaultInjector"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15  # splitmix64 stream increment
_TWO64 = float(1 << 64)


def _mix64(z: int) -> int:
    """splitmix64 finalizer: avalanche one 64-bit word."""
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class _KeyedStream:
    """Tiny deterministic RNG keyed by ``(seed, job, task, attempt)``.

    A splitmix64 counter stream: the key words are folded into the
    starting state, then each draw advances the counter and avalanches
    it.  Pure function of the key — the property the injector's
    bit-reproducibility contract rests on — at a fraction of the cost
    of seeding a full ``numpy`` generator per attempt.
    """

    __slots__ = ("_state",)

    def __init__(self, seed: int, job_index: int, task_id: int, attempt: int) -> None:
        state = _mix64(seed & _MASK64)
        for word in (job_index, task_id, attempt):
            state = _mix64((state + _GOLDEN + (word & _MASK64)) & _MASK64)
        self._state = state

    def uniform(self) -> float:
        """Next draw in ``[0, 1)``."""
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix64(self._state) / _TWO64

    def normal(self) -> float:
        """Standard normal via Box-Muller (consumes two uniforms)."""
        u1 = 1.0 - self.uniform()  # (0, 1]: keeps log() finite
        u2 = self.uniform()
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


class TaskAttempt(NamedTuple):
    """Realized outcome of one task attempt.

    Attributes:
        runtime: actual slots the attempt occupies (>= 1).
        fails: the attempt fails transiently at its finish time.
        straggled: the straggler slowdown was applied.
    """

    runtime: int
    fails: bool
    straggled: bool


class TimelineEntry(NamedTuple):
    """One capacity-change event on the crash/recovery timeline.

    ``kind`` is ``"crash"`` or ``"recovery"``; ``capacity`` the slots
    removed (crash) or restored (recovery); ``machine`` the reporting
    label of the crash event it belongs to.
    """

    time: int
    order: int  # recoveries (0) before crashes (1) at equal times
    kind: str
    machine: int
    capacity: Tuple[int, ...]


class FaultInjector:
    """Stateless oracle over one fault plan.

    Args:
        plan: the fault model to realize.

    The injector holds no mutable state; all methods are pure functions
    of their arguments and the plan seed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    # ------------------------------------------------------------------ #
    # per-attempt realization
    # ------------------------------------------------------------------ #

    def attempt(
        self, job_index: int, task_id: int, attempt: int, nominal_runtime: int
    ) -> TaskAttempt:
        """Realize attempt ``attempt`` (1-based) of one task.

        The draw order (failure, straggler, noise) is fixed so outcomes
        never depend on which model components are enabled elsewhere.

        Raises:
            ConfigError: on a non-positive attempt number or runtime.
        """

        if attempt < 1:
            raise ConfigError("attempt numbers are 1-based")
        if nominal_runtime < 1:
            raise ConfigError("nominal_runtime must be >= 1")
        plan = self.plan
        if plan.is_null:
            return TaskAttempt(runtime=nominal_runtime, fails=False, straggled=False)
        rng = _KeyedStream(plan.seed, job_index, task_id, attempt)
        fails = rng.uniform() < plan.transient.probability
        straggled = rng.uniform() < plan.straggler.probability
        factor = 1.0
        if plan.noise is not None:
            if plan.noise.kind == "lognormal":
                factor = math.exp(plan.noise.scale * rng.normal())
            else:
                scale = plan.noise.scale
                factor = (1.0 - scale) + 2.0 * scale * rng.uniform()
        if straggled:
            factor *= plan.straggler.slowdown
        runtime = max(1, int(round(nominal_runtime * factor)))
        return TaskAttempt(runtime=runtime, fails=fails, straggled=straggled)

    def backoff(self, attempt: int) -> int:
        """Backoff delay after the ``attempt``-th transient failure."""
        return self.plan.retry.delay(attempt)

    @property
    def max_attempts(self) -> int:
        """Transient-failure attempt budget before a job is failed."""
        return self.plan.retry.max_attempts

    # ------------------------------------------------------------------ #
    # cluster timeline
    # ------------------------------------------------------------------ #

    def timeline(self) -> List[TimelineEntry]:
        """Crash/recovery events sorted by (time, recovery-first, machine).

        Recoveries sort before crashes at equal times so a staggered
        plan's capacity never transiently over-subscribes.
        """

        entries: List[TimelineEntry] = []
        for crash in self.plan.crashes:
            entries.append(
                TimelineEntry(crash.at, 1, "crash", crash.machine, crash.capacity)
            )
            if crash.recover_at is not None:
                entries.append(
                    TimelineEntry(
                        crash.recover_at, 0, "recovery", crash.machine, crash.capacity
                    )
                )
        entries.sort(key=lambda e: (e.time, e.order, e.machine))
        return entries


class TimelineCursor:
    """Consume a crash/recovery timeline in injector order.

    The kernel's global tie-break puts crashes before recoveries at
    equal times, but the timeline's own documented intra-tie order is
    the opposite (recovery first, so capacity never transiently
    over-subscribes).  The cursor reconciles the two: each entry is
    scheduled as a kernel event of its own class, but whichever event
    pops *first* at a given instant drains **every** entry due by then
    in timeline order; the later events for already-consumed entries
    then drain nothing.  The realized fault order therefore always
    matches :meth:`FaultInjector.timeline`.
    """

    __slots__ = ("_entries", "_pos")

    def __init__(self, entries: List[TimelineEntry]) -> None:
        self._entries = list(entries)
        self._pos = 0

    @property
    def entries(self) -> List[TimelineEntry]:
        """The full timeline, consumed or not."""
        return list(self._entries)

    @property
    def exhausted(self) -> bool:
        """Whether every entry has been drained."""
        return self._pos >= len(self._entries)

    def drain(self, now: int) -> List[TimelineEntry]:
        """Pop all unconsumed entries with ``time <= now``, in order."""
        fired: List[TimelineEntry] = []
        entries = self._entries
        while self._pos < len(entries) and entries[self._pos].time <= now:
            fired.append(entries[self._pos])
            self._pos += 1
        return fired
