"""Structured fault-event records.

The fault-aware executor appends one :class:`FaultEvent` per injected
incident to the :class:`repro.online.OnlineResult` (deterministic,
comparable — the determinism tests assert tuple equality) and mirrors
each one into the telemetry pipeline as a ``fault.<kind>`` point event,
so a ``--trace-out`` JSONL carries the full fault trace.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

__all__ = ["FaultEvent", "CRASH", "RECOVERY", "TASK_FAILURE", "RETRY", "JOB_FAILED"]

#: Event kinds (the ``fault.<kind>`` telemetry event names).
CRASH = "crash"
RECOVERY = "recovery"
TASK_FAILURE = "task_failure"
RETRY = "retry"
JOB_FAILED = "job_failed"


class FaultEvent(NamedTuple):
    """One injected incident, as executed.

    Attributes:
        time: simulation time of the incident.
        kind: one of :data:`CRASH`, :data:`RECOVERY`,
            :data:`TASK_FAILURE`, :data:`RETRY`, :data:`JOB_FAILED`.
        job: owning job index, or ``None`` for cluster-level events.
        task: task id, or ``None`` when not task-scoped.
        attempt: 1-based attempt number for task-scoped events.
        detail: short human-readable qualifier (e.g. ``"machine 0"``,
            ``"backoff 4"``, ``"crash_kill"``).
    """

    time: int
    kind: str
    job: Optional[int] = None
    task: Optional[int] = None
    attempt: Optional[int] = None
    detail: str = ""
