"""Composable, seedable fault models.

A :class:`FaultPlan` bundles everything that can go wrong during online
execution, each piece independently configurable:

* :class:`MachineCrash` — a chunk of cluster capacity disappears at a
  known time and (optionally) returns at a recovery time.  The cluster
  model is an aggregate slot pool (Sec. II-C), so a "machine" is a
  capacity vector, not an identity; running work displaced by the lost
  capacity is killed and re-enqueued.
* :class:`TransientFaults` — every task attempt fails independently with
  a fixed probability; the failure manifests at the attempt's finish
  time (the output is lost, the slot-time is not refunded).
* :class:`StragglerModel` — a task attempt is slowed down by a constant
  multiplier with a fixed probability (the classic straggler tail).
* :class:`RuntimeNoise` — every attempt's *actual* runtime deviates from
  the DAG's estimate by lognormal or uniform multiplicative noise,
  modelling runtime misestimation.
* :class:`RetryPolicy` — capped exponential backoff between attempts and
  the attempt budget after which a job is reported failed.

Determinism: the plan carries a single integer ``seed``; every stochastic
decision is drawn from an RNG keyed by ``(seed, job, task, attempt)``
(see :class:`repro.faults.injector.FaultInjector`), so outcomes are
bit-reproducible and *independent of event ordering* — a rescheduling
decision cannot perturb the fault stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..utils.rng import as_generator

__all__ = [
    "MachineCrash",
    "TransientFaults",
    "StragglerModel",
    "RuntimeNoise",
    "RetryPolicy",
    "FaultPlan",
    "FaultContext",
    "random_crash_plan",
    "parse_fault_spec",
]


@dataclass(frozen=True)
class MachineCrash:
    """One machine-loss event: ``capacity`` slots vanish at ``at``.

    Attributes:
        machine: reporting label (machines have no identity in the
            aggregate pool model).
        at: crash time in slots.
        capacity: slots lost per resource dimension.
        recover_at: time the capacity returns; ``None`` = permanent loss.
    """

    machine: int
    at: int
    capacity: Tuple[int, ...]
    recover_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigError("crash time must be >= 0")
        if not self.capacity or any(c < 0 for c in self.capacity):
            raise ConfigError("crash capacity must be a non-negative vector")
        if all(c == 0 for c in self.capacity):
            raise ConfigError("crash must remove at least one slot")
        if self.recover_at is not None and self.recover_at <= self.at:
            raise ConfigError("recover_at must be after the crash time")
        object.__setattr__(self, "capacity", tuple(int(c) for c in self.capacity))


@dataclass(frozen=True)
class TransientFaults:
    """Per-attempt transient failure probability."""

    probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ConfigError("transient probability must lie in [0, 1)")


@dataclass(frozen=True)
class StragglerModel:
    """Probabilistic constant-factor slowdown of an attempt."""

    probability: float = 0.0
    slowdown: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("straggler probability must lie in [0, 1]")
        if self.slowdown < 1.0:
            raise ConfigError("straggler slowdown must be >= 1")


@dataclass(frozen=True)
class RuntimeNoise:
    """Multiplicative misestimation noise on task runtimes.

    ``lognormal`` draws a factor with median 1 and shape ``scale``;
    ``uniform`` draws a factor from ``[1 - scale, 1 + scale]``.
    """

    kind: str = "lognormal"
    scale: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in ("lognormal", "uniform"):
            raise ConfigError(
                f"noise kind must be 'lognormal' or 'uniform', got {self.kind!r}"
            )
        if self.scale <= 0:
            raise ConfigError("noise scale must be > 0")
        if self.kind == "uniform" and self.scale >= 1.0:
            raise ConfigError("uniform noise scale must be < 1")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff between attempts.

    Attempt ``k`` (1-based) that fails transiently is retried after
    ``min(backoff_cap, backoff_base * 2**(k-1))`` slots.  After
    ``max_attempts`` transient failures the owning job is reported
    failed (crash-displaced work always retries — crashes are finite and
    not the task's fault).
    """

    max_attempts: int = 4
    backoff_base: int = 1
    backoff_cap: int = 16

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ConfigError("backoff_base must be >= 0")
        if self.backoff_cap < self.backoff_base:
            raise ConfigError("backoff_cap must be >= backoff_base")

    def delay(self, attempt: int) -> int:
        """Backoff before retrying after the ``attempt``-th failure."""
        if attempt < 1:
            raise ConfigError("attempt numbers are 1-based")
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))


@dataclass(frozen=True)
class FaultPlan:
    """The composed fault model one online run executes under."""

    crashes: Tuple[MachineCrash, ...] = ()
    transient: TransientFaults = field(default_factory=TransientFaults)
    straggler: StragglerModel = field(default_factory=StragglerModel)
    noise: Optional[RuntimeNoise] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError("fault seed must be >= 0")
        object.__setattr__(self, "crashes", tuple(self.crashes))

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.crashes
            and self.transient.probability == 0.0
            and self.straggler.probability == 0.0
            and self.noise is None
        )

    def validate_against(self, capacities: Sequence[int]) -> None:
        """Reject crash events no cluster of ``capacities`` could survive.

        Simultaneously-down capacity must leave every dimension >= 0;
        dimensionality must match.

        Raises:
            ConfigError: on dimension mismatch or over-subscribed loss.
        """

        caps = tuple(capacities)
        events = []
        for crash in self.crashes:
            if len(crash.capacity) != len(caps):
                raise ConfigError(
                    f"crash capacity {crash.capacity} has {len(crash.capacity)} "
                    f"dims, cluster has {len(caps)}"
                )
            events.append((crash.at, 1, crash.capacity))
            if crash.recover_at is not None:
                events.append((crash.recover_at, 0, crash.capacity))
        down = [0] * len(caps)
        for _, kind, capacity in sorted(events, key=lambda e: (e[0], e[1])):
            sign = 1 if kind == 1 else -1
            for r, c in enumerate(capacity):
                down[r] += sign * c
                if down[r] > caps[r]:
                    raise ConfigError(
                        f"crash plan removes {down[r]} slots of resource {r}, "
                        f"cluster only has {caps[r]}"
                    )


@dataclass(frozen=True)
class FaultContext:
    """What a replanning scheduler is told about the fault situation.

    Attached to :class:`repro.schedulers.base.ScheduleRequest` by the
    fault-aware executor so context-aware planners can, e.g., pad
    estimates or prefer conservative packings.

    Attributes:
        plan: the active fault plan.
        trigger: the event kind that triggered this replan
            (``"crash"`` / ``"recovery"`` / ``"task_failure"`` / ``"admit"``).
        time: simulation time of the trigger.
        retries_so_far: total retries the run has performed.
    """

    plan: FaultPlan
    trigger: str = "admit"
    time: int = 0
    retries_so_far: int = 0


def random_crash_plan(
    num_crashes: int,
    capacities: Sequence[int],
    horizon: int,
    outage: int = 50,
    fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[MachineCrash, ...]:
    """Generate a seeded batch of recoverable crash events.

    Crash times are drawn uniformly in ``[horizon // 10, horizon)``, each
    removing ``fraction`` of every capacity dimension (at least one slot)
    for ``outage`` slots.  Events are staggered so simultaneous losses
    never exceed the validated bound.

    Raises:
        ConfigError: on non-positive horizon/outage or a fraction that
            leaves no capacity.
    """

    if num_crashes < 0:
        raise ConfigError("num_crashes must be >= 0")
    if horizon < 2:
        raise ConfigError("horizon must be >= 2")
    if outage < 1:
        raise ConfigError("outage must be >= 1")
    if not 0.0 < fraction < 1.0:
        raise ConfigError("fraction must lie in (0, 1)")
    rng = as_generator(seed)
    loss = tuple(max(1, int(c * fraction)) for c in capacities)
    crashes = []
    lo = max(1, horizon // 10)
    for machine in range(num_crashes):
        at = int(rng.integers(lo, max(lo + 1, horizon)))
        # Stagger: a crash may only begin once the previous one recovered,
        # keeping the simultaneous loss at a single machine's worth.
        if crashes and at <= crashes[-1].recover_at:
            at = crashes[-1].recover_at + 1
        crashes.append(
            MachineCrash(
                machine=machine, at=at, capacity=loss, recover_at=at + outage
            )
        )
    return tuple(crashes)


_SPEC_KEYS = (
    "crashes",
    "outage",
    "fraction",
    "transient",
    "straggler",
    "slowdown",
    "noise",
    "noise_kind",
    "max_attempts",
    "backoff",
    "backoff_cap",
    "seed",
)


def parse_fault_spec(
    spec: str,
    capacities: Sequence[int],
    horizon: int,
    seed: int = 0,
) -> FaultPlan:
    """Build a :class:`FaultPlan` from a compact ``key=value`` spec string.

    Example::

        parse_fault_spec("crashes=2,transient=0.05,straggler=0.1,noise=0.2",
                         capacities=(20, 20), horizon=400)

    Keys: ``crashes`` (int), ``outage`` (int slots), ``fraction`` (float
    capacity share per crash), ``transient`` (float probability),
    ``straggler`` (float probability), ``slowdown`` (float multiplier),
    ``noise`` (float scale; enables lognormal noise), ``noise_kind``
    (``lognormal``/``uniform``), ``max_attempts``, ``backoff``,
    ``backoff_cap`` (ints), ``seed`` (int; defaults to the ``seed``
    argument).

    Raises:
        ConfigError: on unknown keys or malformed values.
    """

    values: Dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"fault spec entry {part!r} is not key=value")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ConfigError(
                f"unknown fault spec key {key!r}; known: {list(_SPEC_KEYS)}"
            )
        values[key] = raw.strip()

    def _int(key: str, default: int) -> int:
        try:
            return int(values[key]) if key in values else default
        except ValueError:
            raise ConfigError(f"fault spec {key}={values[key]!r} is not an int") from None

    def _float(key: str, default: float) -> float:
        try:
            return float(values[key]) if key in values else default
        except ValueError:
            raise ConfigError(
                f"fault spec {key}={values[key]!r} is not a float"
            ) from None

    plan_seed = _int("seed", seed)
    crashes = random_crash_plan(
        _int("crashes", 0),
        capacities,
        horizon,
        outage=_int("outage", max(1, horizon // 8)),
        fraction=_float("fraction", 0.25),
        seed=plan_seed,
    )
    noise_scale = _float("noise", 0.0)
    plan = FaultPlan(
        crashes=crashes,
        transient=TransientFaults(probability=_float("transient", 0.0)),
        straggler=StragglerModel(
            probability=_float("straggler", 0.0),
            slowdown=_float("slowdown", 2.0),
        ),
        noise=(
            RuntimeNoise(kind=values.get("noise_kind", "lognormal"), scale=noise_scale)
            if noise_scale > 0
            else None
        ),
        retry=RetryPolicy(
            max_attempts=_int("max_attempts", 4),
            backoff_base=_int("backoff", 1),
            backoff_cap=_int("backoff_cap", 16),
        ),
        seed=plan_seed,
    )
    plan.validate_against(capacities)
    return plan
