"""repro.faults — seeded fault injection and runtime uncertainty.

The Spear paper schedules against *estimated* runtimes on a static
cluster; this package expresses everything a real cluster does to such a
plan — machines crash and recover, tasks fail transiently and retry,
stragglers blow past their estimates — as composable, bit-reproducible
fault models (DESIGN.md Sec. 10).  Quick tour::

    from repro.faults import FaultPlan, TransientFaults, random_crash_plan

    plan = FaultPlan(
        crashes=random_crash_plan(2, capacities=(20, 20), horizon=400),
        transient=TransientFaults(probability=0.05),
        seed=7,
    )
    result = OnlineSimulator().run(jobs, ranker, faults=plan)
    result.recoveries, result.total_retries, result.failed_jobs

The executor side (retry/backoff, crash-displaced work, dynamic
rescheduling) lives in :mod:`repro.online.simulator`; the
:class:`~repro.schedulers.rescheduler.ReschedulingScheduler` wrapper
replans the residual DAG on every fault event.
"""

from .events import CRASH, JOB_FAILED, RECOVERY, RETRY, TASK_FAILURE, FaultEvent
from .injector import FaultInjector, TaskAttempt, TimelineEntry
from .plan import (
    FaultContext,
    FaultPlan,
    MachineCrash,
    RetryPolicy,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
    parse_fault_spec,
    random_crash_plan,
)

__all__ = [
    "FaultEvent",
    "CRASH",
    "RECOVERY",
    "TASK_FAILURE",
    "RETRY",
    "JOB_FAILED",
    "FaultInjector",
    "TaskAttempt",
    "TimelineEntry",
    "FaultPlan",
    "FaultContext",
    "MachineCrash",
    "TransientFaults",
    "StragglerModel",
    "RuntimeNoise",
    "RetryPolicy",
    "parse_fault_spec",
    "random_crash_plan",
]
