"""Schedulers: the policy protocol, executor, and all paper baselines.

* :class:`Policy` + :func:`run_policy` — the event-driven execution model
  shared by every dynamic scheduler (a policy repeatedly picks one action
  from the environment's legal set).
* Baselines of Sec. V: :class:`RandomPolicy`, :class:`SjfPolicy` (shortest
  job first), :class:`CriticalPathPolicy` (largest b-level),
  :class:`TetrisPolicy` (alignment-score packing), and
  :class:`GrapheneScheduler` (troublesome-task planning with forward and
  backward space-time placement).
* :class:`BranchAndBoundScheduler` — exact makespan minimization for small
  instances, used to certify optimality in tests.
"""

from .base import (
    Policy,
    Scheduler,
    SchedulerWrapper,
    PolicyScheduler,
    ClusterSnapshot,
    ScheduleRequest,
    as_schedule_request,
    run_policy,
)
from .policies import (
    RandomPolicy,
    SjfPolicy,
    CriticalPathPolicy,
    PriorityListPolicy,
)
from .tetris import TetrisPolicy
from .graphene import GrapheneScheduler, GraphenePlan
from .exact import BranchAndBoundScheduler
from .listsched import HeftPolicy, LptPolicy, FifoPolicy
from .registry import (
    TelemetryScheduler,
    VerifyingScheduler,
    available_schedulers,
    compose_scheduler,
    make_scheduler,
    parse_scheduler_spec,
    scheduler_options,
)
from .rescheduler import ReschedulingScheduler

__all__ = [
    "Policy",
    "Scheduler",
    "SchedulerWrapper",
    "PolicyScheduler",
    "ClusterSnapshot",
    "ScheduleRequest",
    "as_schedule_request",
    "run_policy",
    "RandomPolicy",
    "SjfPolicy",
    "CriticalPathPolicy",
    "PriorityListPolicy",
    "TetrisPolicy",
    "GrapheneScheduler",
    "GraphenePlan",
    "BranchAndBoundScheduler",
    "HeftPolicy",
    "LptPolicy",
    "FifoPolicy",
    "available_schedulers",
    "make_scheduler",
    "compose_scheduler",
    "parse_scheduler_spec",
    "scheduler_options",
    "VerifyingScheduler",
    "TelemetryScheduler",
    "ReschedulingScheduler",
]
