"""Graphene baseline (Grandl et al., OSDI 2016), re-implemented from
scratch per Sec. V-A of the Spear paper.

Graphene plans in an *offline* virtual resource-time space and executes
the derived task order *online*:

1. **Identify troublesome tasks** ``T``: tasks whose runtime is at least
   ``threshold x max_runtime``, or whose demand in some dimension is at
   least ``demand_threshold x capacity``.  The Spear evaluation sweeps the
   runtime threshold over {0.2, 0.4, 0.6, 0.8} per DAG and keeps the best
   result.
2. **Place ``T`` first** in an empty virtual space, in descending order of
   runtime (the design decision the Spear paper criticizes), using either
   *forward* placement (earliest feasible start from time 0) or *backward*
   placement (latest feasible start below a horizon — packing from the top
   of the time axis).  Both strategies are always tried.
3. **Place the remaining tasks** in topological order at their earliest
   feasible start after all already-placed parents finish; this fills the
   space around ``T`` while keeping parents before children.
4. **Derive a total order** by virtual start time and execute it with a
   dependency- and capacity-respecting online list scheduler
   (:class:`PriorityListPolicy`).  Virtual placements may violate
   dependencies around the pre-placed ``T`` tasks; the online pass
   guarantees the final schedule is feasible regardless.

The best makespan over ``len(thresholds) x 2`` candidate plans is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.timeline import ResourceTimeSpace
from ..config import EnvConfig, GrapheneConfig
from ..dag.analysis import makespan_lower_bound
from ..dag.graph import TaskGraph
from ..envarr.backend import make_env
from ..metrics.schedule import Schedule
from ..utils.timing import Stopwatch
from .base import Scheduler, run_policy
from .policies import PriorityListPolicy

__all__ = ["GrapheneScheduler", "GraphenePlan"]


@dataclass(frozen=True)
class GraphenePlan:
    """One candidate plan: the derived order and its provenance."""

    order: Tuple[int, ...]
    threshold: float
    direction: str  # "forward" | "backward"
    troublesome: Tuple[int, ...]
    virtual_makespan: int


class GrapheneScheduler(Scheduler):
    """Graphene: troublesome-task-first planning + online packing.

    Args:
        config: Graphene parameters (thresholds, demand criterion, backward
            horizon factor).
        env_config: environment used for the online execution pass; its
            capacities define the virtual space as well.
    """

    name = "graphene"

    def __init__(
        self,
        config: GrapheneConfig | None = None,
        env_config: EnvConfig | None = None,
    ) -> None:
        self.config = config if config is not None else GrapheneConfig()
        self.env_config = env_config if env_config is not None else EnvConfig()

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #

    def identify_troublesome(
        self, graph: TaskGraph, threshold: float
    ) -> List[int]:
        """Tasks that are long (relative to the DAG's max runtime) or
        resource-hungry (relative to capacity) — the set Graphene
        prioritizes."""
        capacities = self.env_config.cluster.capacities
        max_runtime = max(task.runtime for task in graph)
        troublesome = []
        for task in graph:
            long_running = task.runtime >= threshold * max_runtime
            hungry = any(
                demand >= self.config.demand_threshold * capacity
                for demand, capacity in zip(task.demands, capacities)
            )
            if long_running or hungry:
                troublesome.append(task.task_id)
        return troublesome

    def _place_troublesome(
        self,
        graph: TaskGraph,
        space: ResourceTimeSpace,
        troublesome: Sequence[int],
        direction: str,
    ) -> Dict[int, int]:
        """Pack the troublesome set into an empty space; return start times.

        Descending-runtime order in both directions (the Graphene rule the
        Spear paper calls out).  Backward placement packs against a horizon
        proportional to the job's makespan lower bound, growing it if a
        task cannot fit below it.
        """
        capacities = self.env_config.cluster.capacities
        ordered = sorted(
            troublesome,
            key=lambda tid: (-graph.task(tid).runtime, tid),
        )
        starts: Dict[int, int] = {}
        if direction == "forward":
            for tid in ordered:
                task = graph.task(tid)
                start = space.earliest_start(task.demands, task.runtime)
                space.place(task.demands, start, task.runtime)
                starts[tid] = start
            return starts

        horizon = max(
            1,
            int(
                self.config.space_time_horizon_factor
                * makespan_lower_bound(graph, capacities)
            ),
        )
        for tid in ordered:
            task = graph.task(tid)
            start: Optional[int] = space.latest_start(
                task.demands, task.runtime, deadline=horizon
            )
            while start is None:
                horizon *= 2
                start = space.latest_start(
                    task.demands, task.runtime, deadline=horizon
                )
            space.place(task.demands, start, task.runtime)
            starts[tid] = start
        return starts

    def build_plan(
        self, graph: TaskGraph, threshold: float, direction: str
    ) -> GraphenePlan:
        """Construct one candidate plan for (threshold, direction)."""
        capacities = self.env_config.cluster.capacities
        space = ResourceTimeSpace(capacities)
        troublesome = self.identify_troublesome(graph, threshold)
        starts = self._place_troublesome(graph, space, troublesome, direction)

        placed = set(starts)
        for tid in graph.topological_order():
            if tid in placed:
                continue
            task = graph.task(tid)
            ready_after = 0
            for parent in graph.parents(tid):
                if parent in starts:
                    ready_after = max(
                        ready_after, starts[parent] + graph.task(parent).runtime
                    )
            start = space.earliest_start(
                task.demands, task.runtime, not_before=ready_after
            )
            space.place(task.demands, start, task.runtime)
            starts[tid] = start
            placed.add(tid)

        order = tuple(sorted(starts, key=lambda tid: (starts[tid], tid)))
        return GraphenePlan(
            order=order,
            threshold=threshold,
            direction=direction,
            troublesome=tuple(sorted(troublesome)),
            virtual_makespan=space.makespan(),
        )

    def candidate_plans(self, graph: TaskGraph) -> List[GraphenePlan]:
        """All ``thresholds x {forward, backward}`` candidate plans."""
        return [
            self.build_plan(graph, threshold, direction)
            for threshold in self.config.thresholds
            for direction in ("forward", "backward")
        ]

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, graph: TaskGraph) -> Schedule:
        """Plan, execute every candidate online, return the best schedule."""
        watch = Stopwatch()
        best: Optional[Schedule] = None
        with watch:
            for plan in self.candidate_plans(graph):
                env = make_env(graph, self.env_config)
                policy = PriorityListPolicy(plan.order, name=self.name)
                candidate = run_policy(env, policy)
                if best is None or candidate.makespan < best.makespan:
                    best = candidate
        assert best is not None  # candidate_plans is never empty
        return Schedule(best.placements, scheduler=self.name, wall_time=watch.elapsed)
