"""The Tetris baseline: multi-resource alignment-score packing.

Tetris (Grandl et al., SIGCOMM 2014) schedules the task whose demand vector
best *aligns* with the currently free resources: the score of a fitting
task is the dot product of its demand vector and the free-capacity vector.
Large tasks that use the dominant free resource score highest, which packs
the cluster tightly — but the heuristic is dependency-blind, the weakness
Fig. 3 of the Spear paper exploits.
"""

from __future__ import annotations

from ..env.actions import PROCESS, Action
from ..env.scheduling_env import SchedulingEnv
from .base import Policy

__all__ = ["TetrisPolicy", "alignment_score"]


def alignment_score(demands, available) -> int:
    """Tetris packing score: ``dot(demands, available)``.

    Exact integer arithmetic; higher is better.
    """

    return sum(d * a for d, a in zip(demands, available))


class TetrisPolicy(Policy):
    """Greedy alignment-score packing (dependency-blind).

    Among the visible ready tasks that fit, start the one with the highest
    :func:`alignment_score` against the current free capacity; break ties
    with the smaller task id; process when nothing fits.
    """

    name = "tetris"

    def select(self, env: SchedulingEnv) -> Action:
        fitting = [a for a in env.legal_actions() if a != PROCESS]
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        available = env.cluster.available
        return min(
            fitting,
            key=lambda a: (
                -alignment_score(env.graph.task(visible[a]).demands, available),
                visible[a],
            ),
        )
