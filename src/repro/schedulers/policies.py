"""Greedy baseline policies: Random, SJF, CP, and priority-list execution.

All of these are *work-conserving*: whenever a visible ready task fits in
free capacity, one is started; only when nothing fits does the policy
process the cluster.  They differ purely in how they rank the fitting
tasks, which isolates exactly the axis the paper compares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dag.features import GraphFeatures, compute_features
from ..env.actions import PROCESS, Action
from ..env.scheduling_env import SchedulingEnv
from ..errors import EnvironmentStateError
from ..utils.rng import SeedLike, as_generator
from .base import Policy

__all__ = [
    "RandomPolicy",
    "SjfPolicy",
    "CriticalPathPolicy",
    "PriorityListPolicy",
]


def _fitting_indices(env: SchedulingEnv) -> List[int]:
    """Indices (into the visible window) of ready tasks that fit now."""
    return [a for a in env.legal_actions() if a != PROCESS]


class RandomPolicy(Policy):
    """Uniformly random choice among legal actions.

    The classic-MCTS rollout policy; also the "completely random network"
    strawman of Sec. IV.  With ``work_conserving=True`` (default) it picks
    uniformly among fitting tasks and only processes when nothing fits,
    which keeps rollouts short; with ``False`` it samples the full legal
    action set, including voluntary processing.
    """

    name = "random"

    def __init__(self, seed: SeedLike = None, work_conserving: bool = True) -> None:
        self._rng = as_generator(seed)
        self._work_conserving = work_conserving

    def select(self, env: SchedulingEnv) -> Action:
        actions = (
            env.expansion_actions(work_conserving=True)
            if self._work_conserving
            else env.legal_actions()
        )
        if not actions:
            raise EnvironmentStateError("no legal actions")
        return actions[int(self._rng.integers(0, len(actions)))]


class SjfPolicy(Policy):
    """Shortest Job First: start the fitting task with the least runtime.

    Ties break on smaller task id.  Dependency- and packing-blind; one of
    the Sec. V baselines.
    """

    name = "sjf"

    def select(self, env: SchedulingEnv) -> Action:
        fitting = _fitting_indices(env)
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        return min(
            fitting,
            key=lambda a: (env.graph.task(visible[a]).runtime, visible[a]),
        )


class CriticalPathPolicy(Policy):
    """Largest b-level first (the "CP" baseline of Sec. V).

    Ranks fitting tasks by descending b-level, breaking ties by descending
    number of children then ascending id — the classic list-scheduling
    priority the paper cites from the DAG-scheduling literature.
    """

    name = "cp"

    def __init__(self) -> None:
        self._features: Optional[GraphFeatures] = None

    def begin_episode(self, env: SchedulingEnv) -> None:
        self._features = compute_features(env.graph)

    def select(self, env: SchedulingEnv) -> Action:
        if self._features is None:
            self._features = compute_features(env.graph)
        fitting = _fitting_indices(env)
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        features = self._features
        return min(
            fitting,
            key=lambda a: (
                -features.b_level[visible[a]],
                -features.num_children[visible[a]],
                visible[a],
            ),
        )


class PriorityListPolicy(Policy):
    """Execute tasks according to a fixed total priority order.

    Used to realize planner outputs (Graphene's derived order) as an online
    schedule: among the fitting visible tasks, always start the one ranked
    earliest in ``order``; process when nothing fits.  Tasks missing from
    ``order`` rank last (by id).

    Args:
        order: task ids from highest to lowest priority.
        name: report label.
    """

    def __init__(self, order: Sequence[int], name: str = "priority-list") -> None:
        self.name = name
        self._rank: Dict[int, int] = {tid: i for i, tid in enumerate(order)}

    def select(self, env: SchedulingEnv) -> Action:
        fitting = _fitting_indices(env)
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        fallback = len(self._rank)
        return min(
            fitting,
            key=lambda a: (self._rank.get(visible[a], fallback), visible[a]),
        )
