"""Scheduler and policy abstractions.

Two complementary interfaces coexist:

* :class:`Policy` — a *dynamic* decision rule: given the live environment,
  pick one action.  All greedy baselines (Tetris, SJF, CP) and the DRL
  agent are policies.
* :class:`Scheduler` — anything that turns a scheduling *request* into a
  :class:`Schedule`.  :class:`PolicyScheduler` adapts a policy factory into
  a scheduler by rolling an episode; planners like Graphene and search
  methods like MCTS implement :class:`Scheduler` directly.

The scheduler entry point is founded on :class:`ScheduleRequest` — a DAG
plus the *context* a production replanner needs: the live cluster
snapshot, placements that are already frozen (completed) or pinned
(running), an optional deadline, and the active fault context.  The
canonical method is :meth:`Scheduler.plan`; the historical
``schedule(graph)`` signature survives as a shim that wraps the graph in
a context-free request, so every pre-existing call site keeps working.

Migration notes (see DESIGN.md Sec. 10.4):

* New schedulers override ``plan(request)`` and may read the context.
* Legacy schedulers that override ``schedule(graph)`` keep working: the
  base ``plan`` detects the override and delegates with ``request.graph``
  (the context is ignored, which is exactly the legacy behaviour).
* Callers must migrate to ``plan(ScheduleRequest(graph))`` (or
  ``plan(as_schedule_request(...))``); the ``schedule(graph)`` shim still
  works but now emits a :class:`DeprecationWarning`.  Every internal call
  site — CLI, experiments, benches, examples — goes through ``plan``.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Tuple, Union

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..env.actions import Action
from ..env.scheduling_env import SchedulingEnv
from ..envarr.backend import AnyEnv, make_env
from ..errors import ConfigError, EnvironmentStateError
from ..metrics.schedule import Schedule
from ..utils.timing import Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..faults.plan import FaultContext

__all__ = [
    "Policy",
    "Scheduler",
    "SchedulerWrapper",
    "PolicyScheduler",
    "ClusterSnapshot",
    "ScheduleRequest",
    "as_schedule_request",
    "run_policy",
]

#: Hard cap on episode length as a multiple of the episode's work volume;
#: tripping it indicates a livelocked policy, which is a bug worth raising.
_STEP_LIMIT_FACTOR = 20


class Policy(abc.ABC):
    """A dynamic scheduling decision rule."""

    #: Human-readable identifier used in reports.
    name: str = "policy"

    def begin_episode(self, env: SchedulingEnv) -> None:
        """Hook called once at episode start (override to cache features)."""

    @abc.abstractmethod
    def select(self, env: SchedulingEnv) -> Action:
        """Choose one action from ``env.legal_actions()``."""


@dataclass(frozen=True)
class ClusterSnapshot:
    """Point-in-time view of the live cluster a planner schedules against.

    Attributes:
        capacities: total slots per resource *right now* (crashed machines
            already subtracted).
        available: currently free slots per resource.
        now: current simulation/wall time in slots.
    """

    capacities: Tuple[int, ...]
    available: Tuple[int, ...]
    now: int = 0

    def __post_init__(self) -> None:
        if len(self.capacities) != len(self.available):
            raise ConfigError(
                "snapshot capacities and available must have equal dims"
            )
        if any(c < 0 for c in self.capacities):
            raise ConfigError("snapshot capacities must be >= 0")
        if any(a < 0 or a > c for a, c in zip(self.available, self.capacities)):
            raise ConfigError("snapshot available must lie in [0, capacity]")


@dataclass(frozen=True)
class ScheduleRequest:
    """Everything a context-aware scheduler may look at for one plan.

    Attributes:
        graph: the (residual) DAG to plan.  For replanning, completed
            tasks are already removed and running tasks excluded; their
            effect is carried by ``frozen`` / ``pinned``.
        cluster: live cluster snapshot, or ``None`` for the scheduler's
            configured default cluster (the offline planning case).
        frozen: completed placements, ``task_id -> (start, finish)``;
            informational — these tasks must not be re-planned.
        pinned: running placements, ``task_id -> (start, expected_finish)``;
            they occupy capacity until their finish and must not move.
        deadline: optional completion target in slots (advisory).
        faults: active fault context when planning under injection, or
            ``None`` (see :mod:`repro.faults`).
    """

    graph: TaskGraph
    cluster: Optional[ClusterSnapshot] = None
    frozen: Mapping[int, Tuple[int, int]] = field(default_factory=dict)
    pinned: Mapping[int, Tuple[int, int]] = field(default_factory=dict)
    deadline: Optional[int] = None
    faults: Optional["FaultContext"] = None

    @property
    def is_replan(self) -> bool:
        """True when this request carries residual-DAG context."""
        return bool(self.frozen) or bool(self.pinned) or self.cluster is not None


def as_schedule_request(
    target: Union[TaskGraph, ScheduleRequest], **context: object
) -> ScheduleRequest:
    """Normalize a bare graph or an existing request into a request.

    Extra keyword arguments become request fields when ``target`` is a
    graph; passing both a ready request and context is an error (the
    caller should build the request directly).
    """

    if isinstance(target, ScheduleRequest):
        if context:
            raise ConfigError(
                "cannot combine an existing ScheduleRequest with extra context"
            )
        return target
    if isinstance(target, TaskGraph):
        return ScheduleRequest(graph=target, **context)  # type: ignore[arg-type]
    raise ConfigError(
        f"expected TaskGraph or ScheduleRequest, got {type(target).__name__}"
    )


class Scheduler(abc.ABC):
    """Anything that produces a complete schedule for a job DAG.

    Override :meth:`plan` (canonical, context-aware) *or* the legacy
    ``schedule(graph)`` — at least one.  ``schedule`` also serves as the
    backward-compatible entry shim: it accepts a bare graph or a full
    :class:`ScheduleRequest` and routes through :meth:`plan`.
    """

    name: str = "scheduler"

    def plan(self, request: ScheduleRequest) -> Schedule:
        """Plan and return a feasible schedule for ``request``.

        The default implementation supports legacy subclasses: when the
        subclass overrides ``schedule(graph)`` (and not ``plan``), the
        request's graph is delegated to it and any context is ignored.
        """

        legacy = type(self).schedule
        if legacy is not Scheduler.schedule:
            return legacy(self, request.graph)
        raise NotImplementedError(
            f"{type(self).__name__} must override plan() or schedule()"
        )

    def schedule(self, graph: Union[TaskGraph, ScheduleRequest]) -> Schedule:
        """Deprecated shim: accept a graph (or request), call :meth:`plan`.

        ``plan(ScheduleRequest(graph))`` is the sole canonical entrypoint;
        this shim survives for old callers and warns them once per site.
        """

        warnings.warn(
            "Scheduler.schedule(graph) is deprecated; call "
            "plan(ScheduleRequest(graph)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.plan(as_schedule_request(graph))


class SchedulerWrapper(Scheduler):
    """Base class for transparent scheduler decorators.

    A wrapper keeps the inner scheduler's ``name`` (so reports and
    registries see the original label) and forwards unknown attribute
    access to it.  Forwarding is deliberately conservative:

    * dunder lookups raise :class:`AttributeError` immediately — Python's
      copy/pickle protocols probe ``__reduce_ex__``, ``__getstate__`` and
      friends *before* ``__init__`` has run, and forwarding those through
      a not-yet-assigned ``_inner`` used to recurse infinitely;
    * ``_inner`` itself is fetched with ``object.__getattribute__`` so a
      half-constructed (e.g. mid-unpickling) wrapper degrades to a clean
      :class:`AttributeError` instead of a ``RecursionError``.
    """

    def __init__(self, inner: Scheduler) -> None:
        self._inner = inner
        self.name = inner.name

    @property
    def inner(self) -> Scheduler:
        """The wrapped scheduler (unwrap repeatedly to reach the base)."""
        return self._inner

    def plan(self, request: ScheduleRequest) -> Schedule:
        return self._inner.plan(request)

    def __getattr__(self, attr: str):
        if attr.startswith("__") and attr.endswith("__"):
            raise AttributeError(attr)
        try:
            inner = object.__getattribute__(self, "_inner")
        except AttributeError:
            raise AttributeError(attr) from None
        return getattr(inner, attr)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._inner!r})"


def run_policy(
    env: AnyEnv,
    policy: Policy,
    max_steps: Optional[int] = None,
) -> Schedule:
    """Roll one episode of ``policy`` on ``env`` and export the schedule.

    Args:
        env: a freshly reset (or mid-episode) environment; it is mutated.
        policy: the decision rule.
        max_steps: optional explicit step cap; defaults to a generous
            multiple of the job's total runtime plus task count.

    Raises:
        EnvironmentStateError: if the step cap is hit (livelocked policy)
            or the policy returns an illegal action.
    """

    if max_steps is None:
        total_runtime = sum(task.runtime for task in env.graph)
        max_steps = _STEP_LIMIT_FACTOR * (total_runtime + env.graph.num_tasks)
    policy.begin_episode(env)
    watch = Stopwatch()
    with watch:
        steps = 0
        while not env.done:
            if steps >= max_steps:
                raise EnvironmentStateError(
                    f"policy {policy.name!r} exceeded {max_steps} steps; "
                    "likely livelocked"
                )
            env.step(policy.select(env))
            steps += 1
    return env.to_schedule(scheduler=policy.name, wall_time=watch.elapsed)


def _planning_config(config: EnvConfig, request: ScheduleRequest) -> EnvConfig:
    """Resolve the environment config a planner should use for ``request``.

    A replan request carries the *current* capacities (crashed machines
    subtracted); planning against them keeps the plan executable on the
    degraded cluster.  When some residual task cannot fit the degraded
    capacities at all (it must wait for a recovery), fall back to the
    configured capacities — the plan is then a priority order rather than
    a packing, which is how the online executor consumes it anyway.
    """

    snapshot = request.cluster
    if snapshot is None:
        return config
    capacities = tuple(snapshot.capacities)
    if capacities == tuple(config.cluster.capacities):
        return config
    if len(capacities) != request.graph.num_resources:
        return config
    for task in request.graph:
        if any(d > c for d, c in zip(task.demands, capacities)):
            return config
    if any(c <= 0 for c in capacities):
        return config
    from dataclasses import replace

    return replace(config, cluster=replace(config.cluster, capacities=capacities))


class PolicyScheduler(Scheduler):
    """Adapts a policy factory into a :class:`Scheduler`.

    Args:
        policy_factory: zero-argument callable returning a fresh policy per
            job (policies may carry per-episode state).
        config: environment configuration used for every job.
        name: report label; defaults to the first policy's name.
    """

    def __init__(
        self,
        policy_factory: Callable[[], Policy],
        config: EnvConfig | None = None,
        name: Optional[str] = None,
    ) -> None:
        self._factory = policy_factory
        self._config = config if config is not None else EnvConfig()
        self.name = name if name is not None else policy_factory().name

    def plan(self, request: ScheduleRequest) -> Schedule:
        env = make_env(request.graph, _planning_config(self._config, request))
        policy = self._factory()
        schedule = run_policy(env, policy)
        return Schedule(
            schedule.placements, scheduler=self.name, wall_time=schedule.wall_time
        )
