"""Scheduler and policy abstractions.

Two complementary interfaces coexist:

* :class:`Policy` — a *dynamic* decision rule: given the live environment,
  pick one action.  All greedy baselines (Tetris, SJF, CP) and the DRL
  agent are policies.
* :class:`Scheduler` — anything that turns a :class:`TaskGraph` into a
  :class:`Schedule`.  :class:`PolicyScheduler` adapts a policy factory into
  a scheduler by rolling an episode; planners like Graphene and search
  methods like MCTS implement :class:`Scheduler` directly.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..env.actions import Action
from ..env.scheduling_env import SchedulingEnv
from ..errors import EnvironmentStateError
from ..metrics.schedule import Schedule
from ..utils.timing import Stopwatch

__all__ = ["Policy", "Scheduler", "PolicyScheduler", "run_policy"]

#: Hard cap on episode length as a multiple of the episode's work volume;
#: tripping it indicates a livelocked policy, which is a bug worth raising.
_STEP_LIMIT_FACTOR = 20


class Policy(abc.ABC):
    """A dynamic scheduling decision rule."""

    #: Human-readable identifier used in reports.
    name: str = "policy"

    def begin_episode(self, env: SchedulingEnv) -> None:
        """Hook called once at episode start (override to cache features)."""

    @abc.abstractmethod
    def select(self, env: SchedulingEnv) -> Action:
        """Choose one action from ``env.legal_actions()``."""


class Scheduler(abc.ABC):
    """Anything that produces a complete schedule for a job DAG."""

    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, graph: TaskGraph) -> Schedule:
        """Plan and return a feasible schedule for ``graph``."""


def run_policy(
    env: SchedulingEnv,
    policy: Policy,
    max_steps: Optional[int] = None,
) -> Schedule:
    """Roll one episode of ``policy`` on ``env`` and export the schedule.

    Args:
        env: a freshly reset (or mid-episode) environment; it is mutated.
        policy: the decision rule.
        max_steps: optional explicit step cap; defaults to a generous
            multiple of the job's total runtime plus task count.

    Raises:
        EnvironmentStateError: if the step cap is hit (livelocked policy)
            or the policy returns an illegal action.
    """

    if max_steps is None:
        total_runtime = sum(task.runtime for task in env.graph)
        max_steps = _STEP_LIMIT_FACTOR * (total_runtime + env.graph.num_tasks)
    policy.begin_episode(env)
    watch = Stopwatch()
    with watch:
        steps = 0
        while not env.done:
            if steps >= max_steps:
                raise EnvironmentStateError(
                    f"policy {policy.name!r} exceeded {max_steps} steps; "
                    "likely livelocked"
                )
            env.step(policy.select(env))
            steps += 1
    return env.to_schedule(scheduler=policy.name, wall_time=watch.elapsed)


class PolicyScheduler(Scheduler):
    """Adapts a policy factory into a :class:`Scheduler`.

    Args:
        policy_factory: zero-argument callable returning a fresh policy per
            job (policies may carry per-episode state).
        config: environment configuration used for every job.
        name: report label; defaults to the first policy's name.
    """

    def __init__(
        self,
        policy_factory: Callable[[], Policy],
        config: EnvConfig | None = None,
        name: Optional[str] = None,
    ) -> None:
        self._factory = policy_factory
        self._config = config if config is not None else EnvConfig()
        self.name = name if name is not None else policy_factory().name

    def schedule(self, graph: TaskGraph) -> Schedule:
        env = SchedulingEnv(graph, self._config)
        policy = self._factory()
        schedule = run_policy(env, policy)
        return Schedule(
            schedule.placements, scheduler=self.name, wall_time=schedule.wall_time
        )
