"""Classic list-scheduling baselines from the DAG-scheduling literature.

The paper's related work (Sec. VI) groups "dependency-aware task
scheduling that doesn't consider the varying resource demands" — the
classic heuristics of Kwok & Ahmad's survey [15].  This module provides
the representative members, adapted to the multi-resource cluster model so
they are directly comparable with Spear:

* :class:`HeftPolicy` — Heterogeneous Earliest Finish Time: rank tasks by
  *upward rank* (b-level with mean runtimes — identical to b-level in our
  single-speed cluster) and start the highest-ranked fitting task.  The
  canonical processor-selection step degenerates in an aggregate resource
  pool, leaving exactly the rank order, which is what the paper's "CP"
  baseline family captures; HEFT is kept distinct because its rank breaks
  ties by *mean* b-level of children rather than out-degree.
* :class:`LptPolicy` — Longest Processing Time first (the makespan
  counterpart of SJF).
* :class:`FifoPolicy` — arrival order (Hadoop's default queue), the
  weakest sensible baseline.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..env.actions import PROCESS, Action
from ..env.scheduling_env import SchedulingEnv
from .base import Policy

__all__ = ["HeftPolicy", "LptPolicy", "FifoPolicy"]


class HeftPolicy(Policy):
    """HEFT-style upward-rank list scheduling.

    The upward rank of a task is its runtime plus the maximum over
    children of (mean communication cost + child rank); with co-located
    data (no network model, matching the paper's cluster abstraction) the
    communication term is zero, and the rank recursion differs from
    b-level only in its tiebreak: the *mean* child rank is used to order
    equal-rank tasks, favouring tasks whose entire downstream subtree is
    heavy rather than just its heaviest path.
    """

    name = "heft"

    def __init__(self) -> None:
        self._rank: Optional[Dict[int, float]] = None
        self._mean_rank: Optional[Dict[int, float]] = None

    def begin_episode(self, env: SchedulingEnv) -> None:
        graph = env.graph
        rank: Dict[int, float] = {}
        mean_rank: Dict[int, float] = {}
        for tid in reversed(graph.topological_order()):
            task = graph.task(tid)
            kids = graph.children(tid)
            if not kids:
                rank[tid] = float(task.runtime)
                mean_rank[tid] = float(task.runtime)
            else:
                rank[tid] = task.runtime + max(rank[k] for k in kids)
                mean_rank[tid] = task.runtime + sum(rank[k] for k in kids) / len(kids)
        self._rank = rank
        self._mean_rank = mean_rank

    def select(self, env: SchedulingEnv) -> Action:
        if self._rank is None:
            self.begin_episode(env)
        assert self._rank is not None and self._mean_rank is not None
        fitting = [a for a in env.legal_actions() if a != PROCESS]
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        return min(
            fitting,
            key=lambda a: (
                -self._rank[visible[a]],
                -self._mean_rank[visible[a]],
                visible[a],
            ),
        )


class LptPolicy(Policy):
    """Longest Processing Time first (greedy makespan heuristic)."""

    name = "lpt"

    def select(self, env: SchedulingEnv) -> Action:
        fitting = [a for a in env.legal_actions() if a != PROCESS]
        if not fitting:
            return PROCESS
        visible = env.visible_ready()
        return min(
            fitting,
            key=lambda a: (-env.graph.task(visible[a]).runtime, visible[a]),
        )


class FifoPolicy(Policy):
    """Arrival (ready-queue) order — Hadoop's default FIFO behaviour."""

    name = "fifo"

    def select(self, env: SchedulingEnv) -> Action:
        fitting = [a for a in env.legal_actions() if a != PROCESS]
        if not fitting:
            return PROCESS
        # The visible window is already in arrival order.
        return min(fitting)
