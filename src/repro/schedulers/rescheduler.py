"""Dynamic rescheduling with graceful degradation.

:class:`ReschedulingScheduler` wraps a *planner* (typically MCTS or
Spear) so the online executor can replan the residual DAG on every
fault event.  Replanning a search-based scheduler is expensive, so the
wrapper enforces a per-event wall-clock budget: the first replan that
blows the budget flips the wrapper into *degraded mode*, where all
subsequent replans go to a cheap registered heuristic (HEFT or
critical-path) instead.  A planner error degrades immediately for that
event.  Degradation is graceful and observable — never an exception on
the serving path.

The wrapper is a :class:`~repro.schedulers.base.SchedulerWrapper`: it
keeps the planner's ``name``, forwards attribute access, and works as a
plain offline scheduler too (``schedule(graph)`` plans the whole DAG).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError, ReproError
from ..metrics.schedule import Schedule
from ..telemetry import runtime as _telemetry
from ..utils.timing import Stopwatch
from .base import Scheduler, SchedulerWrapper, ScheduleRequest

__all__ = ["ReschedulingScheduler"]


class ReschedulingScheduler(SchedulerWrapper):
    """Replanning wrapper with a time budget and a heuristic fallback.

    Args:
        planner: the primary (expensive) scheduler.
        fallback: cheap scheduler used once degraded or when the planner
            errors; ``None`` disables degradation (the planner is always
            used and its errors propagate).
        replan_budget: per-replan wall-clock budget in seconds.  A replan
            that *finishes* over budget still returns its (valid) result,
            but the wrapper degrades so the next event uses the fallback.
            ``None`` means unbudgeted.

    Attributes:
        replans: total :meth:`plan` calls served.
        fallback_replans: how many were served by the fallback.
        degraded: whether the wrapper has permanently switched over.
    """

    def __init__(
        self,
        planner: Scheduler,
        fallback: Optional[Scheduler] = None,
        replan_budget: Optional[float] = None,
    ) -> None:
        super().__init__(planner)
        if replan_budget is not None and replan_budget <= 0:
            raise ConfigError("replan_budget must be > 0 seconds")
        self.fallback = fallback
        self.replan_budget = replan_budget
        self.degraded = False
        self.replans = 0
        self.fallback_replans = 0

    def reset(self) -> None:
        """Clear degradation state and counters (new run, fresh budget)."""
        self.degraded = False
        self.replans = 0
        self.fallback_replans = 0

    def plan(self, request: ScheduleRequest) -> Schedule:
        """Plan ``request``, degrading to the fallback per the policy."""
        tm = _telemetry.active()
        self.replans += 1
        use_fallback = self.degraded and self.fallback is not None
        if use_fallback:
            self.fallback_replans += 1
            return self.fallback.plan(request)  # type: ignore[union-attr]
        watch = Stopwatch()
        try:
            with watch:
                schedule = self._inner.plan(request)
        except ReproError as exc:
            if self.fallback is None:
                raise
            self._degrade(tm, request, reason=f"planner error: {exc}")
            self.fallback_replans += 1
            return self.fallback.plan(request)
        if (
            self.replan_budget is not None
            and self.fallback is not None
            and watch.elapsed > self.replan_budget
        ):
            self._degrade(
                tm,
                request,
                reason=(
                    f"replan took {watch.elapsed:.3f}s "
                    f"(budget {self.replan_budget:.3f}s)"
                ),
            )
        return schedule

    def _degrade(self, tm, request: ScheduleRequest, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        if tm.enabled:
            tm.event(
                "reschedule.degraded",
                scheduler=self.name,
                fallback=self.fallback.name if self.fallback else "",
                tasks=request.graph.num_tasks,
                reason=reason,
            )
            tm.inc("reschedule.degradations")

    def priority_order(self, request: ScheduleRequest) -> List[int]:
        """Plan ``request`` and return its task ids in dispatch-priority
        order (by planned start, ties by task id) — the form the online
        executor's plan-priority ranker consumes."""

        schedule = self.plan(request)
        return [
            p.task_id
            for p in sorted(schedule.placements, key=lambda p: (p.start, p.task_id))
        ]

    def __repr__(self) -> str:
        fb = self.fallback.name if self.fallback is not None else None
        return (
            f"ReschedulingScheduler({self._inner!r}, fallback={fb!r}, "
            f"budget={self.replan_budget!r}, degraded={self.degraded})"
        )
