"""Exact makespan minimization by depth-first branch and bound.

Only tractable for small instances (roughly <= 12 tasks), but invaluable:
tests use it to certify that MCTS/Spear reach the true optimum on the
motivating example and on randomized small DAGs, and the ablation harness
uses it to measure each heuristic's optimality gap.

The search branches over the environment's *full* legal action set
(including voluntary processing), so it explores non-work-conserving
schedules too; correctness does not rest on the work-conservation
assumption.  Pruning:

* **lower bound** — ``now + max(remaining critical path, remaining work /
  capacity, latest running finish - now)`` must beat the incumbent;
* **transposition table** — states reached twice with the same signature
  at an equal-or-later time are cut.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..config import EnvConfig
from ..dag.features import compute_features
from ..dag.graph import TaskGraph
from ..env.actions import PROCESS
from ..env.scheduling_env import SchedulingEnv
from ..envarr.backend import make_env
from ..errors import ScheduleError
from ..metrics.schedule import Schedule
from ..utils.timing import Stopwatch
from .base import Scheduler

__all__ = ["BranchAndBoundScheduler"]


class BranchAndBoundScheduler(Scheduler):
    """Optimal scheduler for small DAGs.

    Args:
        env_config: environment (capacities) to schedule into.
        max_nodes: search-node budget; exceeding it raises
            :class:`ScheduleError` rather than silently returning a
            suboptimal answer (exactness is the whole point).
    """

    name = "optimal"

    def __init__(
        self,
        env_config: EnvConfig | None = None,
        max_nodes: int = 2_000_000,
    ) -> None:
        self.env_config = env_config if env_config is not None else EnvConfig()
        self.max_nodes = max_nodes

    def schedule(self, graph: TaskGraph) -> Schedule:
        watch = Stopwatch()
        with watch:
            makespan, starts = self._search(graph)
        if starts is None:
            raise ScheduleError("branch and bound failed to find any schedule")
        return Schedule.from_starts(
            starts, graph, scheduler=self.name, wall_time=watch.elapsed
        )

    # ------------------------------------------------------------------ #

    def _search(self, graph: TaskGraph) -> Tuple[int, Optional[Dict[int, int]]]:
        features = compute_features(graph)
        capacities = self.env_config.cluster.capacities
        b_level = features.b_level
        runtimes = {task.task_id: task.runtime for task in graph}
        work = {
            r: {task.task_id: task.load(r) for task in graph}
            for r in range(graph.num_resources)
        }

        root = make_env(graph, self.env_config)
        best_makespan = math.inf
        best_starts: Optional[Dict[int, int]] = None
        seen: Dict[Tuple, int] = {}
        nodes = 0

        def lower_bound(env: SchedulingEnv) -> int:
            now = env.cluster.now
            unfinished = env.unfinished_ids()
            if not unfinished:
                return now
            running = {e.task_id: e.finish_time for e in env.cluster.running_tasks()}
            # Dependency bound: every unstarted task still needs its full
            # b-level; every running task needs its remaining b-level.
            dep_bound = 0
            for tid in unfinished:
                if tid in running:
                    remaining = (running[tid] - now) + (
                        b_level[tid] - runtimes[tid]
                    )
                else:
                    remaining = b_level[tid]
                dep_bound = max(dep_bound, remaining)
            # Work bound per resource (remaining runtime of running tasks
            # counts its demand exactly).
            work_bound = 0
            for r, capacity in enumerate(capacities):
                volume = 0
                for tid in unfinished:
                    if tid in running:
                        volume += (running[tid] - now) * graph.task(tid).demands[r]
                    else:
                        volume += work[r][tid]
                work_bound = max(work_bound, math.ceil(volume / capacity))
            return now + max(dep_bound, work_bound)

        def dfs(env: SchedulingEnv) -> None:
            nonlocal best_makespan, best_starts, nodes
            nodes += 1
            if nodes > self.max_nodes:
                raise ScheduleError(
                    f"branch and bound exceeded {self.max_nodes} nodes; "
                    "instance too large for exact search"
                )
            if env.done:
                if env.makespan < best_makespan:
                    best_makespan = env.makespan
                    best_starts = env.start_times()
                return
            if lower_bound(env) >= best_makespan:
                return
            signature = env.signature()
            previous = seen.get(signature)
            if previous is not None and previous <= env.cluster.now:
                return
            seen[signature] = env.cluster.now

            actions = env.legal_actions()
            # Explore schedule actions ordered by descending b-level first
            # (good incumbents early), PROCESS last.
            def order_key(action: int) -> Tuple:
                if action == PROCESS:
                    return (1, 0)
                tid = env.visible_ready()[action]
                return (0, -b_level[tid], tid)

            for action in sorted(actions, key=order_key):
                child = env.clone()
                child.step(action)
                dfs(child)

        dfs(root)
        if best_starts is None:
            return (0, None)
        return (int(best_makespan), best_starts)
