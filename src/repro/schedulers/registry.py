"""Name-based scheduler construction for the CLI and the experiment harness.

``make_scheduler("tetris")`` returns a ready-to-use :class:`Scheduler`;
the registry covers every baseline.  Spear and pure MCTS live in
:mod:`repro.core` (they need extra machinery — search budgets, trained
networks) and register themselves through :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..errors import ConfigError
from ..metrics.schedule import Schedule
from .base import PolicyScheduler, Scheduler
from .exact import BranchAndBoundScheduler
from .graphene import GrapheneScheduler
from .listsched import FifoPolicy, HeftPolicy, LptPolicy
from .policies import CriticalPathPolicy, RandomPolicy, SjfPolicy
from .tetris import TetrisPolicy

__all__ = [
    "available_schedulers",
    "make_scheduler",
    "register",
    "VerifyingScheduler",
]

_FACTORIES: Dict[str, Callable[[EnvConfig], Scheduler]] = {}


def register(name: str, factory: Callable[[EnvConfig], Scheduler]) -> None:
    """Register a scheduler factory under ``name`` (overwrites silently is
    an error; names are unique)."""
    if name in _FACTORIES:
        raise ConfigError(f"scheduler {name!r} already registered")
    _FACTORIES[name] = factory


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    return sorted(_FACTORIES)


class VerifyingScheduler(Scheduler):
    """Wraps any scheduler so every emitted schedule is machine-checked.

    After the inner scheduler plans, the schedule runs through
    :func:`repro.analysis.verify_schedule` against the graph and the
    cluster capacities of ``env_config``; any violated invariant raises
    :class:`repro.errors.ScheduleError` before the schedule can leak to
    callers.  The wrapper is transparent: it keeps the inner name and
    forwards attribute access, so reports and registries see the
    original scheduler.
    """

    def __init__(self, inner: Scheduler, env_config: EnvConfig) -> None:
        self._inner = inner
        self._capacities = tuple(env_config.cluster.capacities)
        self.name = inner.name

    def schedule(self, graph: TaskGraph) -> Schedule:
        from ..analysis.verifier import verify_schedule  # local: avoids a cycle

        schedule = self._inner.schedule(graph)
        verify_schedule(schedule, graph, self._capacities).raise_if_violations()
        return schedule

    def __getattr__(self, attr: str):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"VerifyingScheduler({self._inner!r})"


def make_scheduler(
    name: str,
    env_config: EnvConfig | None = None,
    validate: bool = False,
) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    Args:
        name: registry key (see :func:`available_schedulers`).
        env_config: environment shape; defaults to :class:`EnvConfig()`.
        validate: wrap the scheduler in :class:`VerifyingScheduler` so
            every schedule it emits is checked against the full invariant
            set before being returned.

    Raises:
        ConfigError: for unknown names (message lists what exists).
    """
    config = env_config if env_config is not None else EnvConfig()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    scheduler = factory(config)
    if validate:
        return VerifyingScheduler(scheduler, config)
    return scheduler


register("random", lambda cfg: PolicyScheduler(RandomPolicy, cfg, name="random"))
register("sjf", lambda cfg: PolicyScheduler(SjfPolicy, cfg, name="sjf"))
register("cp", lambda cfg: PolicyScheduler(CriticalPathPolicy, cfg, name="cp"))
register("tetris", lambda cfg: PolicyScheduler(TetrisPolicy, cfg, name="tetris"))
register("graphene", lambda cfg: GrapheneScheduler(env_config=cfg))
register("optimal", lambda cfg: BranchAndBoundScheduler(env_config=cfg))
register("heft", lambda cfg: PolicyScheduler(HeftPolicy, cfg, name="heft"))
register("lpt", lambda cfg: PolicyScheduler(LptPolicy, cfg, name="lpt"))
register("fifo", lambda cfg: PolicyScheduler(FifoPolicy, cfg, name="fifo"))
