"""Name-based scheduler construction for the CLI and the experiment harness.

``make_scheduler("tetris")`` returns a ready-to-use :class:`Scheduler`;
the registry covers every baseline.  Spear and pure MCTS live in
:mod:`repro.core` (they need extra machinery — search budgets, trained
networks) and register themselves through :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..config import EnvConfig
from ..errors import ConfigError
from .base import PolicyScheduler, Scheduler
from .exact import BranchAndBoundScheduler
from .graphene import GrapheneScheduler
from .listsched import FifoPolicy, HeftPolicy, LptPolicy
from .policies import CriticalPathPolicy, RandomPolicy, SjfPolicy
from .tetris import TetrisPolicy

__all__ = ["available_schedulers", "make_scheduler", "register"]

_FACTORIES: Dict[str, Callable[[EnvConfig], Scheduler]] = {}


def register(name: str, factory: Callable[[EnvConfig], Scheduler]) -> None:
    """Register a scheduler factory under ``name`` (overwrites silently is
    an error; names are unique)."""
    if name in _FACTORIES:
        raise ConfigError(f"scheduler {name!r} already registered")
    _FACTORIES[name] = factory


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers."""
    return sorted(_FACTORIES)


def make_scheduler(name: str, env_config: EnvConfig | None = None) -> Scheduler:
    """Instantiate the scheduler registered under ``name``.

    Raises:
        ConfigError: for unknown names (message lists what exists).
    """
    config = env_config if env_config is not None else EnvConfig()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(config)


register("random", lambda cfg: PolicyScheduler(RandomPolicy, cfg, name="random"))
register("sjf", lambda cfg: PolicyScheduler(SjfPolicy, cfg, name="sjf"))
register("cp", lambda cfg: PolicyScheduler(CriticalPathPolicy, cfg, name="cp"))
register("tetris", lambda cfg: PolicyScheduler(TetrisPolicy, cfg, name="tetris"))
register("graphene", lambda cfg: GrapheneScheduler(env_config=cfg))
register("optimal", lambda cfg: BranchAndBoundScheduler(env_config=cfg))
register("heft", lambda cfg: PolicyScheduler(HeftPolicy, cfg, name="heft"))
register("lpt", lambda cfg: PolicyScheduler(LptPolicy, cfg, name="lpt"))
register("fifo", lambda cfg: PolicyScheduler(FifoPolicy, cfg, name="fifo"))
