"""Name-based scheduler construction for the CLI and the experiment harness.

``make_scheduler("tetris")`` returns a ready-to-use :class:`Scheduler`.
Construction is driven by *spec strings* — a registry name plus typed
``key=value`` options::

    make_scheduler("mcts:budget=200,min_budget=50,seed=3")
    make_scheduler("spear:budget=2000,fallback=heft")
    make_scheduler("tetris:verify=true")

Option keys and their types are declared at registration time
(:func:`register`); unknown keys and malformed values raise
:class:`~repro.errors.ConfigError` with the known keys listed.  Four
*wrapper* keys are reserved on every spec and assemble the standard
decorator stack via :func:`compose_scheduler`:

* ``verify`` (bool) — machine-check every emitted schedule
  (:class:`VerifyingScheduler`);
* ``telemetry`` (bool) — wrap each plan in a ``scheduler.plan`` span
  (:class:`TelemetryScheduler`);
* ``fallback`` (spec) — degrade to this scheduler on planner errors or
  budget overruns (:class:`~repro.schedulers.rescheduler.ReschedulingScheduler`);
* ``replan_budget`` (float seconds) — per-replan wall-clock budget.

Spear and pure MCTS live in :mod:`repro.core` (they need extra machinery
— search budgets, trained networks) and register themselves when that
package is imported; the registry imports it lazily on first use of
either name, so ``make_scheduler("mcts:budget=50")`` works even when
only this module has been imported.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..config import EnvConfig
from ..errors import ConfigError
from ..metrics.schedule import Schedule
from ..specs import SCHEDULER_GRAMMAR, coerce_option, suggest, tokenize_spec
from ..telemetry import runtime as _telemetry
from .base import (
    PolicyScheduler,
    Scheduler,
    SchedulerWrapper,
    ScheduleRequest,
    _planning_config,
)
from .exact import BranchAndBoundScheduler
from .graphene import GrapheneScheduler
from .listsched import FifoPolicy, HeftPolicy, LptPolicy
from .policies import CriticalPathPolicy, RandomPolicy, SjfPolicy
from .rescheduler import ReschedulingScheduler
from .tetris import TetrisPolicy

__all__ = [
    "available_schedulers",
    "scheduler_options",
    "parse_scheduler_spec",
    "make_scheduler",
    "compose_scheduler",
    "register",
    "VerifyingScheduler",
    "TelemetryScheduler",
]

#: Option coercers a registration may declare: the python type of each key.
OptionType = Callable[[str], Any]

_FACTORIES: Dict[str, Callable[..., Scheduler]] = {}
_OPTION_SCHEMAS: Dict[str, Dict[str, OptionType]] = {}

#: Names provided by packages the registry must not import eagerly
#: (``repro.core`` pulls in the RL stack); imported on first use.
_LAZY_PROVIDERS: Dict[str, str] = {"mcts": "repro.core", "spear": "repro.core"}

#: Spec keys consumed by :func:`make_scheduler` itself (wrapper stack),
#: valid on every scheduler and rejected as registration option names.
_WRAPPER_KEYS = ("verify", "telemetry", "fallback", "replan_budget")


def register(
    name: str,
    factory: Callable[..., Scheduler],
    options: Optional[Mapping[str, OptionType]] = None,
) -> None:
    """Register a scheduler factory under ``name``.

    Args:
        name: unique registry key (re-registering raises).
        factory: called as ``factory(env_config, **options)``; factories
            without options are called with the config alone.
        options: typed option schema, ``key -> type`` (``int``, ``float``,
            ``bool`` or ``str``) — the keys a spec string may set for this
            scheduler.  Spec values are coerced to the declared type before
            the factory sees them.

    Raises:
        ConfigError: on a duplicate name or an option key that collides
            with a reserved wrapper key.
    """
    if name in _FACTORIES:
        raise ConfigError(f"scheduler {name!r} already registered")
    schema = dict(options) if options else {}
    clash = sorted(set(schema) & set(_WRAPPER_KEYS))
    if clash:
        raise ConfigError(
            f"scheduler {name!r} declares reserved option keys {clash}"
        )
    _FACTORIES[name] = factory
    _OPTION_SCHEMAS[name] = schema


def available_schedulers() -> List[str]:
    """Sorted names of all registered schedulers (lazy providers included)."""
    return sorted(set(_FACTORIES) | set(_LAZY_PROVIDERS))


def scheduler_options() -> Dict[str, Dict[str, str]]:
    """Per-scheduler option schemas as ``name -> {key: type name}``.

    Wrapper keys (valid everywhere) are not repeated per scheduler; the
    CLI's ``repro schedulers`` listing prints them once.
    """
    for name in list(_LAZY_PROVIDERS):
        _resolve_factory(name)
    return {
        name: {key: typ.__name__ for key, typ in sorted(schema.items())}
        for name, schema in sorted(_OPTION_SCHEMAS.items())
    }


def parse_scheduler_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=val,key=val"`` into ``(name, raw options)``.

    A bare name parses to ``(name, {})``.  Values stay strings here;
    :func:`make_scheduler` coerces them against the registered schema.
    Thin layer over the shared grammar in :mod:`repro.specs`.

    Raises:
        ConfigError: on an empty name, a non-``key=value`` entry, or a
            duplicated key.
    """
    return tokenize_spec(spec, SCHEDULER_GRAMMAR)


def _coerce(name: str, key: str, raw: Any, typ: OptionType) -> Any:
    """Coerce one raw option value to its declared type.

    Shared-grammar coercion (:func:`repro.specs.coerce_option`):
    programmatic kwargs arrive pre-typed — an int where a float is
    declared is widened, custom-typed options (e.g. a network object for
    ``spear``) pass straight to the factory, plain mismatches raise.
    """
    return coerce_option(name, key, raw, typ)


def _resolve_factory(name: str) -> Callable[..., Scheduler]:
    """Look up a factory, importing its lazy provider package if needed."""
    factory = _FACTORIES.get(name)
    if factory is None and name in _LAZY_PROVIDERS:
        importlib.import_module(_LAZY_PROVIDERS[name])
        factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        )
    return factory


class VerifyingScheduler(SchedulerWrapper):
    """Wraps any scheduler so every emitted schedule is machine-checked.

    After the inner scheduler plans, the schedule runs through
    :func:`repro.analysis.verify_schedule` against the request's graph
    and the capacities the plan was made for — the request's cluster
    snapshot when a replan carries one (resolved exactly like
    :func:`~repro.schedulers.base._planning_config` does, so degraded
    capacities and the oversized-task fallback agree with the planner),
    otherwise the configured cluster.  Any violated invariant raises
    :class:`repro.errors.ScheduleError` before the schedule can leak to
    callers.  The wrapper is transparent: it keeps the inner name and
    forwards attribute access, so reports and registries see the
    original scheduler.
    """

    def __init__(self, inner: Scheduler, env_config: EnvConfig | None = None) -> None:
        super().__init__(inner)
        self._config = env_config if env_config is not None else EnvConfig()

    def plan(self, request: ScheduleRequest) -> Schedule:
        from ..analysis.verifier import verify_schedule  # local: avoids a cycle

        schedule = self._inner.plan(request)
        capacities = tuple(
            _planning_config(self._config, request).cluster.capacities
        )
        verify_schedule(schedule, request.graph, capacities).raise_if_violations()
        return schedule


class TelemetryScheduler(SchedulerWrapper):
    """Wraps any scheduler so every plan lands in the telemetry pipeline.

    Each :meth:`plan` call becomes one ``scheduler.plan`` span (scheduler
    name, task count, replan flag, resulting makespan) plus a
    ``scheduler.plans`` counter tick.  With telemetry disabled the
    overhead is one no-op span per plan.
    """

    def plan(self, request: ScheduleRequest) -> Schedule:
        tm = _telemetry.active()
        with tm.span(
            "scheduler.plan",
            scheduler=self.name,
            tasks=request.graph.num_tasks,
            replan=request.is_replan,
        ) as span:
            schedule = self._inner.plan(request)
            if tm.enabled:
                span.set(makespan=schedule.makespan)
                tm.inc("scheduler.plans")
        return schedule


def compose_scheduler(
    scheduler: Union[Scheduler, str],
    env_config: EnvConfig | None = None,
    *,
    verify: bool = False,
    telemetry: bool = False,
    reschedule: bool = False,
    fallback: Union[Scheduler, str, None] = None,
    replan_budget: Optional[float] = None,
) -> Scheduler:
    """Assemble the standard wrapper stack around a scheduler.

    This is the one place wrapper nesting order is decided (innermost
    first): rescheduling — so degraded/fallback plans are still checked
    — then verification, then telemetry outermost so spans cover the
    verifier too.

    Args:
        scheduler: a ready instance, or a registry spec to build first.
        env_config: environment shape for verification and for building
            ``scheduler``/``fallback`` from specs.
        verify: add :class:`VerifyingScheduler`.
        telemetry: add :class:`TelemetryScheduler`.
        reschedule: add :class:`ReschedulingScheduler` (implied when
            ``fallback`` or ``replan_budget`` is given).
        fallback: heuristic to degrade to (instance or spec).
        replan_budget: per-replan wall-clock budget in seconds.

    Raises:
        ConfigError: via spec resolution or invalid budgets.
    """
    config = env_config if env_config is not None else EnvConfig()
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler, config)
    if isinstance(fallback, str):
        fallback = make_scheduler(fallback, config)
    if reschedule or fallback is not None or replan_budget is not None:
        scheduler = ReschedulingScheduler(
            scheduler, fallback=fallback, replan_budget=replan_budget
        )
    if verify:
        scheduler = VerifyingScheduler(scheduler, config)
    if telemetry:
        scheduler = TelemetryScheduler(scheduler)
    return scheduler


def make_scheduler(
    spec: str,
    env_config: EnvConfig | None = None,
    validate: bool = False,
    **options: Any,
) -> Scheduler:
    """Instantiate a scheduler from a registry spec.

    Args:
        spec: registry name, optionally with typed options and wrapper
            keys — ``"tetris"``, ``"mcts:budget=200,seed=3"``,
            ``"spear:budget=2000,fallback=heft,verify=true"``.
        env_config: environment shape; defaults to :class:`EnvConfig()`.
        validate: wrap in :class:`VerifyingScheduler` (equivalent to the
            ``verify=true`` spec key) so every schedule is checked
            against the full invariant set before being returned.
        **options: programmatic options, merged over the spec's (same
            keys, already typed — e.g. ``network=my_policy_network`` for
            ``spear``, which has no spec-string form).

    Raises:
        ConfigError: for unknown names or option keys (the message lists
            what exists) and malformed option values.
    """
    config = env_config if env_config is not None else EnvConfig()
    name, raw_options = parse_scheduler_spec(spec)
    factory = _resolve_factory(name)
    schema = _OPTION_SCHEMAS.get(name, {})

    merged: Dict[str, Any] = dict(raw_options)
    merged.update(options)

    wrapper_types: Dict[str, OptionType] = {
        "verify": bool,
        "telemetry": bool,
        "fallback": str,
        "replan_budget": float,
    }
    wrappers: Dict[str, Any] = {}
    typed: Dict[str, Any] = {}
    for key, raw in merged.items():
        if key in wrapper_types:
            wrappers[key] = _coerce(name, key, raw, wrapper_types[key])
        elif key in schema:
            typed[key] = _coerce(name, key, raw, schema[key])
        else:
            known = sorted(schema) + list(_WRAPPER_KEYS)
            raise ConfigError(
                f"unknown option {key!r} for scheduler {name!r}; "
                f"known: {known}{suggest(key, known)}"
            )

    scheduler = factory(config, **typed) if typed else factory(config)
    if validate:
        wrappers["verify"] = True
    if wrappers:
        return compose_scheduler(scheduler, config, **wrappers)
    return scheduler


register("random", lambda cfg: PolicyScheduler(RandomPolicy, cfg, name="random"))
register("sjf", lambda cfg: PolicyScheduler(SjfPolicy, cfg, name="sjf"))
register("cp", lambda cfg: PolicyScheduler(CriticalPathPolicy, cfg, name="cp"))
register("tetris", lambda cfg: PolicyScheduler(TetrisPolicy, cfg, name="tetris"))
register("graphene", lambda cfg: GrapheneScheduler(env_config=cfg))
register(
    "optimal",
    lambda cfg, **opts: BranchAndBoundScheduler(env_config=cfg, **opts),
    options={"max_nodes": int},
)
register("heft", lambda cfg: PolicyScheduler(HeftPolicy, cfg, name="heft"))
register("lpt", lambda cfg: PolicyScheduler(LptPolicy, cfg, name="lpt"))
register("fifo", lambda cfg: PolicyScheduler(FifoPolicy, cfg, name="fifo"))
