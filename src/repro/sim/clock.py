"""The kernel's integer simulation clock.

Simulated time is an integer slot index (Sec. III of the paper models
time in unit slots; the whole library keeps that convention so event
ties are exact, never float-fuzzy).  The clock only moves forward:
handlers observe ``now`` and schedule future events, and an event
scheduled at or before ``now`` (e.g. a fault-timeline entry dated
before the first job arrival) is *processed at* ``now`` rather than
rewinding — matching how a real executor catches up on a backlog.
"""

from __future__ import annotations

from ..errors import EnvironmentStateError

__all__ = ["SimClock"]


class SimClock:
    """Monotonic integer clock.

    Args:
        start: initial time (e.g. the first job arrival, so pre-history
            events collapse onto the simulation start).
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise EnvironmentStateError(f"clock cannot start at {start} < 0")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulation time in slots."""
        return self._now

    def advance_to(self, time: int) -> int:
        """Move the clock forward to ``max(now, time)``; returns ``now``.

        Clamping (instead of raising) is what lets the kernel process
        pre-history events at the simulation start without special
        cases; genuine backwards jumps simply do not move the clock.
        """
        if time > self._now:
            self._now = int(time)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
