"""The kernel: clock + queue + handlers + pluggable event sources.

:class:`SimKernel` owns a :class:`~repro.sim.clock.SimClock` and an
:class:`~repro.sim.queue.EventQueue`, dispatches popped events to
handlers registered by ``kind``, and integrates :class:`SimProcess`
event *sources* — components that own future occurrences the queue
cannot see until time reaches them (canonically the cluster adapter,
whose next occurrence is the earliest running-task finish).

One :meth:`tick` is one simulated instant, in three phases:

1. **advance** — the clock jumps to the next due time (min over the
   queue head and every process), and each process gets
   ``advance_to(now, queue)`` to convert whatever elapsed into events
   (e.g. task completions release capacity *here* and enqueue their
   follow-up ``COMPLETION`` events);
2. **drain** — every event with ``time <= now`` pops in
   ``(time, class, seq)`` order and runs its handler; handlers may push
   more same-instant events (a crash pushing a ``REPLAN``) and the
   drain picks them up in order;
3. return — the caller (e.g. the online executor's dispatch loop) acts
   on the settled instant.

The kernel is deliberately policy-free: it never inspects payloads and
has no notion of jobs, tasks, shards or faults.  Layers own their
semantics; the kernel owns *when* and *in what order*.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Protocol

from ..errors import ConfigError, EnvironmentStateError
from .clock import SimClock
from .events import Event, EventClass, describe
from .queue import EventQueue

__all__ = ["SimKernel", "SimProcess"]


class SimProcess(Protocol):
    """An event source the kernel polls for its next due time."""

    def next_event_time(self) -> Optional[int]:
        """Time of this process's next occurrence, or ``None`` if idle."""

    def advance_to(self, now: int, queue: EventQueue) -> None:
        """Catch up to ``now``, enqueueing any occurrences that fired."""


class SimKernel:
    """Deterministic event loop over one clock and one queue.

    Args:
        start: initial clock time (see :class:`SimClock`).
    """

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self._handlers: Dict[str, Callable[[Event], None]] = {}
        self._processes: List[SimProcess] = []

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def register(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Bind ``handler`` to events of ``kind``.

        Raises:
            ConfigError: if the kind is already bound (silent override
                would make event routing order-dependent).
        """
        if kind in self._handlers:
            raise ConfigError(f"event kind {kind!r} already has a handler")
        self._handlers[kind] = handler

    def add_process(self, process: SimProcess) -> None:
        """Attach an event source polled at every tick."""
        self._processes.append(process)

    def schedule(
        self,
        time: int,
        klass: EventClass,
        kind: Optional[str] = None,
        payload: Any = None,
    ) -> Event:
        """Enqueue an event (past times fire at the current instant)."""
        return self.queue.push(time, klass, kind=kind, payload=payload)

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> int:
        """Current simulation time."""
        return self.clock.now

    def next_event_time(self) -> Optional[int]:
        """Earliest due time over the queue and every process.

        A backlog event (scheduled at or before ``now``) reports ``now``:
        it is due immediately, not in the past.
        """
        times = []
        queued = self.queue.peek_time()
        if queued is not None:
            times.append(queued)
        for process in self._processes:
            when = process.next_event_time()
            if when is not None:
                times.append(when)
        if not times:
            return None
        return max(self.clock.now, min(times))

    def drain_due(self) -> int:
        """Run every due event (``time <= now``) in total order.

        Handlers enqueued by handlers are drained too, so the instant is
        fully settled on return.  Returns the number of events run.
        """
        ran = 0
        now = self.clock.now
        while True:
            event = self.queue.pop_due(now)
            if event is None:
                return ran
            handler = self._handlers.get(event.kind)
            if handler is None:
                raise EnvironmentStateError(
                    f"no handler registered for {describe(event)}"
                )
            handler(event)
            ran += 1

    def tick_to(self, time: int) -> int:
        """Advance to ``time``, let processes catch up, drain the instant.

        Returns the number of events run.  ``time`` normally comes from
        :meth:`next_event_time`; passing a later time is allowed (the
        intervening occurrences all fire, in order, at their own
        timestamps' priority — but within this single drain).
        """
        now = self.clock.advance_to(time)
        queue = self.queue
        for process in self._processes:
            process.advance_to(now, queue)
        return self.drain_due()

    def tick(self) -> Optional[int]:
        """One full step: advance to the next due instant and settle it.

        Returns the new ``now``, or ``None`` when nothing is pending
        anywhere (the simulation is over or stuck — callers decide
        which).
        """
        target = self.next_event_time()
        if target is None:
            return None
        self.tick_to(target)
        return self.clock.now
