"""Typed event records and the documented priority classes.

Every occurrence the kernel processes is one :class:`Event`: a time, a
priority class, a push-order sequence number, a handler-dispatch
``kind`` string, and an opaque payload.  The total order over events is
``(time, priority_class, seq)``.

Priority classes (the tie-break table at equal times):

=============== ===== ==========================================================
class           value rationale
=============== ===== ==========================================================
``CRASH``       0     capacity loss lands before anything reacts to the instant
``RECOVERY``    1     restored capacity is visible to same-time bookkeeping
``COMPLETION``  2     completion *follow-ups* (DAG unlocks, outcome records);
                      the capacity itself is released when the clock advances
``RETRY_READY`` 3     a backed-off attempt re-enters the ready set
``ARRIVAL``     4     admission reads the fully settled cluster instant
``ROUTE``       5     federation placement runs after every same-instant
                      arrival has been offered, so routing sees them all
``STEAL``       6     cross-shard rebalancing reads post-placement loads
``REPLAN``      7     replanning sees everything that happened at this time
=============== ===== ==========================================================

Note the ``COMPLETION`` caveat: resource *release* is not an event — it
happens during time advance (a task occupies its slots up to and not
including its finish instant), so a same-time crash computes victims
against post-release occupancy.  Only the follow-up work of a
completion is an event in this table.  One deliberate exception rides
on top: the fault timeline preserves its own documented intra-tie order
(recoveries before crashes at the same instant, so capacity never
transiently over-subscribes) — see
:class:`repro.faults.injector.TimelineCursor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Optional, Tuple

__all__ = ["Event", "EventClass"]


class EventClass(IntEnum):
    """Tie-break priority at equal event times; lower fires first."""

    CRASH = 0
    RECOVERY = 1
    COMPLETION = 2
    RETRY_READY = 3
    ARRIVAL = 4
    ROUTE = 5
    STEAL = 6
    REPLAN = 7


@dataclass
class Event:
    """One scheduled occurrence.

    Attributes:
        time: slot index the event is due at.
        klass: tie-break class at equal times.
        seq: queue-assigned push counter — the final tie-break, and the
            proof that insertion order is stable.
        kind: handler-registry key (e.g. ``"arrival"``, ``"crash"``);
            defaults to the class name lowercased.
        payload: opaque handler argument.
        cancelled: a cancelled event stays in the heap but is skipped at
            pop time (tombstone deletion).
    """

    time: int
    klass: EventClass
    seq: int
    kind: str
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    @property
    def key(self) -> Tuple[int, int, int]:
        """The total-order key ``(time, priority_class, seq)``."""
        return (self.time, int(self.klass), self.seq)


def default_kind(klass: EventClass) -> str:
    """The handler key an :class:`Event` gets when none is given."""
    return klass.name.lower()


def describe(event: Optional[Event]) -> str:
    """Compact human-readable form for logs and assertion messages."""
    if event is None:
        return "<no event>"
    flag = " cancelled" if event.cancelled else ""
    return (
        f"<{event.kind}@{event.time} class={event.klass.name} "
        f"seq={event.seq}{flag}>"
    )


__all__ += ["default_kind", "describe"]
