"""The stable-ordered event queue.

A binary min-heap over ``(time, priority_class, seq)`` — the one
sanctioned ``heapq`` event structure in the library (REP107 fences off
ad-hoc copies).  ``seq`` is a push counter, so equal ``(time, class)``
events pop in insertion order and the queue is totally ordered with no
reliance on payload comparability.

Cancellation is by tombstone: :meth:`cancel` marks the event and the
heap skips it at pop time, keeping cancellation O(1) instead of an
O(n) heap rebuild.
"""

from __future__ import annotations

import heapq  # repro: noqa[REP107] -- this IS the sanctioned event heap
from typing import Any, List, Optional, Tuple

from ..errors import EnvironmentStateError
from .events import Event, EventClass, default_kind

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of :class:`Event` records keyed ``(time, class, seq)``."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple[int, int, int], Event]] = []
        self._seq = 0
        self._live = 0

    def push(
        self,
        time: int,
        klass: EventClass,
        kind: Optional[str] = None,
        payload: Any = None,
    ) -> Event:
        """Schedule an event; returns the record (keep it to cancel).

        Raises:
            EnvironmentStateError: on a negative time.
        """
        if time < 0:
            raise EnvironmentStateError(f"cannot schedule event at {time} < 0")
        self._seq += 1
        event = Event(
            time=int(time),
            klass=klass,
            seq=self._seq,
            kind=kind if kind is not None else default_kind(klass),
            payload=payload,
        )
        heapq.heappush(self._heap, (event.key, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Tombstone ``event``; a second cancel is a no-op."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Due time of the next live event, or ``None`` when empty."""
        self._drop_tombstones()
        return self._heap[0][1].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event in total order.

        Raises:
            EnvironmentStateError: when the queue is empty.
        """
        self._drop_tombstones()
        if not self._heap:
            raise EnvironmentStateError("pop from an empty event queue")
        _, event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def pop_due(self, now: int) -> Optional[Event]:
        """Pop the next live event with ``time <= now``, else ``None``."""
        self._drop_tombstones()
        if self._heap and self._heap[0][1].time <= now:
            _, event = heapq.heappop(self._heap)
            self._live -= 1
            return event
        return None

    def _drop_tombstones(self) -> None:
        heap = self._heap
        while heap and heap[0][1].cancelled:
            heapq.heappop(heap)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def __repr__(self) -> str:
        head = self.peek_time()
        return f"EventQueue(live={self._live}, next={head})"
