"""Deterministic discrete-event simulation kernel.

``repro.sim`` is the single source of time-advance truth for streaming
simulations: an integer :class:`SimClock`, a stable-ordered
:class:`EventQueue` (a binary heap keyed by ``(time, priority_class,
seq)``), typed :class:`Event` records, and a :class:`SimKernel` that
drives registered handlers and :class:`SimProcess` event sources
(e.g. the cluster adapter that turns task completions into kernel
events).

Determinism contract: two events never race.  At equal times the
documented priority classes order them (crash < recovery < completion <
retry-ready < arrival < route < steal < replan — see
:class:`EventClass`), and within
one ``(time, class)`` bucket the monotonically increasing push sequence
number breaks the tie, so a run's realized event order is a pure
function of what was scheduled.  The online executor
(:mod:`repro.online`), the fault layer and dynamic rescheduling are all
layered on this kernel; ad-hoc ``heapq`` event loops outside it are
lint-rejected (REP107).
"""

from .clock import SimClock
from .events import Event, EventClass
from .kernel import SimKernel, SimProcess
from .queue import EventQueue

__all__ = [
    "Event",
    "EventClass",
    "EventQueue",
    "SimClock",
    "SimKernel",
    "SimProcess",
]
