"""Schedules, validity invariants and cross-scheduler comparison metrics."""

from .schedule import ScheduledTask, Schedule, validate_schedule
from .comparison import (
    ComparisonRow,
    compare_makespans,
    win_rate,
    reduction,
    reduction_series,
)
from .cdf import empirical_cdf, percentile
from .export import (
    schedule_to_dict,
    schedule_from_dict,
    save_schedule,
    load_schedule,
    to_chrome_trace,
)
from .stats import bootstrap_ci, paired_permutation_test

__all__ = [
    "ScheduledTask",
    "Schedule",
    "validate_schedule",
    "ComparisonRow",
    "compare_makespans",
    "win_rate",
    "reduction",
    "reduction_series",
    "empirical_cdf",
    "percentile",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "to_chrome_trace",
    "bootstrap_ci",
    "paired_permutation_test",
]
