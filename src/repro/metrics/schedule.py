"""Schedule records and feasibility validation.

A :class:`Schedule` is the output of every scheduler in the library: for
each task, the slot at which it started.  :func:`validate_schedule` checks
the three invariants any feasible schedule must satisfy:

1. **Completeness** — every task in the graph is scheduled exactly once.
2. **Dependencies** — no task starts before all of its parents finished.
3. **Capacity** — at every time slot, the summed demands of concurrently
   running tasks fit within cluster capacity in every dimension.

Property-based tests drive random schedulers through the environment and
assert these invariants on everything they emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dag.graph import TaskGraph
from ..errors import ScheduleError

__all__ = ["ScheduledTask", "Schedule", "validate_schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement: ``[start, finish)`` in time slots."""

    task_id: int
    start: int
    finish: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ScheduleError(f"task {self.task_id}: negative start")
        if self.finish <= self.start:
            raise ScheduleError(
                f"task {self.task_id}: finish {self.finish} <= start {self.start}"
            )

    @property
    def duration(self) -> int:
        """Occupied slots."""
        return self.finish - self.start


@dataclass(frozen=True)
class Schedule:
    """A complete schedule for one job.

    Attributes:
        placements: one :class:`ScheduledTask` per task.
        scheduler: name of the scheduler that produced it.
        wall_time: seconds the scheduler spent deciding (not simulated time).
    """

    placements: Tuple[ScheduledTask, ...]
    scheduler: str = "unknown"
    wall_time: float = 0.0

    @staticmethod
    def from_starts(
        starts: Dict[int, int],
        graph: TaskGraph,
        scheduler: str = "unknown",
        wall_time: float = 0.0,
    ) -> "Schedule":
        """Build a schedule from a ``task_id -> start_slot`` mapping, taking
        durations from the graph."""
        placements = tuple(
            ScheduledTask(tid, start, start + graph.task(tid).runtime)
            for tid, start in sorted(starts.items())
        )
        return Schedule(placements, scheduler=scheduler, wall_time=wall_time)

    @property
    def makespan(self) -> int:
        """Finish time of the last task (0 for an empty schedule)."""
        return max((p.finish for p in self.placements), default=0)

    @property
    def num_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.placements)

    def start_of(self, task_id: int) -> int:
        """Start slot of ``task_id``.

        Raises:
            ScheduleError: if the task is not in the schedule.
        """
        for placement in self.placements:
            if placement.task_id == task_id:
                return placement.start
        raise ScheduleError(f"task {task_id} not in schedule")

    def as_dict(self) -> Dict[int, Tuple[int, int]]:
        """Mapping ``task_id -> (start, finish)``."""
        return {p.task_id: (p.start, p.finish) for p in self.placements}

    def tasks_running_at(self, t: int, graph: TaskGraph) -> List[int]:
        """Ids of tasks occupying the cluster during slot ``t``."""
        return [p.task_id for p in self.placements if p.start <= t < p.finish]


def validate_schedule(
    schedule: Schedule,
    graph: TaskGraph,
    capacities: Sequence[int],
) -> None:
    """Check the three feasibility invariants; raise on violation.

    Raises:
        ScheduleError: naming the violated invariant, the offending task(s)
            and the time slot involved.
    """

    placed = {p.task_id for p in schedule.placements}
    expected = set(graph.task_ids)
    if placed != expected:
        missing = sorted(expected - placed)
        extra = sorted(placed - expected)
        raise ScheduleError(
            f"completeness violated: missing={missing[:5]} extra={extra[:5]}"
        )
    if len(schedule.placements) != len(placed):
        raise ScheduleError("a task appears more than once in the schedule")

    by_id = {p.task_id: p for p in schedule.placements}

    # Durations must match the graph.
    for placement in schedule.placements:
        runtime = graph.task(placement.task_id).runtime
        if placement.duration != runtime:
            raise ScheduleError(
                f"task {placement.task_id}: schedule duration "
                f"{placement.duration} != task runtime {runtime}"
            )

    # Dependencies.
    for up, down in graph.edges():
        if by_id[down].start < by_id[up].finish:
            raise ScheduleError(
                f"dependency violated: task {down} starts at "
                f"{by_id[down].start} before parent {up} finishes at "
                f"{by_id[up].finish}"
            )

    # Capacity: sweep start/finish events.
    if len(capacities) != graph.num_resources:
        raise ScheduleError(
            f"capacities have {len(capacities)} dims, graph has "
            f"{graph.num_resources}"
        )
    events: List[Tuple[int, int, Tuple[int, ...]]] = []
    for placement in schedule.placements:
        demands = graph.task(placement.task_id).demands
        events.append((placement.start, 1, demands))
        events.append((placement.finish, -1, demands))
    events.sort(key=lambda e: (e[0], e[1]))  # releases before grabs at same t
    usage = [0] * len(capacities)
    for t, kind, demands in events:
        for r, demand in enumerate(demands):
            usage[r] += kind * demand
            if usage[r] > capacities[r]:
                raise ScheduleError(
                    f"capacity violated: resource {r} usage {usage[r]} > "
                    f"{capacities[r]} at t={t}"
                )
