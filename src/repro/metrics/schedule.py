"""Schedule records and feasibility validation.

A :class:`Schedule` is the output of every scheduler in the library: for
each task, the slot at which it started.  :func:`validate_schedule` checks
the invariants any feasible schedule must satisfy:

1. **Completeness** — every task in the graph is scheduled exactly once.
2. **Dependencies** — no task starts before all of its parents finished.
3. **Capacity** — at every time slot, the summed demands of concurrently
   running tasks fit within cluster capacity in every dimension.

The checks themselves live in :mod:`repro.analysis.verifier`, which
returns structured :class:`repro.analysis.Violation` records;
:func:`validate_schedule` is the raising facade.  Property-based tests
drive random schedulers through the environment and assert these
invariants on everything they emit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dag.graph import TaskGraph
from ..errors import ScheduleError

__all__ = ["ScheduledTask", "Schedule", "validate_schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    """One task's placement: ``[start, finish)`` in time slots."""

    task_id: int
    start: int
    finish: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ScheduleError(f"task {self.task_id}: negative start")
        if self.finish <= self.start:
            raise ScheduleError(
                f"task {self.task_id}: finish {self.finish} <= start {self.start}"
            )

    @property
    def duration(self) -> int:
        """Occupied slots."""
        return self.finish - self.start


@dataclass(frozen=True)
class Schedule:
    """A complete schedule for one job.

    Attributes:
        placements: one :class:`ScheduledTask` per task.
        scheduler: name of the scheduler that produced it.
        wall_time: seconds the scheduler spent deciding (not simulated time).
    """

    placements: Tuple[ScheduledTask, ...]
    scheduler: str = "unknown"
    wall_time: float = 0.0

    @staticmethod
    def from_starts(
        starts: Dict[int, int],
        graph: TaskGraph,
        scheduler: str = "unknown",
        wall_time: float = 0.0,
    ) -> "Schedule":
        """Build a schedule from a ``task_id -> start_slot`` mapping, taking
        durations from the graph."""
        placements = tuple(
            ScheduledTask(tid, start, start + graph.task(tid).runtime)
            for tid, start in sorted(starts.items())
        )
        return Schedule(placements, scheduler=scheduler, wall_time=wall_time)

    @property
    def makespan(self) -> int:
        """Finish time of the last task (0 for an empty schedule)."""
        return max((p.finish for p in self.placements), default=0)

    @property
    def num_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.placements)

    def start_of(self, task_id: int) -> int:
        """Start slot of ``task_id``.

        Raises:
            ScheduleError: if the task is not in the schedule.
        """
        for placement in self.placements:
            if placement.task_id == task_id:
                return placement.start
        raise ScheduleError(f"task {task_id} not in schedule")

    def as_dict(self) -> Dict[int, Tuple[int, int]]:
        """Mapping ``task_id -> (start, finish)``."""
        return {p.task_id: (p.start, p.finish) for p in self.placements}

    def tasks_running_at(self, t: int, graph: TaskGraph) -> List[int]:
        """Ids of tasks occupying the cluster during slot ``t``."""
        return [p.task_id for p in self.placements if p.start <= t < p.finish]


def validate_schedule(
    schedule: Schedule,
    graph: TaskGraph,
    capacities: Sequence[int],
) -> None:
    """Check every feasibility invariant; raise on the first violation.

    This is the raising facade over :mod:`repro.analysis.verifier`, which
    collects *all* violations as structured records; use the verifier
    directly when you want the full report instead of an exception.

    Raises:
        ScheduleError: naming the violated invariant, the offending task(s)
            and the time slot involved.
    """

    from ..analysis.verifier import verify_schedule  # local: avoids a cycle

    verify_schedule(schedule, graph, capacities).raise_if_violations()
