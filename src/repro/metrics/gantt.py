"""ASCII Gantt rendering of schedules.

Turns a :class:`Schedule` into a per-task timeline plus a per-resource
utilization strip — handy for eyeballing why one scheduler beats another
(the examples use it to show the Fig. 3 story visually).
"""

from __future__ import annotations

from typing import List, Sequence

from ..dag.graph import TaskGraph
from .schedule import Schedule

__all__ = ["render_gantt", "render_utilization"]


def render_gantt(
    schedule: Schedule,
    graph: TaskGraph,
    width: int = 60,
    char: str = "#",
) -> str:
    """Render one row per task: ``name |  ###   |`` over the makespan.

    Args:
        schedule: the schedule to draw.
        graph: its job (for names/durations).
        width: maximum number of columns for the time axis; longer
            makespans are scaled down proportionally.
        char: fill character for running intervals.
    """

    makespan = max(schedule.makespan, 1)
    scale = min(1.0, width / makespan)
    label_width = max(len(graph.task(p.task_id).label()) for p in schedule.placements)
    lines: List[str] = []
    axis_len = max(1, round(makespan * scale))
    for placement in sorted(schedule.placements, key=lambda p: (p.start, p.task_id)):
        start = round(placement.start * scale)
        end = max(start + 1, round(placement.finish * scale))
        bar = " " * start + char * (end - start)
        bar = bar.ljust(axis_len)
        label = graph.task(placement.task_id).label().ljust(label_width)
        lines.append(f"{label} |{bar}| {placement.start}..{placement.finish}")
    footer = f"{'makespan'.ljust(label_width)} |{'-' * axis_len}| {schedule.makespan}"
    lines.append(footer)
    return "\n".join(lines)


def render_utilization(
    schedule: Schedule,
    graph: TaskGraph,
    capacities: Sequence[int],
    width: int = 60,
) -> str:
    """Render per-resource utilization over time as digit strips (0-9).

    Each column shows the decile of utilization of that resource during
    the corresponding time slice.
    """

    makespan = max(schedule.makespan, 1)
    columns = min(width, makespan)
    lines: List[str] = []
    for r, capacity in enumerate(capacities):
        strip = []
        for col in range(columns):
            # Sample utilization at the slot at the center of the column.
            t = int(col * makespan / columns)
            used = sum(
                graph.task(p.task_id).demands[r]
                for p in schedule.placements
                if p.start <= t < p.finish
            )
            decile = min(9, (10 * used) // max(capacity, 1))
            strip.append(str(decile))
        lines.append(f"resource {r} |{''.join(strip)}|")
    return "\n".join(lines)
