"""Cross-scheduler comparison metrics.

These implement the quantities the paper reports:

* average makespans per algorithm (Fig. 6(a), Fig. 8(a));
* win rate of one algorithm over another (Fig. 7(b): "% of jobs where MCTS
  surpasses Tetris");
* per-job *reduction in job duration*
  ``(makespan_baseline - makespan_ours) / makespan_baseline`` (Fig. 9(c)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

__all__ = [
    "ComparisonRow",
    "compare_makespans",
    "win_rate",
    "reduction",
    "reduction_series",
]


@dataclass(frozen=True)
class ComparisonRow:
    """Aggregate makespan statistics for one scheduler over a workload."""

    scheduler: str
    mean: float
    median: float
    best: int
    worst: int
    num_jobs: int


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def compare_makespans(
    makespans: Mapping[str, Sequence[int]],
) -> List[ComparisonRow]:
    """Summarize per-scheduler makespans over a common set of jobs.

    Args:
        makespans: mapping ``scheduler name -> makespan per job``; all value
            sequences must be non-empty and equally long (same jobs).

    Returns:
        One :class:`ComparisonRow` per scheduler, sorted by mean makespan
        (best first).
    """

    lengths = {len(v) for v in makespans.values()}
    if not makespans:
        raise ValueError("no schedulers to compare")
    if len(lengths) != 1 or 0 in lengths:
        raise ValueError(f"inconsistent or empty makespan series: {lengths}")
    rows = [
        ComparisonRow(
            scheduler=name,
            mean=sum(values) / len(values),
            median=_median(values),
            best=min(values),
            worst=max(values),
            num_jobs=len(values),
        )
        for name, values in makespans.items()
    ]
    return sorted(rows, key=lambda row: row.mean)


def win_rate(
    ours: Sequence[int],
    baseline: Sequence[int],
    *,
    strict: bool = True,
) -> float:
    """Fraction of jobs where ``ours`` beats ``baseline``.

    Args:
        ours / baseline: per-job makespans over the same job list.
        strict: with ``True`` count strictly smaller makespans; with
            ``False`` count ties as wins ("no worse than").
    """

    if len(ours) != len(baseline) or not ours:
        raise ValueError("series must be non-empty and equally long")
    if strict:
        wins = sum(1 for a, b in zip(ours, baseline) if a < b)
    else:
        wins = sum(1 for a, b in zip(ours, baseline) if a <= b)
    return wins / len(ours)


def reduction(ours: int, baseline: int) -> float:
    """Relative makespan reduction ``(baseline - ours) / baseline``.

    Positive values mean ``ours`` is faster; this is the Fig. 9(c) metric.
    """

    if baseline <= 0:
        raise ValueError("baseline makespan must be positive")
    return (baseline - ours) / baseline


def reduction_series(
    ours: Sequence[int], baseline: Sequence[int]
) -> List[float]:
    """Per-job :func:`reduction` over aligned makespan series."""

    if len(ours) != len(baseline):
        raise ValueError("series must be equally long")
    return [reduction(a, b) for a, b in zip(ours, baseline)]
