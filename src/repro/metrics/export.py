"""Schedule serialization for external tooling.

``schedule_to_dict`` / ``schedule_from_dict`` round-trip a
:class:`Schedule` through plain JSON, so schedules can be archived,
diffed, or fed to external Gantt/trace viewers (the format is one record
per task with explicit start/finish — trivially convertible to Chrome
``about:tracing`` or Perfetto JSON).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ScheduleError
from .schedule import Schedule, ScheduledTask

__all__ = [
    "schedule_to_dict",
    "schedule_from_dict",
    "save_schedule",
    "load_schedule",
    "to_chrome_trace",
]

_SCHEMA_VERSION = 1


def schedule_to_dict(schedule: Schedule) -> Dict[str, Any]:
    """JSON-compatible representation of ``schedule``."""

    return {
        "version": _SCHEMA_VERSION,
        "scheduler": schedule.scheduler,
        "wall_time": schedule.wall_time,
        "makespan": schedule.makespan,
        "placements": [
            {"task_id": p.task_id, "start": p.start, "finish": p.finish}
            for p in schedule.placements
        ],
    }


def schedule_from_dict(payload: Dict[str, Any]) -> Schedule:
    """Inverse of :func:`schedule_to_dict`.

    Raises:
        ScheduleError: on malformed payloads, wrong versions, or a stored
            makespan inconsistent with the placements.
    """

    if not isinstance(payload, dict):
        raise ScheduleError("schedule payload must be a dict")
    if payload.get("version") != _SCHEMA_VERSION:
        raise ScheduleError(
            f"unsupported schedule schema version {payload.get('version')!r}"
        )
    try:
        placements = tuple(
            ScheduledTask(
                task_id=int(entry["task_id"]),
                start=int(entry["start"]),
                finish=int(entry["finish"]),
            )
            for entry in payload["placements"]
        )
        schedule = Schedule(
            placements,
            scheduler=str(payload.get("scheduler", "unknown")),
            wall_time=float(payload.get("wall_time", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScheduleError(f"malformed schedule payload: {exc}") from exc
    stored = payload.get("makespan")
    if stored is not None and int(stored) != schedule.makespan:
        raise ScheduleError(
            f"stored makespan {stored} != computed {schedule.makespan}"
        )
    return schedule


def save_schedule(schedule: Schedule, path: Union[str, Path]) -> None:
    """Write ``schedule`` to ``path`` as JSON."""

    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: Union[str, Path]) -> Schedule:
    """Load a schedule previously written by :func:`save_schedule`."""

    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid JSON in {path}: {exc}") from exc
    return schedule_from_dict(payload)


def to_chrome_trace(
    schedule: Schedule,
    graph=None,
    slot_microseconds: int = 1000,
) -> Dict[str, Any]:
    """Convert a schedule to Chrome ``about:tracing`` / Perfetto JSON.

    Each task becomes one complete ("X") event; concurrent tasks are
    spread over thread ids by a simple interval-graph coloring so lanes
    never overlap in the viewer.

    Args:
        schedule: the schedule to convert.
        graph: optional :class:`repro.dag.TaskGraph` supplying task names
            and demand annotations.
        slot_microseconds: visual scale (1 slot -> N microseconds).

    Returns:
        A dict with a ``traceEvents`` list, JSON-serializable as-is.
    """

    # Greedy interval coloring: assign the lowest free lane at each start.
    ordered = sorted(schedule.placements, key=lambda p: (p.start, p.task_id))
    lane_free_at: list[int] = []
    events = []
    for placement in ordered:
        lane = None
        for i, free_at in enumerate(lane_free_at):
            if free_at <= placement.start:
                lane = i
                break
        if lane is None:
            lane = len(lane_free_at)
            lane_free_at.append(0)
        lane_free_at[lane] = placement.finish

        name = f"task-{placement.task_id}"
        args: Dict[str, Any] = {"task_id": placement.task_id}
        if graph is not None:
            task = graph.task(placement.task_id)
            name = task.label()
            args["demands"] = list(task.demands)
            args["runtime_slots"] = task.runtime
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": placement.start * slot_microseconds,
                "dur": placement.duration * slot_microseconds,
                "pid": 1,
                "tid": lane + 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scheduler": schedule.scheduler,
            "makespan_slots": schedule.makespan,
        },
    }
