"""Statistical helpers for scheduler comparisons.

Single-number means hide variance; these give the comparison machinery
confidence statements:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for the
  mean of a makespan series.
* :func:`paired_permutation_test` — exact-or-sampled permutation p-value
  for a paired difference in means (stronger than the sign test when
  magnitudes matter).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..utils.rng import SeedLike, as_generator

__all__ = ["bootstrap_ci", "paired_permutation_test"]


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``values``.

    Args:
        values: the sample (non-empty).
        confidence: central coverage, in (0, 1).
        resamples: bootstrap iterations.
        seed: RNG for resampling.

    Returns:
        ``(low, high)`` bounds on the mean.
    """

    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    if resamples < 1:
        raise ValueError("resamples must be >= 1")
    rng = as_generator(seed)
    data = np.asarray(values, dtype=np.float64)
    indices = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def paired_permutation_test(
    ours: Sequence[float],
    baseline: Sequence[float],
    resamples: int = 5000,
    seed: SeedLike = None,
) -> float:
    """Two-sided paired permutation p-value for mean(ours) != mean(baseline).

    Signs of the per-pair differences are flipped uniformly at random;
    the p-value is the fraction of sign assignments whose |mean difference|
    reaches the observed one.  All-zero differences give p = 1.0.
    """

    if len(ours) != len(baseline) or not ours:
        raise ValueError("series must be non-empty and equally long")
    rng = as_generator(seed)
    diffs = np.asarray(ours, dtype=np.float64) - np.asarray(
        baseline, dtype=np.float64
    )
    observed = abs(diffs.mean())
    if observed == 0.0:
        return 1.0
    signs = rng.choice([-1.0, 1.0], size=(resamples, len(diffs)))
    permuted = np.abs((signs * diffs).mean(axis=1))
    # Add-one smoothing keeps the estimate conservative and never zero.
    hits = int(np.count_nonzero(permuted >= observed - 1e-12))
    return (hits + 1) / (resamples + 1)
