"""Empirical CDF helpers for the figure-style reports.

Fig. 6(a)/(b), Fig. 9(a)/(b)/(c) are all CDF plots; the harness reproduces
them as tables of (value, cumulative fraction) pairs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["empirical_cdf", "percentile"]


def empirical_cdf(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Return the empirical CDF of ``values`` as ``(value, F(value))`` pairs.

    Duplicate values are collapsed to a single step at the highest
    cumulative fraction, so the result is strictly increasing in both
    coordinates and directly plottable.
    """

    if not values:
        raise ValueError("cannot build a CDF from no values")
    ordered = sorted(values)
    n = len(ordered)
    points: List[Tuple[float, float]] = []
    for i, value in enumerate(ordered, start=1):
        fraction = i / n
        if points and points[-1][0] == value:
            points[-1] = (value, fraction)
        else:
            points.append((float(value), fraction))
    return points


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile ``q`` in [0, 100] of ``values``."""

    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(values)
    if q == 0.0:
        return float(ordered[0])
    import math

    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])
