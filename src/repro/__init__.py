"""repro — a full reproduction of *Spear: Optimized Dependency-Aware Task
Scheduling with Deep Reinforcement Learning* (Hu, Tu, Li — ICDCS 2019).

Public API quick reference
--------------------------

Workloads:
    :func:`repro.dag.random_layered_dag`, :func:`repro.dag.mapreduce_dag`,
    :func:`repro.dag.motivating_example`, :mod:`repro.traces`

Schedulers:
    baselines — ``make_scheduler("tetris" | "sjf" | "cp" | "graphene" |
    "optimal" | "random")``;
    search — :class:`repro.mcts.MctsScheduler`;
    Spear — :func:`repro.core.train_spear_network` +
    :class:`repro.core.SpearScheduler`.

Evaluation:
    :func:`repro.metrics.validate_schedule`,
    :func:`repro.metrics.compare_makespans`, :mod:`repro.experiments`.

See README.md for a guided tour and DESIGN.md for the paper-to-module map.
"""

from .config import (
    ClusterConfig,
    EnvConfig,
    GrapheneConfig,
    MctsConfig,
    NetworkConfig,
    TrainingConfig,
    WorkloadConfig,
)
from .dag import Task, TaskGraph, random_layered_dag, mapreduce_dag, motivating_example
from .env import PROCESS, SchedulingEnv
from .metrics import Schedule, validate_schedule, compare_makespans
from .schedulers import (
    GrapheneScheduler,
    Scheduler,
    ScheduleRequest,
    TetrisPolicy,
    available_schedulers,
    make_scheduler,
)
from .mcts import MctsScheduler
from .core import SpearScheduler, build_spear, train_spear_network
from .rl import PolicyNetwork, load_checkpoint, save_checkpoint

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "EnvConfig",
    "GrapheneConfig",
    "MctsConfig",
    "NetworkConfig",
    "TrainingConfig",
    "WorkloadConfig",
    "Task",
    "TaskGraph",
    "random_layered_dag",
    "mapreduce_dag",
    "motivating_example",
    "PROCESS",
    "SchedulingEnv",
    "Schedule",
    "validate_schedule",
    "compare_makespans",
    "GrapheneScheduler",
    "Scheduler",
    "ScheduleRequest",
    "TetrisPolicy",
    "available_schedulers",
    "make_scheduler",
    "MctsScheduler",
    "SpearScheduler",
    "build_spear",
    "train_spear_network",
    "PolicyNetwork",
    "load_checkpoint",
    "save_checkpoint",
    "__version__",
]
