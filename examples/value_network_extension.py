#!/usr/bin/env python3
"""The AlphaZero-style value-network extension.

Spear rolls every MCTS simulation to termination; AlphaZero replaces deep
rollouts with a learned value estimate.  This example trains a small value
network on heuristic rollouts, then runs MCTS with *truncated* rollouts
(play 5 policy steps, score the rest with the value net) and compares
against full rollouts at the same budget.

Run (takes ~1 minute):
    python examples/value_network_extension.py
"""

from repro import EnvConfig, MctsConfig, ScheduleRequest, WorkloadConfig, random_layered_dag
from repro.core import NetworkExpansion, TruncatedRollout, build_spear, train_spear_network
from repro.config import TrainingConfig
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.rl import train_value_network
from repro.schedulers import SjfPolicy
from repro.utils.rng import as_generator, spawn


def main() -> None:
    env_config = EnvConfig(process_until_completion=True)

    print("training the policy network (demonstration scale)...")
    policy_net, _ = train_spear_network(
        env_config=env_config,
        training=TrainingConfig(
            num_examples=8,
            example_num_tasks=12,
            rollouts_per_example=5,
            epochs=8,
            supervised_epochs=25,
            batch_size=4,
        ),
        seed=0,
    )

    print("training the value network on heuristic rollouts...")
    rng = as_generator(1)
    value_graphs = [
        random_layered_dag(WorkloadConfig(num_tasks=20), seed=child)
        for child in spawn(rng, 6)
    ]
    value_net = train_value_network(
        value_graphs, SjfPolicy, env_config, episodes_per_graph=1, epochs=40, seed=0
    )
    print(f"  value network: {value_net.num_parameters()} parameters")

    eval_graphs = [
        random_layered_dag(WorkloadConfig(num_tasks=25), seed=900 + i)
        for i in range(3)
    ]
    config = MctsConfig(initial_budget=30, min_budget=10)

    full = build_spear(policy_net, config, env_config, seed=2)
    truncated = MctsScheduler(
        config,
        env_config,
        expansion=NetworkExpansion(policy_net),
        rollout=TruncatedRollout(policy_net, value_net, depth_limit=5, seed=2),
        seed=2,
        name="spear-truncated",
    )

    print("\nfull rollouts vs value-truncated rollouts (same budget):")
    capacities = env_config.cluster.capacities
    for i, graph in enumerate(eval_graphs):
        a = full.plan(ScheduleRequest(graph))
        b = truncated.plan(ScheduleRequest(graph))
        validate_schedule(a, graph, capacities)
        validate_schedule(b, graph, capacities)
        print(
            f"  dag {i}: full {a.makespan} ({a.wall_time:.2f}s) | "
            f"truncated {b.makespan} ({b.wall_time:.2f}s)"
        )
    print("\nTruncation trades estimator bias for rollout cost — ablate on "
          "your workload before adopting it.")


if __name__ == "__main__":
    main()
