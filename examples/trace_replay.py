#!/usr/bin/env python3
"""Replay the (synthetic) production Hive trace — the Sec. V-C experiment.

Generates the calibrated 99-job MapReduce trace, characterizes it
(Fig. 9(a)/(b) statistics), then replays a handful of jobs through Spear
and Graphene and reports the per-job reduction in job duration
(Fig. 9(c)'s metric).

Run (takes ~1 minute):
    python examples/trace_replay.py
"""

from repro import EnvConfig, MctsConfig, ScheduleRequest, make_scheduler, validate_schedule
from repro.core import build_spear, train_spear_network
from repro.config import TrainingConfig
from repro.metrics import reduction
from repro.traces import TraceConfig, generate_production_trace, trace_statistics


def main() -> None:
    # Compressed runtimes (scale 0.2) keep this demo quick; drop
    # runtime_scale for the paper's full second-granularity runtimes.
    trace = generate_production_trace(
        TraceConfig(num_jobs=30, runtime_scale=0.2), seed=7
    )
    stats = trace_statistics(trace)
    print(f"trace: {stats.num_jobs} MapReduce jobs")
    print(f"  map tasks    median {stats.median_map_count:.0f} "
          f"max {stats.max_map_count}")
    print(f"  reduce tasks median {stats.median_reduce_count:.0f} "
          f"max {stats.max_reduce_count}")
    print(f"  runtimes     median map {stats.median_map_runtime:.0f}, "
          f"median reduce {stats.median_reduce_runtime:.0f}")

    env_config = EnvConfig(process_until_completion=True)
    print("\ntraining a small guidance network...")
    network, _ = train_spear_network(
        env_config=env_config,
        training=TrainingConfig(
            num_examples=10,
            example_num_tasks=12,
            rollouts_per_example=6,
            epochs=10,
            supervised_epochs=30,
            batch_size=4,
        ),
        seed=0,
    )

    # Sec. V-C budget shape: small initial budget, half of it as the floor.
    spear = build_spear(
        network, MctsConfig(initial_budget=20, min_budget=10), env_config, seed=1
    )
    graphene = make_scheduler("graphene", env_config)
    capacities = env_config.cluster.capacities

    print("\nreplaying the first 8 jobs (Fig. 9(c) metric):")
    reductions = []
    for job in trace.jobs[:8]:
        ours = spear.plan(ScheduleRequest(job.graph))
        base = graphene.plan(ScheduleRequest(job.graph))
        validate_schedule(ours, job.graph, capacities)
        validate_schedule(base, job.graph, capacities)
        r = reduction(ours.makespan, base.makespan)
        reductions.append(r)
        print(f"  job {job.job_id:>3} ({job.num_map}m/{job.num_reduce}r): "
              f"spear {ours.makespan:>4} graphene {base.makespan:>4} "
              f"reduction {r:+.1%}")

    no_worse = sum(1 for r in reductions if r >= 0) / len(reductions)
    print(f"\nno worse than Graphene on {no_worse:.0%} of replayed jobs; "
          f"best reduction {max(reductions):+.1%}")


if __name__ == "__main__":
    main()
