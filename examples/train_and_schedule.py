#!/usr/bin/env python3
"""Train a Spear policy network, checkpoint it, and schedule with it.

This is the Sec. IV pipeline at demonstration scale:

1. generate a training set of random DAGs;
2. supervised pre-training on the critical-path heuristic;
3. REINFORCE with the rollout-average baseline;
4. checkpoint to .npz;
5. run Spear (network-guided MCTS) against Graphene on held-out DAGs.

Run (takes ~1 minute):
    python examples/train_and_schedule.py
"""

import tempfile
from pathlib import Path

from repro import (
    EnvConfig,
    MctsConfig,
    ScheduleRequest,
    TrainingConfig,
    WorkloadConfig,
    load_checkpoint,
    make_scheduler,
    random_layered_dag,
    save_checkpoint,
    train_spear_network,
    validate_schedule,
)
from repro.core import build_spear
from repro.metrics import win_rate


def main() -> None:
    env_config = EnvConfig(process_until_completion=True)

    # Demonstration-scale training (the paper uses 144 examples x 25 tasks
    # for 7000 epochs; see REPRO_PAPER_SCALE for the full configuration).
    training = TrainingConfig(
        num_examples=12,
        example_num_tasks=12,
        rollouts_per_example=6,
        epochs=15,
        supervised_epochs=30,
        batch_size=4,
    )
    print("training policy network (imitation -> REINFORCE)...")
    network, history = train_spear_network(
        env_config=env_config, training=training, seed=0, log_every=5
    )
    print(f"  epochs: {len(history)}, "
          f"mean makespan {history[0].mean_makespan:.1f} -> "
          f"{history[-1].mean_makespan:.1f}")

    # Round-trip through a checkpoint, as a deployment would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "spear.npz"
        save_checkpoint(network, path)
        network = load_checkpoint(path)
        print(f"  checkpoint round-tripped through {path.name}")

    # Held-out evaluation DAGs (bigger than the training examples — the
    # normalized features transfer, as in the paper).
    graphs = [
        random_layered_dag(WorkloadConfig(num_tasks=30), seed=100 + i)
        for i in range(4)
    ]
    spear = build_spear(
        network, MctsConfig(initial_budget=50, min_budget=10), env_config, seed=1
    )
    graphene = make_scheduler("graphene", env_config)

    spear_makespans, graphene_makespans = [], []
    capacities = env_config.cluster.capacities
    for i, graph in enumerate(graphs):
        ours = spear.plan(ScheduleRequest(graph))
        base = graphene.plan(ScheduleRequest(graph))
        validate_schedule(ours, graph, capacities)
        validate_schedule(base, graph, capacities)
        spear_makespans.append(ours.makespan)
        graphene_makespans.append(base.makespan)
        print(f"  dag {i}: spear {ours.makespan} vs graphene {base.makespan}")

    no_worse = win_rate(spear_makespans, graphene_makespans, strict=False)
    print(f"\nSpear no worse than Graphene on {no_worse:.0%} of held-out DAGs")


if __name__ == "__main__":
    main()
