#!/usr/bin/env python3
"""Quickstart: schedule one DAG with every bundled scheduler.

Builds a random 30-task job (two resources: CPU and memory), schedules it
with the heuristic baselines (Tetris, SJF, CP, Graphene) and with pure
MCTS, validates every schedule against the dependency and capacity
invariants, and prints the comparison.

Run:
    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    EnvConfig,
    MctsConfig,
    ScheduleRequest,
    WorkloadConfig,
    make_scheduler,
    random_layered_dag,
    validate_schedule,
)
from repro.mcts import MctsScheduler
from repro.metrics import compare_makespans
from repro.metrics.gantt import render_utilization


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0

    # A random layered DAG following the paper's workload shape (Sec. V-A),
    # scaled down to 30 tasks for a quick run.
    workload = WorkloadConfig(num_tasks=30)
    graph = random_layered_dag(workload, seed=seed)
    print(f"job: {graph.num_tasks} tasks, {graph.num_edges} edges, "
          f"critical path {graph.critical_path_length()} slots")

    # The cluster: 20 CPU slots + 20 memory slots (paper defaults), with
    # event-skipping processing for fast simulation.
    env_config = EnvConfig(process_until_completion=True)
    capacities = env_config.cluster.capacities

    schedules = {}
    for name in ("tetris", "sjf", "cp", "graphene"):
        schedule = make_scheduler(name, env_config).plan(ScheduleRequest(graph))
        validate_schedule(schedule, graph, capacities)  # raises if infeasible
        schedules[name] = schedule

    # Pure MCTS (Sec. III-C): 100 iterations at the root, decaying with
    # depth down to a floor of 20 (Eq. 4).
    mcts = MctsScheduler(
        MctsConfig(initial_budget=100, min_budget=20), env_config, seed=seed
    )
    schedules["mcts"] = mcts.plan(ScheduleRequest(graph))
    validate_schedule(schedules["mcts"], graph, capacities)

    print()
    for row in compare_makespans({k: [v.makespan] for k, v in schedules.items()}):
        print(f"  {row.scheduler:<9} makespan {row.best:>5} slots")

    best = min(schedules, key=lambda k: schedules[k].makespan)
    print(f"\nbest: {best} — cluster utilization over time (deciles 0-9):")
    print(render_utilization(schedules[best], graph, capacities))


if __name__ == "__main__":
    main()
