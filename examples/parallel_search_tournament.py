#!/usr/bin/env python3
"""Root-parallel MCTS and a full scheduler tournament.

Demonstrates two library extensions beyond the paper's headline pipeline:

* :class:`repro.mcts.RootParallelMcts` — the "MCTS can easily be
  parallelized" remark of Sec. V-B1, as best-of-k independent searches;
* :func:`repro.experiments.run_tournament` — a round-robin over every
  baseline with win rates and sign-test p-values against Graphene.

Run (takes ~1 minute):
    python examples/parallel_search_tournament.py
"""

from repro import EnvConfig, MctsConfig, ScheduleRequest, WorkloadConfig, random_layered_dag
from repro.experiments import run_tournament
from repro.mcts import MctsScheduler, RootParallelMcts
from repro.schedulers import make_scheduler
from repro.utils.rng import as_generator, spawn


def main() -> None:
    env_config = EnvConfig(process_until_completion=True)
    rng = as_generator(0)
    graphs = [
        random_layered_dag(WorkloadConfig(num_tasks=25), seed=child)
        for child in spawn(rng, 4)
    ]

    # --- root parallelization: 4 independent searches, keep the best ----
    single = MctsScheduler(
        MctsConfig(initial_budget=40, min_budget=10), env_config, seed=0
    )
    parallel = RootParallelMcts(
        MctsConfig(initial_budget=40, min_budget=10),
        env_config,
        workers=4,
        seed=0,
    )
    print("root parallelization (same per-worker budget):")
    for i, graph in enumerate(graphs):
        one = single.plan(ScheduleRequest(graph)).makespan
        best = parallel.plan(ScheduleRequest(graph)).makespan
        print(f"  dag {i}: single search {one}, best of 4 {best}")

    # --- tournament across every baseline ------------------------------
    schedulers = {
        name: make_scheduler(name, env_config)
        for name in ("tetris", "sjf", "cp", "graphene", "heft", "lpt", "fifo")
    }
    schedulers["mcts"] = MctsScheduler(
        MctsConfig(initial_budget=40, min_budget=10), env_config, seed=1
    )
    result = run_tournament(schedulers, graphs, env_config)
    print()
    print(result.report())


if __name__ == "__main__":
    main()
