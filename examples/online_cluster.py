#!/usr/bin/env python3
"""Online multi-job cluster scheduling — the deployment mode.

The paper evaluates Spear per job; a production cluster faces an arrival
*stream*.  This example replays a synthetic-trace prefix as arrivals into
the shared 20x20 cluster and compares online rankers, including a
Graphene-planned priority ranker (each job's Graphene order computed at
arrival, then executed online).

Run (takes ~30 seconds):
    python examples/online_cluster.py
"""

from repro.config import ClusterConfig, EnvConfig
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    plan_priority_ranker,
    sjf_ranker,
    tetris_ranker,
)
from repro.schedulers import GrapheneScheduler
from repro.traces import TraceConfig, generate_production_trace


def main() -> None:
    trace = generate_production_trace(
        TraceConfig(num_jobs=12, runtime_scale=0.2), seed=3
    )
    # Jobs arrive every 20 slots — enough overlap to make sharing matter.
    stream = [
        ArrivingJob(arrival_time=20 * i, graph=job.graph)
        for i, job in enumerate(trace)
    ]
    simulator = OnlineSimulator(ClusterConfig())

    # Precompute per-job Graphene plans (offline planning, online packing).
    graphene = GrapheneScheduler(env_config=EnvConfig())
    plans = []
    for job in trace:
        best = min(
            graphene.candidate_plans(job.graph),
            key=lambda plan: plan.virtual_makespan,
        )
        plans.append(best.order)

    rankers = {
        "fifo": fifo_ranker,
        "sjf": sjf_ranker,
        "cp": cp_ranker,
        "tetris": tetris_ranker,
        "graphene-plan": plan_priority_ranker(plans),
    }

    print(f"{len(stream)} jobs arriving every 20 slots on a 20x20 cluster\n")
    print(f"{'ranker':<14} {'mean JCT':>9} {'max JCT':>8} {'makespan':>9} "
          f"{'util cpu/mem':>14}")
    for name, ranker in rankers.items():
        result = simulator.run(stream, ranker)
        cpu, mem = result.mean_utilization
        print(f"{name:<14} {result.mean_jct:>9.1f} {result.max_jct:>8} "
              f"{result.makespan:>9} {cpu:>6.0%}/{mem:<6.0%}")

    print("\nLower mean JCT favours SJF-style rankers; packing-aware "
          "rankers win on makespan when the stream is dense.")


if __name__ == "__main__":
    main()
