#!/usr/bin/env python3
"""The Fig. 3 motivating example, end to end.

Shows why dependency-blind packing fails: the 8-task job has an optimal
makespan of 2T, but Tetris' alignment score greedily grabs the big
no-child decoy task, displacing a parent of the second wave and pushing
one child into a third window (3T).  MCTS finds the optimum because it
searches over *orders*, not greedy scores.

Run:
    python examples/motivating_example.py
"""

from repro import EnvConfig, MctsConfig, ScheduleRequest, make_scheduler, motivating_example
from repro.config import ClusterConfig
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.metrics.gantt import render_gantt


def main() -> None:
    graph = motivating_example()
    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
        process_until_completion=True,
    )

    print(f"8 tasks, T = {MOTIVATING_T} slots, capacity = "
          f"{MOTIVATING_CAPACITY} (CPU, memory)\n")

    # The exact optimum, certified by branch and bound.
    optimal = make_scheduler("optimal", env_config).plan(ScheduleRequest(graph))
    validate_schedule(optimal, graph, MOTIVATING_CAPACITY)
    print(f"optimal (branch & bound): {optimal.makespan} slots "
          f"({optimal.makespan // MOTIVATING_T}T)")
    print(render_gantt(optimal, graph, width=40))
    print()

    # Tetris: dependency-blind packing -> 3T.
    tetris = make_scheduler("tetris", env_config).plan(ScheduleRequest(graph))
    validate_schedule(tetris, graph, MOTIVATING_CAPACITY)
    print(f"tetris (greedy packing): {tetris.makespan} slots "
          f"({tetris.makespan // MOTIVATING_T}T)")
    print(render_gantt(tetris, graph, width=40))
    print()

    # MCTS searches scheduling orders and recovers the optimum.
    mcts = MctsScheduler(
        MctsConfig(initial_budget=200, min_budget=20), env_config, seed=0
    )
    found = mcts.plan(ScheduleRequest(graph))
    validate_schedule(found, graph, MOTIVATING_CAPACITY)
    print(f"mcts (budget 200): {found.makespan} slots "
          f"({found.makespan // MOTIVATING_T}T)")
    assert found.makespan == optimal.makespan, "MCTS should find the optimum"
    print("MCTS recovered the optimal 2T schedule.")


if __name__ == "__main__":
    main()
