"""Setup shim.

Kept alongside ``pyproject.toml`` so editable installs work on
environments without the ``wheel`` package (PEP 660 editable builds need
``bdist_wheel``; the legacy path used by ``pip install -e . --no-use-pep517``
does not)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
