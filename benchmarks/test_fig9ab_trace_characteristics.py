"""Fig. 9(a)/(b) benchmark: trace workload characterization.

Paper: 99 jobs; per-job map/reduce task counts with medians 14/17 and
maxima 29/38; per-stage runtime CDFs with reduce tasks markedly heavier
(per-job mean map runtimes span ~2..17 s, reduce ~17..141 s).

The regenerated rows are the four CDFs; the asserted shape is the
calibration of the synthetic trace against every published statistic.
"""

from repro.experiments.fig9 import trace_characteristics
from repro.experiments.reporting import format_cdf


def test_fig9ab_trace_characteristics(benchmark, scale):
    stats = benchmark.pedantic(
        lambda: trace_characteristics(paper_scale=True, seed=0),
        rounds=1,
        iterations=1,
    )
    map_counts, reduce_counts = stats.count_cdfs()
    map_runtimes, reduce_runtimes = stats.runtime_cdfs()
    print("\n" + format_cdf(map_counts, "#map", title="Fig 9(a) map tasks"))
    print(format_cdf(reduce_counts, "#reduce", title="Fig 9(a) reduce tasks"))
    print(format_cdf(map_runtimes, "map runtime", title="Fig 9(b) map stage"))
    print(format_cdf(reduce_runtimes, "reduce runtime", title="Fig 9(b) reduce stage"))

    benchmark.extra_info.update(
        {
            "num_jobs": stats.num_jobs,
            "median_map_count": stats.median_map_count,
            "median_reduce_count": stats.median_reduce_count,
            "max_map_count": stats.max_map_count,
            "max_reduce_count": stats.max_reduce_count,
            "median_map_runtime": stats.median_map_runtime,
            "median_reduce_runtime": stats.median_reduce_runtime,
        }
    )

    assert stats.num_jobs == 99
    # Fig. 9(a): medians near 14 / 17, maxima bounded by 29 / 38.
    assert 10 <= stats.median_map_count <= 18
    assert 13 <= stats.median_reduce_count <= 21
    assert stats.max_map_count <= 29
    assert stats.max_reduce_count <= 38
    # Every job passed the > 5 maps and > 5 reduces filter.
    assert min(stats.map_counts) >= 6
    assert min(stats.reduce_counts) >= 6
    # Fig. 9(b): reduce tasks run markedly longer than map tasks.
    assert stats.median_reduce_runtime > 2 * stats.median_map_runtime
