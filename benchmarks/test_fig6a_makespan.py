"""Fig. 6(a) benchmark: Spear vs Graphene/Tetris/SJF/CP makespans.

Paper (100-task DAGs, budget 1000/100): Spear mean 820.1 beats Graphene
869.8, Tetris 890.2, SJF 849.0, CP 896.6 and is no worse than Graphene on
90% of DAGs.  Reproduced shape: Spear's mean is the best (small tolerance
for search noise at reduced scale) and its no-worse rate vs Graphene is
at least 60%.
"""

from repro.experiments.fig6 import makespan_comparison


def test_fig6a_makespan_comparison(benchmark, scale, shared_network):
    result = benchmark.pedantic(
        lambda: makespan_comparison(seed=0, network=shared_network),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    rows = {row.scheduler: row.mean for row in result.rows()}
    benchmark.extra_info.update({f"mean_{k}": v for k, v in rows.items()})

    # Spear leads (tolerance: 2% of the best baseline mean).
    best_baseline = min(v for k, v in rows.items() if k != "spear")
    assert rows["spear"] <= best_baseline * 1.02

    # "Spear performs no worse than Graphene in 90% of the jobs" — allow
    # slack at reduced scale, but the majority must hold.
    assert result.no_worse_rate_over("graphene") >= 0.6
