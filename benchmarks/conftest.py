"""Shared benchmark configuration.

Benchmarks default to the laptop scale (see ``repro.experiments.scale``);
set ``REPRO_PAPER_SCALE=1`` to run the published configuration (slow: the
paper reports ~500 s per 100-task schedule at budget 1000).

The trained guidance network is cached under ``REPRO_CACHE_DIR`` (default
``.repro_cache/``), so the first benchmark session trains it once and
later sessions reuse it.
"""

import os

import pytest

os.environ.setdefault("REPRO_CACHE_DIR", ".repro_cache")


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.scale import resolve_scale

    return resolve_scale()


@pytest.fixture(scope="session")
def shared_network(scale):
    """The session's trained guidance network (trained once, cached)."""
    from repro.experiments.networks import cached_network

    return cached_network(scale, seed=0)
