"""Workload-diversity benchmark (beyond-paper robustness check).

Runs every baseline plus MCTS across the structured DAG families of the
scheduling literature (Gaussian elimination, FFT, stencil, Cholesky).
Asserted shape: search (MCTS at the Spear budget) is (co-)best on at
least half of the families — the paper's central claim should not be an
artifact of the layered-random topology.
"""

from repro.experiments.diversity import diversity_study


def test_workload_diversity(benchmark, scale):
    result = benchmark.pedantic(
        lambda: diversity_study(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())
    for family in result.makespans:
        benchmark.extra_info[family] = result.makespans[family]

    num_families = len(result.makespans)
    assert result.wins("mcts") >= num_families // 2
    # Everything stays within 2x of the per-family best (sanity).
    for family, per in result.makespans.items():
        best = min(per.values())
        assert all(m <= 2 * best for m in per.values())
