"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each flips one Spear/MCTS design decision over a shared DAG batch.  The
assertions are deliberately loose (feasibility plus bounded regressions):
at reduced scale single design choices move means by a few percent and
noise is real; the regenerated rows are the variant means.
"""

import pytest

from repro.experiments.ablations import run_ablation


@pytest.mark.parametrize(
    "name",
    ["expansion-filters", "budget-decay", "max-value-ucb", "guided-rollout"],
)
def test_ablation(benchmark, scale, shared_network, name):
    result = benchmark.pedantic(
        lambda: run_ablation(name, seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())
    on, off = result.mean("on"), result.mean("off")
    benchmark.extra_info.update({"mean_on": on, "mean_off": off})

    assert on > 0 and off > 0
    # The shipped design ("on") never regresses by more than 10% against
    # its ablation at this scale.
    assert on <= off * 1.10
