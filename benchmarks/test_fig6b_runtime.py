"""Fig. 6(b) benchmark: scheduling wall-time of Spear vs Graphene.

Paper: comparable medians (~500 s at paper scale on 2016-era hardware)
with Graphene exhibiting the heavier tail.  Absolute seconds are
hardware-dependent; the regenerated rows are the two runtime CDFs.
"""

import statistics

from repro.experiments.fig6 import makespan_comparison, runtime_comparison
from repro.metrics import empirical_cdf


def test_fig6b_runtime_comparison(benchmark, scale, shared_network):
    result = benchmark.pedantic(
        lambda: makespan_comparison(seed=1, network=shared_network),
        rounds=1,
        iterations=1,
    )
    times = runtime_comparison(result=result)

    for name, series in times.items():
        assert len(series) == result.num_dags
        assert all(t >= 0.0 for t in series)
        median = statistics.median(series)
        benchmark.extra_info[f"median_seconds_{name}"] = median
        print(f"\n{name}: median {median:.3f}s, max {max(series):.3f}s")
        print("  CDF:", [(round(v, 3), round(f, 2)) for v, f in empirical_cdf(series)])

    # Both schedulers actually spend measurable planning time.
    assert max(times["spear"]) > 0.0
    assert max(times["graphene"]) > 0.0
