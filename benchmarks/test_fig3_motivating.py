"""Fig. 3 benchmark: the motivating example.

Regenerates the figure's makespan table: the searched schedule reaches the
certified optimum of 2T while the dependency-blind packers need 3T.
"""

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.dag import motivating_example
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.schedulers import make_scheduler


def _run_all():
    graph = motivating_example()
    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
        process_until_completion=True,
    )
    results = {}
    for name in ("optimal", "tetris", "sjf", "cp", "graphene"):
        schedule = make_scheduler(name, env_config).schedule(graph)
        validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
        results[name] = schedule.makespan
    mcts = MctsScheduler(
        MctsConfig(initial_budget=300, min_budget=50), env_config, seed=0
    )
    results["mcts"] = mcts.schedule(graph).makespan
    return results


def test_fig3_motivating_example(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    benchmark.extra_info.update(results)
    print("\nFig 3 makespans:", results)

    assert results["optimal"] == 2 * MOTIVATING_T
    assert results["mcts"] == 2 * MOTIVATING_T
    assert results["tetris"] == 3 * MOTIVATING_T
    assert results["sjf"] == 3 * MOTIVATING_T
    # CP/Graphene reach 2T on this reconstruction (documented deviation).
    assert results["cp"] >= 2 * MOTIVATING_T
    assert results["graphene"] >= 2 * MOTIVATING_T
