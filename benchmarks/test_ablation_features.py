"""Graph-feature ablation benchmark (Sec. III-D's design claim).

"If we only take the ready tasks into consideration, we can only obtain
suboptimal performance like Tetris ... With these features (b-level, the
number of children, b-load (CPU), b-load (memory)), our reinforcement
learning model produces results superior to a model where we don't
incorporate graph related features."

Two networks are trained from the same seed — full state vs
topology-features-zeroed — and evaluated greedily on held-out DAGs.  The
asserted shape: the featured agent never regresses by more than 10% and
typically wins.
"""

from repro.experiments.ablations import feature_ablation


def test_graph_feature_ablation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: feature_ablation(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())
    on, off = result.mean("on"), result.mean("off")
    benchmark.extra_info.update({"mean_with_features": on, "mean_without": off})

    assert on > 0 and off > 0
    assert on <= off * 1.10
