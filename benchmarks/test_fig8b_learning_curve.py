"""Fig. 8(b) benchmark: the DRL learning curve.

Paper (144 x 25-task examples, 7000 epochs): the mean sampled makespan
decreases steadily and crosses the Tetris and SJF reference lines after
~900 epochs.

Reproduced shape at reduced scale: the curve's best point improves on its
start, and the final mean lands at or below the SJF reference (the easier
of the two lines) with tolerance.
"""

from repro.experiments.fig8 import learning_curve


def test_fig8b_learning_curve(benchmark, scale):
    result = benchmark.pedantic(
        lambda: learning_curve(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())
    first = result.history[0].mean_makespan
    best = min(h.mean_makespan for h in result.history)
    final = result.final_mean()
    benchmark.extra_info.update(
        {
            "first_mean": first,
            "best_mean": best,
            "final_mean": final,
            "tetris_reference": result.tetris_mean,
            "sjf_reference": result.sjf_mean,
        }
    )

    # Training moves the curve (imitation start -> improvement visible).
    assert best <= first
    # The trained policy is competitive with the heuristic reference lines
    # (paper: eventually crosses both; at reduced epochs allow 5%).
    assert final <= result.sjf_mean * 1.05
    assert final <= result.tetris_mean * 1.10
