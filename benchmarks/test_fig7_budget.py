"""Fig. 7 benchmark: pure MCTS vs budget.

Fig. 7(a): mean makespan decreases as budget grows.
Fig. 7(b): win rate against Tetris rises with budget (paper: 56% @ 600,
67% @ 1000, 84% @ 2200 on 100 x 100-task DAGs).

Reproduced shape: the largest budget's mean makespan is no worse than the
smallest budget's, and its Tetris win rate is no lower.
"""

from repro.experiments.fig7 import budget_sweep


def test_fig7_budget_sweep(benchmark, scale):
    result = benchmark.pedantic(
        lambda: budget_sweep(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())

    first, last = result.points[0], result.points[-1]
    benchmark.extra_info.update(
        {
            "makespan_at_min_budget": first.mean_makespan,
            "makespan_at_max_budget": last.mean_makespan,
            "winrate_at_min_budget": first.win_rate_vs_tetris,
            "winrate_at_max_budget": last.win_rate_vs_tetris,
        }
    )

    # Fig. 7(a): more budget helps (small tolerance for search noise).
    assert last.mean_makespan <= first.mean_makespan * 1.01

    # Fig. 7(b): the win rate against Tetris does not degrade with budget.
    assert last.win_rate_vs_tetris >= first.win_rate_vs_tetris
