"""Table I benchmark: MCTS runtime vs graph size x budget.

Paper (GCE 24-core VM): runtimes grow along both axes.  Absolute seconds
are hardware-dependent; the regenerated table is the wall-clock grid and
the reproduced claim is monotone growth (with generous noise tolerance at
reduced scale).
"""

from repro.experiments.table1 import runtime_grid


def test_table1_runtime_grid(benchmark, scale):
    result = benchmark.pedantic(
        lambda: runtime_grid(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())

    for (size, budget), seconds in result.seconds.items():
        benchmark.extra_info[f"seconds_{size}tasks_{budget}budget"] = seconds
        assert seconds >= 0.0
        assert result.makespans[(size, budget)] > 0

    sizes, budgets = result.graph_sizes, result.budgets
    # More budget -> at least ~as much time, per graph size.
    for size in sizes:
        row = result.row(size)
        assert row[-1] >= row[0] * 0.5
    # Bigger graphs -> at least ~as much time, per budget.
    for budget in budgets:
        small = result.seconds[(sizes[0], budget)]
        large = result.seconds[(sizes[-1], budget)]
        assert large >= small * 0.5
