"""Exploration-constant sensitivity benchmark (Sec. III-C / IV).

"As the value of the second term in the equation is between zero and one,
c must be comparable with the exploitation score ... we scale it by an
estimate of the makespan produced by a simulation using a greedy packing
algorithm."

The sweep varies the multiplier on that estimate.  Asserted shape: the
paper's 1x setting is never beaten by more than 5% by any other scale —
the greedy-makespan estimate puts c in the right regime.
"""

from repro.experiments.ablations import exploration_sensitivity


def test_exploration_scale_sensitivity(benchmark, scale):
    result = benchmark.pedantic(
        lambda: exploration_sensitivity(seed=0), rounds=1, iterations=1
    )
    print("\n" + result.report())
    means = {variant: result.mean(variant) for variant in result.makespans}
    benchmark.extra_info.update(means)

    reference = means["c=1x"]
    best = min(means.values())
    assert reference <= best * 1.05
