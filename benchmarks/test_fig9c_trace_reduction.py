"""Fig. 9(c) benchmark: Spear vs Graphene on the production trace.

Paper (99 jobs, Spear budget 100/50): Spear is no worse than Graphene on
~90% of jobs, with reductions of up to ~20%.

Reproduced shape: the no-worse fraction is at least 70% and the best
observed reduction is at least 3%; the regenerated row set is the CDF of
per-job reductions.
"""

from repro.experiments.fig9 import reduction_cdf


def test_fig9c_reduction_cdf(benchmark, scale, shared_network):
    result = benchmark.pedantic(
        lambda: reduction_cdf(seed=0, network=shared_network),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    benchmark.extra_info.update(
        {
            "num_jobs": result.num_jobs,
            "no_worse_fraction": result.no_worse_fraction(),
            "max_reduction": result.max_reduction(),
            "median_reduction": result.median_reduction(),
        }
    )

    assert result.num_jobs == (99 if scale.label == "paper" else scale.trace_jobs)
    assert result.no_worse_fraction() >= 0.7
    assert result.max_reduction() >= 0.03
    # Losses, where they occur, stay moderate (paper CDF shows a short
    # negative tail).
    assert min(result.reductions) >= -0.25
