"""Fig. 8(a) benchmark: Spear matches MCTS with a fraction of the budget.

Paper (budget 1000 vs 100): means 810.8 (MCTS) vs 816.7 (Spear), both
ahead of Tetris 843.9, SJF 884.5, CP 837.9 — "the same level of
performance with only 10% of the budget".

Reproduced shape: Spear's mean is within 5% of MCTS's despite the budget
divisor, and both beat SJF.
"""

from repro.experiments.fig8 import budget_reduction


def test_fig8a_budget_reduction(benchmark, scale, shared_network):
    result = benchmark.pedantic(
        lambda: budget_reduction(seed=0, network=shared_network),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.report())
    means = {row.scheduler: row.mean for row in result.rows()}
    benchmark.extra_info.update({f"mean_{k}": v for k, v in means.items()})
    benchmark.extra_info["budget_ratio"] = result.budget_ratio()

    assert result.budget_ratio() >= 2.0
    # Spear (reduced budget) stays within 5% of full-budget MCTS.
    assert means["spear"] <= means["mcts"] * 1.05
    # Both search methods beat the weakest heuristic.
    assert means["spear"] <= means["sjf"]
    assert means["mcts"] <= means["sjf"]
